//! The federation failover & migration matrix (EXPERIMENTS §
//! ROBUST-FEDERATION): instance counts × balancing policies × kill
//! instants × transport chaos.
//!
//! Every arm runs the same three-day, three-participant study behind a
//! [`TopologyRouter`] and must converge **bit-identical** to the
//! single-instance fault-free baseline — client place registries, cloud
//! places, day profiles, social contacts, absorbed observation counts,
//! battery energy, and the federated activity analytics answer. The
//! router is pure topology: it may never change a durable byte.
//!
//! The matrix also pins the control plane: after warmup the router serves
//! exactly one handshake per participant, zero requests at steady state,
//! and exactly one topology refresh per displaced client across a
//! failover — even with 30 % transport faults injected, because the
//! chaos statuses (599/502) deliberately do not trigger refreshes.

use pmware::prelude::*;
use pmware_bench::federation::{run_federation, FederationConfig, FederationOutcome};

const PARTICIPANTS: usize = 3;
const DAYS: u64 = 3;
const SEED: u64 = 4242;
const CHAOS_RATE: f64 = 0.30;

fn baseline() -> FederationOutcome {
    run_federation(&FederationConfig::baseline(PARTICIPANTS, DAYS, SEED))
}

fn arm(instances: usize, policy: BalancePolicy, kill_at: SimTime, chaos: bool) -> FederationConfig {
    let mut config = FederationConfig::baseline(PARTICIPANTS, DAYS, SEED);
    config.instances = instances;
    config.policy = policy;
    config.kill_at = Some(kill_at);
    if chaos {
        config.chaos_rate = CHAOS_RATE;
        config.chaos_seed = SEED + 900;
    }
    config
}

/// Mid-study kill during the busiest part of the day.
fn midday_kill() -> SimTime {
    SimTime::from_day_time(1, 12, 30, 0)
}

/// Kill during the nightly maintenance window, shortly after the 3 AM
/// pass begins on the last full day.
fn nightly_kill() -> SimTime {
    SimTime::from_day_time(DAYS - 1, 3, 5, 0)
}

/// Asserts one arm converged to the baseline and kept the control-plane
/// pins: one handshake per participant at warmup, then exactly one
/// topology refresh per displaced client — nothing else ever reaches the
/// router.
fn assert_converges(label: &str, baseline: &FederationOutcome, outcome: &FederationOutcome) {
    assert_eq!(
        outcome.per_user, baseline.per_user,
        "{label}: durable state diverged from the single-instance baseline"
    );
    assert_eq!(
        outcome.control_after_warmup, PARTICIPANTS as u64,
        "{label}: warmup handshake count"
    );
    assert!(outcome.displaced >= 1, "{label}: the kill displaced nobody");
    assert_eq!(
        outcome.control_final,
        outcome.control_after_warmup + outcome.displaced as u64,
        "{label}: control-plane requests beyond one refresh per displaced client"
    );
    assert_eq!(
        outcome.migration_seconds, outcome.replayed as u64,
        "{label}: migration latency model is one sim-second per replayed request"
    );
}

#[test]
fn failover_matrix_converges_to_single_instance_baseline() {
    let base = baseline();
    assert_eq!(base.control_after_warmup, PARTICIPANTS as u64);
    assert_eq!(
        base.control_final, base.control_after_warmup,
        "baseline: steady state must be router-free"
    );

    for &instances in &[2usize, 4] {
        for &policy in &[BalancePolicy::RoundRobin, BalancePolicy::LeastConnections] {
            for (when, kill_at) in [("midday", midday_kill()), ("nightly", nightly_kill())] {
                let label = format!("n={instances} policy={} kill={when}", policy.label());
                let outcome = run_federation(&arm(instances, policy, kill_at, false));
                assert_converges(&label, &base, &outcome);
            }
        }
    }
}

#[test]
fn failover_matrix_converges_under_transport_chaos() {
    let base = baseline();
    for &instances in &[2usize, 4] {
        for &policy in &[BalancePolicy::RoundRobin, BalancePolicy::LeastConnections] {
            for (when, kill_at) in [("midday", midday_kill()), ("nightly", nightly_kill())] {
                let label = format!(
                    "n={instances} policy={} kill={when} chaos={CHAOS_RATE}",
                    policy.label()
                );
                let outcome = run_federation(&arm(instances, policy, kill_at, true));
                assert!(outcome.faults > 0, "{label}: chaos arm injected nothing");
                assert_converges(&label, &base, &outcome);
            }
        }
    }
}

#[test]
fn consistent_hash_federation_without_faults_is_also_invisible() {
    let base = baseline();
    for &instances in &[2usize, 4] {
        let mut config = FederationConfig::baseline(PARTICIPANTS, DAYS, SEED);
        config.instances = instances;
        let outcome = run_federation(&config);
        assert_eq!(
            outcome.per_user, base.per_user,
            "n={instances} consistent-hash: durable state diverged"
        );
        assert_eq!(
            outcome.control_final, PARTICIPANTS as u64,
            "n={instances}: no-kill arm must never revisit the router"
        );
        assert_eq!(outcome.displaced, 0);
    }
}

/// The federated analytics fan-out answers from every instance and its
/// population mean matches the baseline bit-for-bit.
#[test]
fn federated_analytics_matches_baseline() {
    let base = baseline();
    let outcome = run_federation(&arm(2, BalancePolicy::RoundRobin, midday_kill(), false));
    assert_eq!(
        outcome.population_mean_activity.to_bits(),
        base.population_mean_activity.to_bits(),
        "population activity mean diverged"
    );
    // Every instance served real traffic in the 2-instance arm.
    assert_eq!(outcome.per_instance_requests.len(), 2);
    assert!(outcome
        .per_instance_requests
        .iter()
        .all(|(_, requests)| *requests > 0));
}
