//! Failure-injection tests: the middleware must keep sensing and
//! discovering through cloud outages and radio coverage gaps — a phone in
//! the real study did not stop working when the Azure instance or the
//! network was unreachable.

use pmware::prelude::*;

#[test]
fn cloud_outage_falls_back_to_local_discovery() {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(4000)
        .build();
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 4001));
    let population = Population::generate(&world, 1, 4002);
    let itinerary = population.itinerary(&world, population.agents()[0].id(), 4);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let device = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 4003);
    let mut pms = PmwareMobileService::new(
        device,
        cloud.clone(),
        PmsConfig::for_participant(40),
        SimTime::EPOCH,
    )
    .expect("registration happens before the outage");
    let rx = pms.register_app(
        "app",
        AppRequirement::places(Granularity::Building),
        IntentFilter::all(),
    );

    // Day 1 runs normally; then the cloud goes dark for the rest.
    pms.run(SimTime::from_day_time(1, 12, 0, 0)).unwrap();
    cloud.set_outage(true);
    pms.run(SimTime::from_day_time(4, 0, 0, 0)).unwrap();

    let counters = pms.counters();
    assert!(
        counters.gca_local_fallbacks >= 2,
        "offline maintenance must fall back locally: {counters:?}"
    );
    // Discovery continued offline: places exist and events kept flowing.
    assert!(pms.places().len() >= 2);
    assert!(counters.arrivals >= 3, "{counters:?}");
    let events = rx.try_iter().count();
    assert!(events > 0, "apps keep receiving intents during the outage");

    // When the cloud comes back, syncing resumes.
    cloud.set_outage(false);
    let synced_before = counters.profiles_synced;
    pms.run(SimTime::from_day_time(5, 0, 0, 0)).unwrap();
    assert!(
        pms.counters().profiles_synced > synced_before,
        "recovery must resume profile syncs"
    );
}

#[test]
fn registration_during_outage_fails_cleanly() {
    let world = WorldBuilder::new(RegionProfile::test_tiny())
        .seed(4100)
        .build();
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 4101));
    cloud.set_outage(true);
    let population = Population::generate(&world, 1, 4102);
    let itinerary = population.itinerary(&world, population.agents()[0].id(), 1);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let device = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 4103);
    let err = match PmwareMobileService::new(
        device,
        cloud,
        PmsConfig::for_participant(41),
        SimTime::EPOCH,
    ) {
        Ok(_) => panic!("cannot induct a device while the cloud is down"),
        Err(e) => e,
    };
    let msg = err.to_string();
    assert!(msg.contains("503"), "{msg}");
}

#[test]
fn sparse_coverage_world_does_not_break_the_pipeline() {
    // A rural-ish profile: towers spread so far apart that their coverage
    // leaves real dead zones between places.
    let mut profile = RegionProfile::urban_india();
    profile.name = "rural-sparse".to_owned();
    profile.tower_spacing_2g = Meters::new(2_600.0);
    profile.tower_spacing_3g = Meters::new(3_200.0);
    profile.tower_range = Meters::new(1_300.0);
    profile.place_mix = PlaceMix::tiny();
    let world = WorldBuilder::new(profile).seed(4200).build();

    // Confirm the world actually has dead zones (otherwise the test is
    // vacuous).
    let mut dead = 0;
    let mut total = 0;
    for dx in 0..20 {
        for dy in 0..20 {
            let p = world
                .bounds()
                .south_west()
                .destination(0.0, Meters::new(dy as f64 * 300.0))
                .destination(90.0, Meters::new(dx as f64 * 300.0));
            if !world.bounds().contains(p) {
                continue;
            }
            total += 1;
            let mut covered = false;
            world.for_each_tower_near(p, Meters::new(3_500.0), |t, d| {
                if d <= t.range() {
                    covered = true;
                }
            });
            if !covered {
                dead += 1;
            }
        }
    }
    assert!(
        dead > 0,
        "sparse profile should leave dead zones ({dead}/{total})"
    );

    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 4201));
    let population = Population::generate(&world, 1, 4202);
    let itinerary = population.itinerary(&world, population.agents()[0].id(), 3);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let device = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 4203);
    let mut pms = PmwareMobileService::new(
        device,
        cloud,
        PmsConfig::for_participant(42),
        SimTime::EPOCH,
    )
    .unwrap();
    let _rx = pms.register_app(
        "app",
        AppRequirement::places(Granularity::Area),
        IntentFilter::all(),
    );
    // Must not panic despite out-of-coverage samples returning None.
    pms.run(SimTime::from_day_time(3, 0, 0, 0)).unwrap();
    assert!(
        !pms.places().is_empty(),
        "places at covered spots are still discovered"
    );
}
