//! The chaos matrix (EXPERIMENTS § ROBUST-CHAOS): deterministic transport
//! faults × cloud endpoints × device reboots.
//!
//! Every cell runs the same three-day study twice — once fault-free and
//! uninterrupted (the baseline), once under a seeded [`FaultPlan`] and/or
//! a checkpoint/restore reboot — and asserts the final durable state is
//! **bit-identical**: the client's place registry, the cloud's stored
//! places, day profiles, social contacts, and absorbed observation count.
//! Equality of the observation and contact collections against the
//! baseline doubles as the exactly-once invariant: a duplicated delivery
//! absorbed twice would show up as extra observations or contacts.
//!
//! The link always recovers for the final night (faults disabled, held
//! traffic flushed) so the last maintenance pass and `finish` can
//! converge — chaos tests assert eventual consistency, not availability
//! under active failure.

use pmware::cloud::{ContactEntry, FaultStats, StorageConfig, ALL_FAULT_KINDS};
use pmware::core::pms::PeerProvider;
use pmware::core::registry::PmPlace;
use pmware::core::CloudClient;
use pmware::prelude::*;
use pmware::world::tower::NetworkLayer;
use pmware::world::{CellGlobalId, CellId, GsmObservation, Lac, Plmn};
use proptest::prelude::*;
use serde_json::json;

const DAYS: u64 = 3;
const RATE: f64 = 0.30;
const PARTICIPANT: u32 = 7;

/// Endpoint path fragments the matrix aims faults at. Analytics has its
/// own test (`analytics_queries_ride_out_every_fault_kind`): PMS issues
/// no analytics calls during a run, so rate-faulting that path inside the
/// study would be vacuous.
const ENDPOINTS: [&str; 4] = [
    "/places/discover",
    "/profiles/sync",
    "/geolocate",
    "/social/sync",
];

fn study_end() -> SimTime {
    SimTime::from_day_time(DAYS, 0, 0, 0)
}

/// The network heals at the start of the last night, before the final
/// 3 AM maintenance pass.
fn link_recovers_at() -> SimTime {
    SimTime::from_day_time(DAYS - 1, 0, 0, 0)
}

fn midday_reboot() -> SimTime {
    SimTime::from_day_time(1, 12, 30, 0)
}

fn nightly_reboot() -> SimTime {
    SimTime::from_day_time(DAYS - 1, 1, 0, 0)
}

/// A companion who is wherever the participant is during the day — the
/// simplest deterministic source of Bluetooth encounters.
struct ShadowPeer {
    itinerary: Itinerary,
}

impl PeerProvider for ShadowPeer {
    fn peers_at(&self, t: SimTime) -> Vec<(String, GeoPoint)> {
        if (10..16).contains(&t.hour_of_day()) {
            vec![("shadow-peer".to_owned(), self.itinerary.position_at(t))]
        } else {
            Vec::new()
        }
    }
}

struct StudyWorld {
    world: World,
    itinerary: Itinerary,
}

fn study_world(seed: u64) -> StudyWorld {
    let world = WorldBuilder::new(RegionProfile::test_tiny())
        .seed(seed)
        .build();
    let population = Population::generate(&world, 1, seed + 1);
    let itinerary = population.itinerary(&world, population.agents()[0].id(), DAYS);
    StudyWorld { world, itinerary }
}

fn app_requirement() -> AppRequirement {
    AppRequirement::places(Granularity::Building).with_social()
}

/// Everything a run leaves behind, compared bit-for-bit across scenarios.
#[derive(Debug, PartialEq)]
struct FinalState {
    client_places: Vec<PmPlace>,
    energy_bits: u64,
    cloud_places: Vec<DiscoveredPlace>,
    cloud_profiles: Vec<pmware::cloud::MobilityProfile>,
    cloud_observations: usize,
    cloud_contacts: Vec<ContactEntry>,
}

struct Outcome {
    state: FinalState,
    stats: FaultStats,
    /// Durable state at `study_end`, serialized — the bit-identical
    /// artifact for reboot-equality assertions (fault-free runs only;
    /// faulty runs differ in retry counters and sync sequence numbers).
    final_checkpoint_json: String,
    cloud: SharedCloud,
}

#[derive(Clone, Copy)]
enum Stop {
    Reboot,
    Recover,
    End,
}

/// One three-day study: clean registration, optional fault injection,
/// optional checkpoint/shutdown/restore reboot, guaranteed fault-free
/// final night, then `finish`.
fn run_study(
    sw: &StudyWorld,
    plan: Option<FaultPlan>,
    reboot: Option<SimTime>,
    cloud_seed: u64,
    device_seed: u64,
) -> Outcome {
    run_study_obs(sw, plan, reboot, cloud_seed, device_seed, &Obs::disabled())
}

/// [`run_study`] with per-day-chunked offloads: `batch_days ≥ 1` splits
/// each maintenance pass's GSM suffix into one discover request per that
/// many days, multiplying the wire traffic the fault plan gets to chew
/// on. Final state must not care.
fn run_study_batched(
    sw: &StudyWorld,
    plan: Option<FaultPlan>,
    reboot: Option<SimTime>,
    cloud_seed: u64,
    device_seed: u64,
    batch_days: u32,
) -> Outcome {
    run_study_full(
        sw,
        plan,
        reboot,
        cloud_seed,
        device_seed,
        &Obs::disabled(),
        batch_days,
    )
}

/// [`run_study`] with an observability sink attached to every layer
/// (cloud instance, fault-injecting transport, PMS). Collecting metrics
/// and traces must never change any outcome the chaos matrix pins.
fn run_study_obs(
    sw: &StudyWorld,
    plan: Option<FaultPlan>,
    reboot: Option<SimTime>,
    cloud_seed: u64,
    device_seed: u64,
    obs: &Obs,
) -> Outcome {
    run_study_full(sw, plan, reboot, cloud_seed, device_seed, obs, 0)
}

#[allow(clippy::too_many_arguments)]
fn run_study_full(
    sw: &StudyWorld,
    plan: Option<FaultPlan>,
    reboot: Option<SimTime>,
    cloud_seed: u64,
    device_seed: u64,
    obs: &Obs,
    offload_batch_days: u32,
) -> Outcome {
    let shared = SharedCloud::new(
        CloudInstance::new(CellDatabase::from_world(&sw.world), cloud_seed).with_obs(obs),
    );
    let inject = plan.is_some();
    let faulty = FaultyCloud::new(
        shared.clone(),
        plan.unwrap_or_else(|| FaultPlan::with_rate(0, 0.0)),
    );
    faulty.set_obs(obs);
    faulty.set_enabled(false);

    let env = RadioEnvironment::new(&sw.world, RadioConfig::default());
    let device = Device::new(env, &sw.itinerary, EnergyModel::htc_explorer(), device_seed);
    let mut config = PmsConfig::for_participant(PARTICIPANT);
    config.offload_batch_days = offload_batch_days;
    let mut pms = PmwareMobileService::new(device, faulty.clone(), config.clone(), SimTime::EPOCH)
        .expect("registration is fault-free");
    pms.set_obs(&obs.for_actor("p0000"));
    let user = pms.cloud_client_mut().user();
    let mut _rx = pms.register_app("chaos-app", app_requirement(), IntentFilter::all());
    pms.set_peer_provider(Box::new(ShadowPeer {
        itinerary: sw.itinerary.clone(),
    }));
    faulty.set_enabled(inject);

    let mut stops = vec![
        (link_recovers_at(), Stop::Recover),
        (study_end(), Stop::End),
    ];
    if let Some(t) = reboot {
        stops.push((t, Stop::Reboot));
    }
    stops.sort_by_key(|(t, _)| t.as_seconds());

    for (t, stop) in stops {
        pms.run(t).expect("run");
        match stop {
            Stop::Reboot => {
                // Round-trip through the on-flash JSON format: only what
                // the serialized checkpoint carries survives the reboot.
                let checkpoint = PmsCheckpoint::from_json(&pms.checkpoint().to_json())
                    .expect("checkpoint parses back");
                let device = pms.shutdown();
                pms = PmwareMobileService::restore(
                    device,
                    faulty.clone(),
                    config.clone(),
                    checkpoint,
                );
                // Apps and peers re-attach on boot, like on a real phone
                // — and so does the observability sink.
                pms.set_obs(&obs.for_actor("p0000"));
                _rx = pms.register_app("chaos-app", app_requirement(), IntentFilter::all());
                pms.set_peer_provider(Box::new(ShadowPeer {
                    itinerary: sw.itinerary.clone(),
                }));
            }
            Stop::Recover => {
                faulty.set_enabled(false);
                faulty.flush(t);
            }
            Stop::End => {}
        }
    }

    let final_checkpoint_json = pms.checkpoint().to_json();
    let report = pms.finish(study_end());
    faulty.flush(study_end());
    Outcome {
        state: FinalState {
            client_places: report.places,
            energy_bits: report.energy_joules.to_bits(),
            cloud_places: shared.places_of(user),
            cloud_profiles: shared.profiles_of(user),
            cloud_observations: shared.observation_count(user),
            cloud_contacts: shared.contacts_of(user),
        },
        stats: faulty.stats(),
        final_checkpoint_json,
        cloud: shared,
    }
}

/// Runs one fault kind across {endpoint} × {no reboot, mid-day reboot,
/// nightly reboot}, asserting bit-identical convergence in every cell.
fn matrix_for(kind: FaultKind, base_seed: u64) {
    let sw = study_world(base_seed);
    let baseline = run_study(&sw, None, None, base_seed + 50, base_seed + 60);
    assert!(
        !baseline.state.cloud_places.is_empty(),
        "baseline must discover and sync places"
    );
    assert!(
        !baseline.state.cloud_profiles.is_empty(),
        "baseline must sync day profiles"
    );
    assert!(
        !baseline.state.cloud_contacts.is_empty(),
        "baseline must record social encounters"
    );
    assert_eq!(baseline.stats.faults, 0);

    let reboots = [
        ("uninterrupted", None),
        ("mid-day reboot", Some(midday_reboot())),
        ("nightly reboot", Some(nightly_reboot())),
    ];
    let mut injected = 0;
    for (pi, path) in ENDPOINTS.iter().enumerate() {
        for (ri, (label, reboot)) in reboots.iter().enumerate() {
            let plan_seed = base_seed + 1_000 + (pi as u64) * 10 + ri as u64;
            let plan = FaultPlan::with_rate(plan_seed, RATE)
                .kinds(&[kind])
                .only_path(*path);
            let out = run_study(&sw, Some(plan), *reboot, base_seed + 50, base_seed + 60);
            injected += out.stats.faults;
            assert_eq!(
                out.state, baseline.state,
                "diverged under {kind:?} on {path} ({label})"
            );
        }
    }
    assert!(
        injected > 0,
        "a {RATE} fault rate must fire at least once across the matrix"
    );
}

#[test]
fn chaos_matrix_drop() {
    matrix_for(FaultKind::Drop, 9_100);
}

#[test]
fn chaos_matrix_delay() {
    matrix_for(FaultKind::Delay, 9_200);
}

#[test]
fn chaos_matrix_duplicate() {
    matrix_for(FaultKind::Duplicate, 9_300);
}

#[test]
fn chaos_matrix_reorder() {
    matrix_for(FaultKind::Reorder, 9_400);
}

#[test]
fn chaos_matrix_error() {
    matrix_for(FaultKind::Error, 9_500);
}

/// The batched offload protocol under chaos. Per-day chunking
/// (`offload_batch_days ≥ 1`) multiplies the discover requests a
/// maintenance pass puts on the wire, and every one of them faces the
/// fault plan; the `start`-keyed watermark must still absorb each
/// observation exactly once. Two pins: fault-free chunked runs equal the
/// coalesced default bit for bit (chunking is pure wire phrasing), and
/// chunked runs under drop/duplicate/reorder converge to that same
/// state.
#[test]
fn chaos_batched_offload_chunking_converges() {
    let sw = study_world(9_900);
    let coalesced = run_study(&sw, None, None, 9_950, 9_960);
    let mut injected = 0;
    for (bi, batch_days) in [1u32, 3].into_iter().enumerate() {
        let baseline = run_study_batched(&sw, None, None, 9_950, 9_960, batch_days);
        assert_eq!(
            baseline.state, coalesced.state,
            "fault-free chunked run (batch_days={batch_days}) diverged from coalesced default"
        );
        for (ki, kind) in [FaultKind::Drop, FaultKind::Duplicate, FaultKind::Reorder]
            .into_iter()
            .enumerate()
        {
            let plan_seed = 9_970 + (bi as u64) * 10 + ki as u64;
            let plan = FaultPlan::with_rate(plan_seed, RATE)
                .kinds(&[kind])
                .only_path("/places/discover");
            let out = run_study_batched(&sw, Some(plan), None, 9_950, 9_960, batch_days);
            injected += out.stats.faults;
            assert_eq!(
                out.state, baseline.state,
                "diverged under {kind:?} with batch_days={batch_days}"
            );
        }
    }
    assert!(
        injected > 0,
        "a {RATE} fault rate must fire at least once across the batched arms"
    );
}

/// A reboot alone (no faults) must be invisible: the rebooted run's final
/// *serialized durable state* equals the uninterrupted run's, byte for
/// byte — watermarks, sequence numbers, tracker debounce state, open
/// encounters, counters, everything.
#[test]
fn reboot_resumes_bit_identically() {
    let sw = study_world(9_600);
    let uninterrupted = run_study(&sw, None, None, 9_650, 9_660);
    for (label, at) in [("mid-day", midday_reboot()), ("nightly", nightly_reboot())] {
        let rebooted = run_study(&sw, None, Some(at), 9_650, 9_660);
        assert_eq!(
            rebooted.final_checkpoint_json, uninterrupted.final_checkpoint_json,
            "{label} reboot must leave bit-identical durable state"
        );
        assert_eq!(rebooted.state, uninterrupted.state, "{label} reboot");
    }
    // The on-flash format is a serde fixpoint: parse → re-serialize is id.
    let reparsed = PmsCheckpoint::from_json(&uninterrupted.final_checkpoint_json)
        .expect("parses")
        .to_json();
    assert_eq!(reparsed, uninterrupted.final_checkpoint_json);
}

/// Observability attached to every layer — shared cloud, faulty
/// transport, PMS, device, cloud client — must be a pure reader: the
/// instrumented run's final state, durable checkpoint bytes, and fault
/// statistics all equal the uninstrumented run's, under fault injection
/// *and* a mid-day reboot. Two identically-seeded instrumented runs also
/// export byte-identical metrics and traces.
#[test]
fn observability_is_invisible_to_chaos_runs() {
    let sw = study_world(9_800);
    let plan = || {
        FaultPlan::with_rate(9_855, RATE)
            .kinds(&[FaultKind::Delay, FaultKind::Error])
            .only_path("/api/v1/places/sync")
    };
    let plain = run_study(&sw, Some(plan()), Some(midday_reboot()), 9_850, 9_860);

    let collect = || {
        let obs = Obs::with_trace(65_536);
        let out = run_study_obs(&sw, Some(plan()), Some(midday_reboot()), 9_850, 9_860, &obs);
        (
            out,
            obs.metrics_json().expect("live registry"),
            obs.trace_jsonl().expect("live bus"),
        )
    };
    let (observed, metrics_a, trace_a) = collect();

    assert_eq!(
        observed.state, plain.state,
        "observability changed the outcome"
    );
    assert_eq!(
        observed.final_checkpoint_json, plain.final_checkpoint_json,
        "observability changed the durable checkpoint bytes"
    );
    assert_eq!(
        observed.stats, plain.stats,
        "observability changed fault statistics"
    );
    assert!(
        observed.stats.faults > 0,
        "this scenario must actually inject faults"
    );

    assert!(metrics_a.contains("transport_faults_total"), "{metrics_a}");
    assert!(trace_a.contains("transport.fault"));
    assert!(trace_a.contains("client.retry"));

    // Reproducible artefacts: same seed, same bytes.
    let (_, metrics_b, trace_b) = collect();
    assert_eq!(metrics_a, metrics_b);
    assert_eq!(trace_a, trace_b);
}

/// Analytics queries are read-only, so riding out faults is purely the
/// client's retry loop: every fault kind scheduled onto the first attempt
/// must still produce the exact fault-free answer.
#[test]
fn analytics_queries_ride_out_every_fault_kind() {
    let sw = study_world(9_700);
    let out = run_study(&sw, None, None, 9_750, 9_760);
    // A place that certainly has profile history behind it.
    let place = out
        .state
        .cloud_profiles
        .iter()
        .flat_map(|p| p.places.first())
        .map(|e| e.place)
        .next()
        .expect("profiles hold at least one visit");

    let config = PmsConfig::for_participant(PARTICIPANT);
    let t = study_end() + SimDuration::from_hours(1);
    // Registration is idempotent per IMEI, so this client reads the same
    // user's data the study produced.
    let mut clean =
        CloudClient::register(out.cloud.clone(), &config.imei, &config.email, t).expect("register");
    let want_frequency = clean
        .call("/api/v1/analytics/frequency", json!({ "place": place }), t)
        .expect("clean frequency")
        .body;
    let want_activity = clean
        .call("/api/v1/analytics/activity", json!({}), t)
        .expect("clean activity")
        .body;
    assert!(
        want_frequency["visit_count"].as_u64().unwrap_or(0) >= 1,
        "chosen place must have history: {want_frequency}"
    );

    let queries: [(&str, serde_json::Value, &serde_json::Value); 2] = [
        (
            "/api/v1/analytics/frequency",
            json!({ "place": place }),
            &want_frequency,
        ),
        ("/api/v1/analytics/activity", json!({}), &want_activity),
    ];
    for kind in ALL_FAULT_KINDS {
        for (path, body, want) in &queries {
            // The first attempt is faulted; for fail-style kinds the retry
            // answers, for pass-style kinds (duplicate) the first attempt
            // already does — either way the answer must be exact.
            let faulty = FaultyCloud::new(
                out.cloud.clone(),
                FaultPlan::with_schedule(1, vec![(0, kind)]).only_path("/analytics"),
            );
            let mut client = CloudClient::register(faulty.clone(), &config.imei, &config.email, t)
                .expect("register");
            let got = client
                .call(path, body.clone(), t)
                .unwrap_or_else(|e| panic!("{path} under {kind:?}: {e}"));
            assert_eq!(&&got.body, want, "{path} under {kind:?}");
            assert_eq!(
                faulty.stats().faults,
                1,
                "{kind:?} must have fired on {path}"
            );
        }
    }
}

/// A [`run_study`] variant on a *durable* storage engine whose cloud
/// crashes mid-study: the first half runs against a capped durable
/// instance under the fault plan, then the whole instance is dropped —
/// held wire traffic and resident stores and all — and a fresh process
/// recovers from the store directory. The device reboots from its own
/// checkpoint at the same instant (a site-wide power cut) and finishes
/// the study against the recovered cloud. Returns the final state and the
/// total faults injected across both halves.
fn run_durable_crash_study(
    sw: &StudyWorld,
    plan: impl Fn() -> Option<FaultPlan>,
    storage: StorageConfig,
    cloud_seed: u64,
    device_seed: u64,
) -> (FinalState, u64) {
    let cells = || CellDatabase::from_world(&sw.world);
    let shared =
        SharedCloud::new(CloudInstance::new(cells(), cloud_seed).with_storage(storage.clone()));
    let inject = plan().is_some();
    let arm = |cloud: SharedCloud| {
        FaultyCloud::new(
            cloud,
            plan().unwrap_or_else(|| FaultPlan::with_rate(0, 0.0)),
        )
    };
    let faulty = arm(shared.clone());
    faulty.set_enabled(false);

    let env = RadioEnvironment::new(&sw.world, RadioConfig::default());
    let device = Device::new(env, &sw.itinerary, EnergyModel::htc_explorer(), device_seed);
    let config = PmsConfig::for_participant(PARTICIPANT);
    let mut pms = PmwareMobileService::new(device, faulty.clone(), config.clone(), SimTime::EPOCH)
        .expect("registration is fault-free");
    let user = pms.cloud_client_mut().user();
    let mut _rx = pms.register_app("chaos-app", app_requirement(), IntentFilter::all());
    pms.set_peer_provider(Box::new(ShadowPeer {
        itinerary: sw.itinerary.clone(),
    }));
    faulty.set_enabled(inject);

    // First half, then the power cut: the device checkpoints (as in every
    // reboot cell), but the cloud is simply *gone* — anything the fault
    // plan was holding on the wire dies with it.
    let crash_at = midday_reboot();
    pms.run(crash_at).expect("first half");
    let checkpoint =
        PmsCheckpoint::from_json(&pms.checkpoint().to_json()).expect("checkpoint parses back");
    let device = pms.shutdown();
    let faults_before_crash = faulty.stats().faults;
    drop(faulty);
    drop(shared);

    let recovered = SharedCloud::new(CloudInstance::recover(
        cells(),
        cloud_seed,
        storage,
        crash_at,
    ));
    let faulty = arm(recovered.clone());
    faulty.set_enabled(false);
    let mut pms = PmwareMobileService::restore(device, faulty.clone(), config.clone(), checkpoint);
    _rx = pms.register_app("chaos-app", app_requirement(), IntentFilter::all());
    pms.set_peer_provider(Box::new(ShadowPeer {
        itinerary: sw.itinerary.clone(),
    }));
    faulty.set_enabled(inject);

    pms.run(link_recovers_at()).expect("second half");
    faulty.set_enabled(false);
    faulty.flush(link_recovers_at());
    pms.run(study_end()).expect("final night");

    let report = pms.finish(study_end());
    faulty.flush(study_end());
    let state = FinalState {
        client_places: report.places,
        energy_bits: report.energy_joules.to_bits(),
        cloud_places: recovered.places_of(user),
        cloud_profiles: recovered.profiles_of(user),
        cloud_observations: recovered.observation_count(user),
        cloud_contacts: recovered.contacts_of(user),
    };
    (state, faults_before_crash + faulty.stats().faults)
}

/// The durable arm of the matrix (EXPERIMENTS § SCALE-STORAGE): a cap-1
/// durable engine under the usual 30 % fault rate, plus a mid-study cloud
/// crash-recover, must still converge bit-identically to the plain
/// in-memory fault-free baseline. Durability, eviction churn, WAL replay,
/// and token re-adoption are all invisible at the study's end.
#[test]
fn chaos_matrix_durable_crash_recovery_converges() {
    let sw = study_world(9_000);
    let baseline = run_study(&sw, None, None, 9_055, 9_065);
    assert!(!baseline.state.cloud_places.is_empty());
    assert!(!baseline.state.cloud_contacts.is_empty());

    let scratch = |arm: &str| {
        let dir =
            std::env::temp_dir().join(format!("pmware-chaos-durable-{}-{arm}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    let storage = |dir: std::path::PathBuf| StorageConfig {
        resident_cap: Some(1),
        store_dir: Some(dir),
        snapshot_every_days: 1,
    };

    // Fault-free first: durability + crash-recovery alone must be
    // invisible before faults are layered on top.
    let dir = scratch("clean");
    let (state, faults) = run_durable_crash_study(&sw, || None, storage(dir.clone()), 9_055, 9_065);
    assert_eq!(faults, 0);
    assert_eq!(
        state, baseline.state,
        "fault-free durable crash-recovery diverged from the in-memory baseline"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Per-endpoint arms. The faulted window here is thin — only the
    // pre-crash maintenance pass sees faults, everything after the heal
    // is clean by design — so these arms use *scheduled* faults (drop the
    // first matching request, duplicate its retry) rather than dice: the
    // injection is guaranteed wherever the window carries traffic.
    let mut injected = 0;
    for (pi, path) in ENDPOINTS.iter().enumerate() {
        let dir = scratch(&format!("sched-{pi}"));
        let plan_seed = 9_070 + pi as u64;
        let (state, faults) = run_durable_crash_study(
            &sw,
            || {
                Some(
                    FaultPlan::with_schedule(
                        plan_seed,
                        vec![(0, FaultKind::Drop), (1, FaultKind::Duplicate)],
                    )
                    .only_path(*path),
                )
            },
            storage(dir.clone()),
            9_055,
            9_065,
        );
        injected += faults;
        assert_eq!(
            state, baseline.state,
            "diverged under durable crash-recovery with faults on {path}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        injected > 0,
        "the scheduled faults must fire at least once across the durable arms"
    );

    // And one rate arm at the matrix's usual 30 %, aimed at the `/sync`
    // fragment (profile, social, and places sync all match) so the thin
    // window still offers the dice enough matching requests.
    let dir = scratch("rate");
    let (state, faults) = run_durable_crash_study(
        &sw,
        || {
            Some(
                FaultPlan::with_rate(9_080, RATE)
                    .kinds(&[FaultKind::Drop, FaultKind::Duplicate])
                    .only_path("/sync"),
            )
        },
        storage(dir.clone()),
        9_055,
        9_065,
    );
    assert!(
        faults > 0,
        "a {RATE} rate over every sync endpoint must fire in the faulted window"
    );
    assert_eq!(
        state, baseline.state,
        "diverged under durable crash-recovery with a {RATE} fault rate on /sync"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression for the old retry path that re-sent the whole contact
/// buffer: sequence-tagged batches are absorbed exactly once no matter
/// how often the wire (or the client) re-delivers them.
#[test]
fn resent_contact_buffer_never_duplicates_encounters() {
    let entry = |n: u32| ContactEntry {
        contact: format!("peer-{n}"),
        start: SimTime::from_seconds(u64::from(n) * 600),
        end: SimTime::from_seconds(u64::from(n) * 600 + 300),
        place: None,
    };
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::new(), 11));
    // Matching /social/sync requests: index 0 clean, index 1 dropped
    // (forcing a client retry at index 2), index 3 duplicated on the wire.
    let faulty = FaultyCloud::new(
        cloud.clone(),
        FaultPlan::with_schedule(12, vec![(1, FaultKind::Drop), (3, FaultKind::Duplicate)])
            .only_path("/social/sync"),
    );
    let mut client =
        CloudClient::register(faulty.clone(), "imei-contacts", "c@x.y", SimTime::EPOCH)
            .expect("register");
    let user = client.user();

    let acked = client
        .sync_contacts(&[entry(0), entry(1)], 0, SimTime::EPOCH)
        .expect("first batch");
    assert_eq!(acked, 2);

    // The drop forces one transparent retry; the server still stores the
    // batch once.
    let acked = client
        .sync_contacts(&[entry(2)], 2, SimTime::from_seconds(3_600))
        .expect("dropped batch is retried");
    assert_eq!(acked, 3);
    assert_eq!(client.retries(), 1);

    // Wire-level duplication of a batch is absorbed once.
    let acked = client
        .sync_contacts(&[entry(3)], 3, SimTime::from_seconds(7_200))
        .expect("duplicated batch");
    assert_eq!(acked, 4);
    assert_eq!(cloud.contact_count(user), 4);

    // The old bug, replayed deliberately: re-sending already-acknowledged
    // entries must be a no-op.
    let acked = client
        .sync_contacts(&[entry(2), entry(3)], 2, SimTime::from_seconds(10_800))
        .expect("stale resend");
    assert_eq!(acked, 4);
    let stored = cloud.contacts_of(user);
    assert_eq!(
        stored
            .iter()
            .map(|c| c.contact.as_str())
            .collect::<Vec<_>>(),
        vec!["peer-0", "peer-1", "peer-2", "peer-3"],
        "every encounter exactly once, in order"
    );
}

fn obs(i: usize) -> GsmObservation {
    GsmObservation {
        time: SimTime::from_seconds(i as u64 * 60),
        cell: CellGlobalId {
            plmn: Plmn { mcc: 404, mnc: 45 },
            lac: Lac(1),
            // A two-cell oscillation, so GCA has something to absorb.
            cell: CellId(1 + (i % 2) as u32),
        },
        layer: NetworkLayer::G2,
        rssi_dbm: -70.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary rate-based fault plans, a dogged client that keeps its
    /// unacknowledged buffers and retries each pass: once the link heals,
    /// the cloud holds every contact exactly once and every observation
    /// absorbed exactly once — at-least-once delivery composed with
    /// server-side dedup is exactly-once absorption.
    #[test]
    fn random_fault_plans_never_violate_exactly_once(
        seed in any::<u64>(),
        rate in 0.0f64..=0.85,
        passes in 1usize..10,
    ) {
        let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::new(), 5));
        let faulty = FaultyCloud::new(cloud.clone(), FaultPlan::with_rate(seed, rate));
        faulty.set_enabled(false);
        let mut client =
            CloudClient::register(faulty.clone(), "imei-prop", "p@x.y", SimTime::EPOCH)
                .expect("register");
        let user = client.user();
        faulty.set_enabled(true);

        let mut all: Vec<ContactEntry> = Vec::new();
        let mut pending: Vec<ContactEntry> = Vec::new();
        let mut base = 0u64;
        let mut log: Vec<GsmObservation> = Vec::new();
        let mut offloaded = 0usize;

        for pass in 0..passes {
            let now = SimTime::from_seconds((1 + pass as u64) * 3_600);
            for k in 0..2 {
                let n = pass * 2 + k;
                let e = ContactEntry {
                    contact: format!("p-{n}"),
                    start: SimTime::from_seconds(n as u64 * 100),
                    end: SimTime::from_seconds(n as u64 * 100 + 60),
                    place: None,
                };
                all.push(e.clone());
                pending.push(e);
            }
            for _ in 0..3 {
                log.push(obs(log.len()));
            }
            if !pending.is_empty() {
                if let Ok(acked) = client.sync_contacts(&pending, base, now) {
                    let drained = (acked.saturating_sub(base) as usize).min(pending.len());
                    pending.drain(..drained);
                    base = acked.max(base);
                }
            }
            if client
                .discover_places(&log[offloaded..], offloaded as u64, now)
                .is_ok()
            {
                offloaded = log.len();
            }
        }

        // The link heals; queued traffic drains; one clean pass converges.
        let heal = SimTime::from_seconds((passes as u64 + 2) * 3_600);
        faulty.set_enabled(false);
        faulty.flush(heal);
        if !pending.is_empty() {
            let acked = client.sync_contacts(&pending, base, heal).expect("clean sync");
            prop_assert_eq!(acked as usize, all.len());
        }
        client
            .discover_places(&log[offloaded..], offloaded as u64, heal)
            .expect("clean offload");

        prop_assert_eq!(cloud.contacts_of(user), all);
        prop_assert_eq!(cloud.observation_count(user), log.len());
    }
}
