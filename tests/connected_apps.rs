//! Integration tests for the connected applications running together on
//! one PMS — the paper's "connected application architecture" (§1).

use pmware::core::registry::PmPlaceId;
use pmware::prelude::*;

struct Study<'w> {
    pms: PmwareMobileService<'w, &'w Itinerary>,
    itinerary: &'w Itinerary,
}

fn setup<'w>(world: &'w World, itinerary: &'w Itinerary, seed: u64) -> Study<'w> {
    let env = RadioEnvironment::new(world, RadioConfig::default());
    let device = Device::new(env, itinerary, EnergyModel::htc_explorer(), seed);
    let cloud = SharedCloud::new(CloudInstance::new(
        CellDatabase::from_world(world),
        seed + 1,
    ));
    let pms = PmwareMobileService::new(
        device,
        cloud,
        PmsConfig::for_participant(seed as u32),
        SimTime::EPOCH,
    )
    .expect("register");
    Study { pms, itinerary }
}

#[test]
fn three_apps_share_one_sensing_pipeline() {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(2000)
        .build();
    let population = Population::generate(&world, 1, 2001);
    let agent = population.agents()[0].clone();
    let days = 7;
    let itinerary = population.itinerary(&world, agent.id(), days);
    let mut study = setup(&world, &itinerary, 2002);

    // PlaceADs (area), LifeLog (building), ToDo (building, 9–18).
    let ads_rx = study.pms.register_app(
        "placeads",
        PlaceAdsApp::requirement(),
        PlaceAdsApp::filter(),
    );
    let log_rx = study
        .pms
        .register_app("lifelog", LifeLogApp::requirement(), LifeLogApp::filter());
    let todo_rx = study
        .pms
        .register_app("todo", TodoApp::requirement(), TodoApp::filter());

    let mut placeads = PlaceAdsApp::new(AdInventory::from_world(&world));
    let mut lifelog = LifeLogApp::new(1.0, 2003);
    let mut todo = TodoApp::new();
    let mut taste = UserTasteModel::from_agent(&agent, 2004);

    for day in 1..=days {
        study.pms.run(SimTime::from_day_time(day, 0, 0, 0)).unwrap();
        for intent in log_rx.try_iter() {
            lifelog.on_intent(&intent);
        }
        for (place, label) in lifelog.take_pending_labels() {
            study.pms.label_place(PmPlaceId(place), label);
        }
        // Configure the todo app once places exist: pick the place with
        // the most 8–11 AM arrivals as "work".
        if todo.workplace().is_none() {
            if let Some(work) = study.pms.places().iter().max_by_key(|p| {
                p.gca_visits
                    .iter()
                    .filter(|v| (7..12).contains(&v.arrival.hour_of_day()))
                    .count()
            }) {
                todo.set_workplace(work.id.0);
            }
        }
        for intent in todo_rx.try_iter() {
            let _ = todo.on_intent(&intent);
        }
        for intent in ads_rx.try_iter().collect::<Vec<_>>() {
            if let Some(card) = placeads.on_intent(&intent) {
                let truth = study.itinerary.position_at(card.served_at);
                let _ = taste.swipe(&card, truth);
            }
        }
    }

    // Every app did its job off the same single sensing pipeline.
    assert!(!placeads.served().is_empty(), "ads were served");
    assert!(lifelog.tagged_count() > 0, "places were tagged");
    assert!(!todo.fired().is_empty(), "reminders fired");
    assert!(taste.likes() + taste.dislikes() > 0, "cards were swiped");
    // Mostly liked: targeting works through the whole stack.
    let frac = taste.like_fraction().unwrap();
    assert!(frac > 0.55, "like fraction {frac:.2}");

    // Labels flowed back into the PMS registry.
    let labelled = study
        .pms
        .places()
        .iter()
        .filter(|p| p.label.is_some())
        .count();
    assert!(labelled > 0, "labels reached the registry");
}

#[test]
fn tracking_window_limits_todo_alerts() {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(2100)
        .build();
    let population = Population::generate(&world, 1, 2101);
    let itinerary = population.itinerary(&world, population.agents()[0].id(), 5);
    let mut study = setup(&world, &itinerary, 2102);

    // Full-day listener vs 9–18 listener for the same events.
    let windowed = study.pms.register_app(
        "todo-windowed",
        AppRequirement::places(Granularity::Building).with_window(9, 18),
        IntentFilter::for_actions([actions::PLACE_ARRIVAL, actions::PLACE_DEPARTURE]),
    );
    let always = study.pms.register_app(
        "todo-always",
        AppRequirement::places(Granularity::Building),
        IntentFilter::for_actions([actions::PLACE_ARRIVAL, actions::PLACE_DEPARTURE]),
    );
    study.pms.run(SimTime::from_day_time(5, 0, 0, 0)).unwrap();

    let windowed_events: Vec<Intent> = windowed.try_iter().collect();
    let always_events: Vec<Intent> = always.try_iter().collect();
    assert!(
        windowed_events.len() < always_events.len(),
        "window must filter some events ({} vs {})",
        windowed_events.len(),
        always_events.len()
    );
    for intent in &windowed_events {
        let h = intent.time.hour_of_day();
        assert!((9..18).contains(&h), "event outside window at {h}h");
    }
}

#[test]
fn intents_keep_flowing_at_permitted_granularity_through_cloud_faults() {
    // A total transport outage (100% drop) must not silence the intent
    // bus: apps keep receiving place events, coarsened to the granularity
    // the user permitted, while the PMS rides on local discovery.
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(2300)
        .build();
    let population = Population::generate(&world, 1, 2301);
    let itinerary = population.itinerary(&world, population.agents()[0].id(), 4);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let device = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 2302);
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 2303));
    let faulty = FaultyCloud::new(
        cloud,
        FaultPlan::with_rate(2304, 1.0).kinds(&[FaultKind::Drop]),
    );
    faulty.set_enabled(false);
    let mut pms = PmwareMobileService::new(
        device,
        faulty.clone(),
        PmsConfig::for_participant(23),
        SimTime::EPOCH,
    )
    .expect("registration precedes the outage");
    let rx = pms.register_app(
        "ads",
        AppRequirement::places(Granularity::Area),
        IntentFilter::for_actions([
            actions::PLACE_ARRIVAL,
            actions::PLACE_DEPARTURE,
            actions::PLACE_NEW,
        ]),
    );

    // One clean day (places get discovered and positioned), then every
    // request to the cloud is dropped for the remaining three.
    let outage_from = SimTime::from_day_time(1, 12, 0, 0);
    pms.run(outage_from).unwrap();
    faulty.set_enabled(true);
    pms.run(SimTime::from_day_time(4, 0, 0, 0)).unwrap();

    assert!(
        faulty.stats().drops > 0,
        "the outage must actually drop traffic"
    );
    assert!(
        pms.counters().gca_local_fallbacks >= 2,
        "offline maintenance falls back to local discovery: {:?}",
        pms.counters()
    );

    let during_outage: Vec<Intent> = rx.try_iter().filter(|i| i.time >= outage_from).collect();
    assert!(
        during_outage
            .iter()
            .any(|i| i.action == actions::PLACE_ARRIVAL),
        "arrivals must reach the app during the outage"
    );
    for intent in &during_outage {
        assert_eq!(
            intent.extras["granularity"], "area",
            "payloads stay at the permitted granularity: {intent:?}"
        );
    }
}

#[test]
fn lifelog_report_reflects_routine() {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(2200)
        .build();
    let population = Population::generate(&world, 1, 2201);
    let itinerary = population.itinerary(&world, population.agents()[0].id(), 7);
    let mut study = setup(&world, &itinerary, 2202);
    let rx = study
        .pms
        .register_app("lifelog", LifeLogApp::requirement(), LifeLogApp::filter());
    let mut lifelog = LifeLogApp::new(1.0, 2203);
    for day in 1..=7u64 {
        study.pms.run(SimTime::from_day_time(day, 0, 0, 0)).unwrap();
        for intent in rx.try_iter() {
            lifelog.on_intent(&intent);
        }
    }
    // The place with the most visit-days is visited on most study days
    // (home), and the report mentions its tag.
    let max_days = lifelog
        .history()
        .values()
        .map(|h| h.visit_days.len())
        .max()
        .unwrap_or(0);
    assert!(
        max_days >= 5,
        "home should appear on most days, got {max_days}"
    );
    let report = lifelog.report();
    assert!(report.contains("my-place-"), "{report}");
}
