//! Admission control end-to-end (EXPERIMENTS § ADMISSION): a client
//! cohort squeezed through tight per-user token buckets must converge to
//! the exact fault-free baseline state — throttling defers work, it never
//! loses it — and honoring the server's `retry_after_s` hint must be
//! measurably cheaper in wire requests than blind exponential backoff.
//!
//! Everything is deterministic: the admission controller is seeded and
//! sim-time driven, the client's retry schedule is a pure function of
//! simulated time, so each scenario is a replayable trajectory.

use pmware::cloud::{AdmissionConfig, ContactEntry, MobilityProfile, RateBudget};
use pmware::core::pms::PeerProvider;
use pmware::core::registry::PmPlace;
use pmware::prelude::*;

const DAYS: u64 = 3;
const PARTICIPANTS: usize = 3;
const SEED: u64 = 20_140;

fn study_end() -> SimTime {
    SimTime::from_day_time(DAYS, 0, 0, 0)
}

/// A companion present during the day, so social sync has real traffic
/// to throttle (same shape as the chaos matrix's shadow peer).
struct ShadowPeer {
    itinerary: Itinerary,
}

impl PeerProvider for ShadowPeer {
    fn peers_at(&self, t: SimTime) -> Vec<(String, GeoPoint)> {
        if (10..16).contains(&t.hour_of_day()) {
            vec![("shadow-peer".to_owned(), self.itinerary.position_at(t))]
        } else {
            Vec::new()
        }
    }
}

/// Durable per-participant state compared bit-for-bit across scenarios.
#[derive(Debug, PartialEq)]
struct FinalState {
    client_places: Vec<PmPlace>,
    cloud_places: Vec<DiscoveredPlace>,
    cloud_profiles: Vec<MobilityProfile>,
    cloud_contacts: Vec<ContactEntry>,
    cloud_observations: usize,
}

struct CohortOutcome {
    states: Vec<FinalState>,
    /// Wire sends summed over the cohort (retries included), measured at
    /// the end of the run proper so every scenario counts the same span.
    wire_requests: u64,
    /// 429s the cohort absorbed.
    rate_limited: u64,
    /// Denials the cloud's admission controller issued.
    denials: u64,
}

/// One tight per-user budget for every rate class: two requests of burst,
/// one token refilled every 30 s. The nightly maintenance pass issues a
/// same-instant burst of ingest syncs well above 2, so throttling is
/// guaranteed to fire.
fn tight_budget() -> AdmissionConfig {
    AdmissionConfig::uniform(SEED + 7, RateBudget::new(2, SimDuration::from_seconds(30)))
}

fn run_cohort(admission: Option<AdmissionConfig>, honor_retry_after: bool) -> CohortOutcome {
    let world = WorldBuilder::new(RegionProfile::test_tiny())
        .seed(SEED)
        .build();
    let population = Population::generate(&world, PARTICIPANTS, SEED + 1);
    let cloud = SharedCloud::new(CloudInstance::new(
        CellDatabase::from_world(&world),
        SEED + 2,
    ));
    cloud.set_admission(admission);

    let mut states = Vec::new();
    let mut wire_requests = 0;
    let mut rate_limited = 0;
    for (i, agent) in population.agents().iter().enumerate() {
        let itinerary = population.itinerary(&world, agent.id(), DAYS);
        let env = RadioEnvironment::new(&world, RadioConfig::default());
        let device = Device::new(
            env,
            &itinerary,
            EnergyModel::htc_explorer(),
            SEED + 10 + i as u64,
        );
        let mut pms = PmwareMobileService::new(
            device,
            cloud.clone(),
            PmsConfig::for_participant(i as u32),
            SimTime::EPOCH,
        )
        .expect("registration is exempt from admission control");
        pms.cloud_client_mut()
            .set_honor_retry_after(honor_retry_after);
        let user = pms.cloud_client_mut().user();
        let _rx = pms.register_app(
            "admission-app",
            AppRequirement::places(Granularity::Building).with_social(),
            IntentFilter::all(),
        );
        pms.set_peer_provider(Box::new(ShadowPeer {
            itinerary: itinerary.clone(),
        }));
        pms.run(study_end()).expect("run");
        wire_requests += pms.cloud_client_mut().wire_requests();
        rate_limited += pms.cloud_client_mut().rate_limited();
        let report = pms.finish(study_end());
        states.push(FinalState {
            client_places: report.places,
            cloud_places: cloud.places_of(user),
            cloud_profiles: cloud.profiles_of(user),
            cloud_contacts: cloud.contacts_of(user),
            cloud_observations: cloud.observation_count(user),
        });
    }
    CohortOutcome {
        states,
        wire_requests,
        rate_limited,
        denials: cloud.admission_denials(),
    }
}

#[test]
fn throttled_cohort_converges_to_the_fault_free_baseline() {
    let baseline = run_cohort(None, true);
    assert_eq!(baseline.denials, 0);
    assert_eq!(baseline.rate_limited, 0);
    for (i, state) in baseline.states.iter().enumerate() {
        assert!(
            !state.cloud_places.is_empty(),
            "participant {i} must discover and sync places"
        );
        assert!(
            !state.cloud_profiles.is_empty(),
            "participant {i} must sync day profiles"
        );
        assert!(
            !state.cloud_contacts.is_empty(),
            "participant {i} must record social encounters"
        );
    }

    let throttled = run_cohort(Some(tight_budget()), true);
    assert!(
        throttled.denials > 0,
        "the tight budget must actually shed requests"
    );
    // Client counters stop at the end of the run proper; the cloud also
    // counts denials issued during the final `finish` syncs, so it sees
    // at least as many.
    assert!(throttled.rate_limited > 0);
    assert!(throttled.denials >= throttled.rate_limited);
    assert_eq!(
        throttled.states, baseline.states,
        "throttling must defer work, never lose it"
    );
}

#[test]
fn same_seed_same_429_trajectory() {
    let first = run_cohort(Some(tight_budget()), true);
    let second = run_cohort(Some(tight_budget()), true);
    assert!(first.denials > 0);
    assert_eq!(first.denials, second.denials);
    assert_eq!(first.rate_limited, second.rate_limited);
    assert_eq!(first.wire_requests, second.wire_requests);
    assert_eq!(first.states, second.states);
}

#[test]
fn retry_after_hints_beat_blind_exponential_backoff() {
    let guided = run_cohort(Some(tight_budget()), true);
    let blind = run_cohort(Some(tight_budget()), false);
    assert!(guided.denials > 0 && blind.denials > 0);
    // The hint retries exactly once, at the refill instant; blind backoff
    // probes the closed door repeatedly before its waits grow past the
    // refill period.
    assert!(
        blind.rate_limited > guided.rate_limited,
        "blind {} vs guided {} 429s",
        blind.rate_limited,
        guided.rate_limited
    );
    assert!(
        blind.wire_requests > guided.wire_requests,
        "blind {} vs guided {} wire requests",
        blind.wire_requests,
        guided.wire_requests
    );
}
