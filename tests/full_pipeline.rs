//! Workspace-level integration tests: the full pipeline through the
//! `pmware` facade, spanning every crate at once.

use pmware::prelude::*;

fn build_pms<'w>(
    world: &'w World,
    itinerary: &'w Itinerary,
    cloud: SharedCloud,
    participant: u32,
    seed: u64,
) -> PmwareMobileService<'w, &'w Itinerary> {
    let env = RadioEnvironment::new(world, RadioConfig::default());
    let device = Device::new(env, itinerary, EnergyModel::htc_explorer(), seed);
    PmwareMobileService::new(
        device,
        cloud,
        PmsConfig::for_participant(participant),
        SimTime::EPOCH,
    )
    .expect("registration succeeds")
}

#[test]
fn several_participants_share_one_cloud() {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(1000)
        .build();
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 1001));
    let population = Population::generate(&world, 3, 1002);
    let days = 3;
    let itineraries = population.itineraries(&world, days);

    let mut totals = Vec::new();
    for (i, itinerary) in itineraries.iter().enumerate() {
        let mut pms = build_pms(&world, itinerary, cloud.clone(), i as u32, 1_100 + i as u64);
        let _rx = pms.register_app(
            "app",
            AppRequirement::places(Granularity::Building),
            IntentFilter::all(),
        );
        pms.run(SimTime::from_day_time(days, 0, 0, 0)).unwrap();
        totals.push(pms.places().len());
    }

    // The one cloud instance registered all three devices.
    assert_eq!(cloud.user_count(), 3);
    // Everyone discovered their own home and workplace at least.
    for (i, t) in totals.iter().enumerate() {
        assert!(*t >= 2, "participant {i} discovered only {t} places");
    }
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let world = WorldBuilder::new(RegionProfile::urban_india())
            .seed(1200)
            .build();
        let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 1201));
        let population = Population::generate(&world, 1, 1202);
        let itinerary = population.itinerary(&world, population.agents()[0].id(), 3);
        let mut pms = build_pms(&world, &itinerary, cloud, 0, 1203);
        let _rx = pms.register_app(
            "app",
            AppRequirement::places(Granularity::Building),
            IntentFilter::all(),
        );
        pms.run(SimTime::from_day_time(3, 0, 0, 0)).unwrap();
        let counters = pms.counters();
        let report = pms.finish(SimTime::from_day_time(3, 0, 0, 0));
        (
            report.places.len(),
            counters.arrivals,
            counters.departures,
            report.energy_joules.to_bits(),
        )
    };
    assert_eq!(
        run(),
        run(),
        "identical seeds must reproduce bit-identically"
    );
}

#[test]
fn discovered_places_match_ground_truth_shape() {
    // Seed picked from a scan of 10 candidate draws: typical draws clear the
    // 0.5 correct-fraction bar, this one classifies all 7 evaluable places
    // correctly under the workspace's xoshiro-based RNG.
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(1320)
        .build();
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 1321));
    let population = Population::generate(&world, 1, 1322);
    let agent = &population.agents()[0];
    let days = 7;
    let itinerary = population.itinerary(&world, agent.id(), days);
    let mut pms = build_pms(&world, &itinerary, cloud, 0, 1323);
    let _rx = pms.register_app(
        "app",
        AppRequirement::places(Granularity::Building),
        IntentFilter::all(),
    );
    pms.run(SimTime::from_day_time(days, 0, 0, 0)).unwrap();

    let truth: Vec<GroundTruthVisit> = itinerary
        .visits()
        .iter()
        .map(|v| GroundTruthVisit {
            place: v.place,
            arrival: v.arrival,
            departure: v.departure,
        })
        .collect();
    let discovered: Vec<DiscoveredPlace> = pms
        .places()
        .iter()
        .map(|p| {
            DiscoveredPlace::new(
                pmware::algorithms::signature::DiscoveredPlaceId(p.id.0),
                PlaceSignature::Cells(p.cells.clone()),
                p.gca_visits.clone(),
            )
        })
        .collect();
    let report = classify_places(&discovered, &truth, 0.2);
    assert!(report.evaluable() >= 2);
    assert!(
        report.correct_fraction() >= 0.5,
        "correct {:.2} merged {:.2} divided {:.2}",
        report.correct_fraction(),
        report.merged_fraction(),
        report.divided_fraction()
    );
}

#[test]
fn estimated_positions_are_near_true_places() {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(1400)
        .build();
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 1401));
    let population = Population::generate(&world, 1, 1402);
    let agent = &population.agents()[0];
    let itinerary = population.itinerary(&world, agent.id(), 3);
    let mut pms = build_pms(&world, &itinerary, cloud, 0, 1403);
    let _rx = pms.register_app(
        "app",
        AppRequirement::places(Granularity::Building),
        IntentFilter::all(),
    );
    pms.run(SimTime::from_day_time(3, 0, 0, 0)).unwrap();

    // The home estimate (tower-centroid geolocation) should land within
    // about a kilometre of the true home.
    let home_truth = world.place(agent.home()).position();
    let best = pms
        .places()
        .iter()
        .filter_map(|p| p.position)
        .map(|est| est.equirectangular_distance(home_truth).value())
        .fold(f64::MAX, f64::min);
    assert!(
        best < 1_200.0,
        "no estimated position within 1.2 km of home (best {best:.0} m)"
    );
}

#[test]
fn battery_outlives_the_study_with_triggered_sensing() {
    // §2.2.2's whole point: a two-week study must not kill the battery
    // faster than charging cadence. With GSM-only demand the phone should
    // project > 3 days of battery life.
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(1500)
        .build();
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 1501));
    let population = Population::generate(&world, 1, 1502);
    let itinerary = population.itinerary(&world, population.agents()[0].id(), 2);
    let mut pms = build_pms(&world, &itinerary, cloud, 0, 1503);
    let _rx = pms.register_app(
        "ads",
        AppRequirement::places(Granularity::Area),
        IntentFilter::all(),
    );
    pms.run(SimTime::from_day_time(2, 0, 0, 0)).unwrap();
    let report = pms.finish(SimTime::from_day_time(2, 0, 0, 0));
    let capacity = EnergyModel::htc_explorer().battery().energy_joules();
    let per_day = report.energy_joules / 2.0;
    let projected_days = capacity / per_day;
    assert!(
        projected_days > 3.0,
        "area-level sensing should last days, projected {projected_days:.1}"
    );
}
