//! # PMWare — a middleware for discovering and managing places of human interest
//!
//! A full Rust reproduction of *PMWare* (Yadav, Kumar, Jassal, Naik — ACM
//! Middleware 2014), including every substrate the paper's evaluation
//! needed: a synthetic radio world, schedule-driven human mobility, a
//! simulated phone with a calibrated energy model, the three place-
//! discovery algorithms (GCA, SensLoc, Kang et al.), the PMWare mobile
//! service (triggered sensing, intent bus, privacy granularities, mobility
//! profiles), the cloud instance (REST API, auth, analytics, prediction,
//! geolocation), and the connected applications from the paper (PlaceADs,
//! To-Do, life logging).
//!
//! This facade crate re-exports the workspace members under one roof; see
//! each member crate for details:
//!
//! * [`geo`] — geographic primitives
//! * [`world`] — the synthetic radio world
//! * [`mobility`] — simulated participants
//! * [`device`] — the simulated phone and its battery
//! * [`algorithms`] — GCA / SensLoc / Kang / routes / scoring
//! * [`cloud`] — the PMWare cloud instance (PCI)
//! * [`core`] — the PMWare mobile service (PMS)
//! * [`apps`] — connected applications
//! * [`obs`] — sim-time tracing, metrics registry, profiling hooks
//!
//! # Quickstart
//!
//! ```
//! use pmware::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A city, one participant, one phone.
//! let world = WorldBuilder::new(RegionProfile::test_tiny()).seed(7).build();
//! let population = Population::generate(&world, 1, 7);
//! let itinerary = population.itinerary(&world, population.agents()[0].id(), 2);
//! let env = RadioEnvironment::new(&world, RadioConfig::default());
//! let phone = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 7);
//! let cloud = SharedCloud::new(CloudInstance::new(
//!     CellDatabase::from_world(&world),
//!     7,
//! ));
//!
//! // The middleware, with one connected app.
//! let mut pms = PmwareMobileService::new(
//!     phone,
//!     cloud,
//!     PmsConfig::for_participant(0),
//!     SimTime::EPOCH,
//! )?;
//! let events = pms.register_app(
//!     "quickstart",
//!     AppRequirement::places(Granularity::Building),
//!     IntentFilter::all(),
//! );
//!
//! // Two simulated days.
//! pms.run(SimTime::from_day_time(2, 0, 0, 0))?;
//! assert!(!pms.places().is_empty());
//! drop(events);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pmware_algorithms as algorithms;
pub use pmware_apps as apps;
pub use pmware_cloud as cloud;
pub use pmware_core as core;
pub use pmware_device as device;
pub use pmware_geo as geo;
pub use pmware_mobility as mobility;
pub use pmware_obs as obs;
pub use pmware_world as world;

/// The most common imports in one place.
pub mod prelude {
    pub use pmware_algorithms::matching::{classify_places, GroundTruthVisit};
    pub use pmware_algorithms::signature::{DiscoveredPlace, PlaceSignature};
    pub use pmware_apps::{AdInventory, LifeLogApp, PlaceAdsApp, TodoApp, UserTasteModel};
    pub use pmware_cloud::{
        BalancePolicy, CellDatabase, CloudEndpoint, CloudInstance, FaultKind, FaultPlan,
        FaultyCloud, InstanceId, SharedCloud, TopologyRouter,
    };
    pub use pmware_core::intents::{actions, Intent, IntentFilter};
    pub use pmware_core::{
        AppRequirement, Granularity, PmsCheckpoint, PmsConfig, PmwareMobileService, RouteAccuracy,
        UserPreferences,
    };
    pub use pmware_device::{Device, EnergyModel, Interface};
    pub use pmware_geo::{GeoPoint, Meters};
    pub use pmware_mobility::{AgentId, Itinerary, Population};
    pub use pmware_obs::Obs;
    pub use pmware_world::builder::{PlaceMix, RegionProfile, WorldBuilder};
    pub use pmware_world::radio::{RadioConfig, RadioEnvironment};
    pub use pmware_world::{SimDuration, SimTime, World};
}
