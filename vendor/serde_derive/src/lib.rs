//! Minimal vendored stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde`'s Value-based `Serialize` /
//! `Deserialize` traits. Because the target trait methods are fully
//! type-inferred (`to_json_value` / `from_json_value`), the generator
//! never needs field *types* — only names and shapes — so the input item
//! is parsed with plain `proc_macro` token walking (no syn/quote) and the
//! output is assembled as a string and re-parsed.
//!
//! Supported shapes (everything this workspace derives):
//! - named-field structs (field-level `#[serde(default)]` honoured)
//! - tuple structs: 1-field are transparent (as in serde_json, where
//!   `#[serde(transparent)]` is redundant for newtypes), n-field are arrays
//! - unit structs (null)
//! - enums, externally tagged: unit variants as strings, newtype/tuple
//!   variants as `{"Variant": ...}`, struct variants as `{"Variant": {...}}`
//!
//! Generics are not supported (the workspace derives none).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: Kind,
}

/// Derives `serde::Serialize` for the item.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for the item.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips attributes; returns true if any skipped one was
    /// `#[serde(default)]`.
    fn skip_attributes(&mut self) -> bool {
        let mut saw_default = false;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    saw_default |= attr_is_serde_default(g.stream());
                }
                other => panic!("expected attribute body, got {other:?}"),
            }
        }
        saw_default
    }

    /// Skips `pub`, `pub(...)` if present.
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected identifier, got {other:?}"),
        }
    }

    fn expect_punct(&mut self, c: char) {
        match self.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == c => {}
            other => panic!("expected `{c}`, got {other:?}"),
        }
    }

    /// Skips tokens up to (and including) the next comma at angle-bracket
    /// depth zero. Returns false when input ended without a comma.
    fn skip_until_comma(&mut self) -> bool {
        let mut angle_depth = 0i32;
        while let Some(tok) = self.next() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

/// Checks whether an attribute body (`serde (default)` etc.) marks a
/// serde `default`.
fn attr_is_serde_default(body: TokenStream) -> bool {
    let mut toks = body.into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attributes();
    cur.skip_visibility();
    let keyword = cur.expect_ident();
    let name = cur.expect_ident();
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generics are not supported on `{name}`");
    }
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_struct_body(&mut cur, &name)),
        "enum" => Kind::Enum(parse_enum_body(&mut cur, &name)),
        other => panic!("serde derive: expected struct or enum, got `{other}`"),
    };
    Item { name, kind }
}

fn parse_struct_body(cur: &mut Cursor, name: &str) -> Shape {
    match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!("unexpected struct body for `{name}`: {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let default = cur.skip_attributes();
        cur.skip_visibility();
        let name = cur.expect_ident();
        cur.expect_punct(':');
        fields.push(Field { name, default });
        if !cur.skip_until_comma() {
            break;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    loop {
        cur.skip_attributes();
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        count += 1;
        if !cur.skip_until_comma() {
            break;
        }
    }
    count
}

fn parse_enum_body(cur: &mut Cursor, name: &str) -> Vec<Variant> {
    let body = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("unexpected enum body for `{name}`: {other:?}"),
    };
    let mut cur = Cursor::new(body);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.skip_attributes();
        if cur.at_end() {
            break;
        }
        let vname = cur.expect_ident();
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = Shape::Tuple(count_tuple_fields(g.stream()));
                cur.next();
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = Shape::Named(parse_named_fields(g.stream()));
                cur.next();
                s
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name: vname, shape });
        // Consume the trailing comma (skipping any `= discriminant`).
        if !cur.skip_until_comma() {
            break;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_owned(),
        Kind::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_json_value(&self.0)".to_owned(),
        Kind::Struct(Shape::Tuple(n)) => ser_tuple_body(*n, "self."),
        Kind::Struct(Shape::Named(fields)) => ser_named_body(fields, "self."),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vn}\")),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_json_value(f0)".to_owned()
                        } else {
                            ser_tuple_body(*n, "f")
                        };
                        let _ = write!(
                            arms,
                            "{name}::{vn}({binds}) => {{\
                               let mut map = ::std::collections::BTreeMap::new();\
                               map.insert(::std::string::String::from(\"{vn}\"), {inner});\
                               ::serde::Value::Object(map)\
                             }},",
                            binds = binders.join(", "),
                        );
                    }
                    Shape::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let inner = ser_named_body(fields, "");
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {binds} }} => {{\
                               let mut map = ::std::collections::BTreeMap::new();\
                               map.insert(::std::string::String::from(\"{vn}\"), {inner});\
                               ::serde::Value::Object(map)\
                             }},",
                            binds = binders.join(", "),
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\
         impl ::serde::Serialize for {name} {{\
           fn to_json_value(&self) -> ::serde::Value {{ {body} }}\
         }}"
    )
}

/// `Value::Array` of the fields `"{prefix}0"..` (tuple access or binders).
fn ser_tuple_body(n: usize, prefix: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::Serialize::to_json_value(&{prefix}{i})"))
        .collect();
    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
}

/// `Value::Object` from named fields via `{prefix}{field}` accessors.
fn ser_named_body(fields: &[Field], prefix: &str) -> String {
    let mut out = String::from("{ let mut map = ::std::collections::BTreeMap::new();");
    for f in fields {
        let fname = &f.name;
        let _ = write!(
            out,
            "map.insert(::std::string::String::from(\"{fname}\"), \
             ::serde::Serialize::to_json_value(&{prefix}{fname}));"
        );
    }
    out.push_str("::serde::Value::Object(map) }");
    out
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => format!(
            "match value {{\
               ::serde::Value::Null => ::std::result::Result::Ok({name}),\
               other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"expected null for {name}, got {{}}\", other))),\
             }}"
        ),
        Kind::Struct(Shape::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_json_value(value)?))"
        ),
        Kind::Struct(Shape::Tuple(n)) => {
            let ctor = de_tuple_ctor(name, *n);
            de_from_array("value", name, *n, &ctor)
        }
        Kind::Struct(Shape::Named(fields)) => {
            let ctor = de_named_ctor(name, name, fields);
            let obj_binder = if fields.is_empty() { "_obj" } else { "obj" };
            format!(
                "{{ let {obj_binder} = value.as_object().ok_or_else(|| \
                   ::serde::DeError::custom(::std::format!(\
                     \"expected object for {name}, got {{}}\", value)))?;\
                   ::std::result::Result::Ok({ctor}) }}"
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        );
                    }
                    Shape::Tuple(1) => {
                        let _ = write!(
                            data_arms,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                               ::serde::Deserialize::from_json_value(inner)?)),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let ctor = de_tuple_ctor(&format!("{name}::{vn}"), *n);
                        let arm = de_from_array("inner", &format!("{name}::{vn}"), *n, &ctor);
                        let _ = write!(data_arms, "\"{vn}\" => {arm},");
                    }
                    Shape::Named(fields) => {
                        let ctor = de_named_ctor(&format!("{name}::{vn}"), name, fields);
                        let _ = write!(
                            data_arms,
                            "\"{vn}\" => {{ let obj = inner.as_object().ok_or_else(|| \
                               ::serde::DeError::custom(\"expected object for {name}::{vn}\"))?;\
                               ::std::result::Result::Ok({ctor}) }},"
                        );
                    }
                }
            }
            // Avoid unused-variable warnings in the expansion when an enum
            // has no data-carrying variants.
            let inner_binder = if data_arms.is_empty() {
                "_inner"
            } else {
                "inner"
            };
            format!(
                "match value {{\
                   ::serde::Value::String(tag) => match tag.as_str() {{\
                     {unit_arms}\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                       ::std::format!(\"unknown variant {{}} of {name}\", other))),\
                   }},\
                   ::serde::Value::Object(map) if map.len() == 1 => {{\
                     let (tag, {inner_binder}) = map.iter().next().expect(\"len checked\");\
                     match tag.as_str() {{\
                       {data_arms}\
                       other => ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"unknown variant {{}} of {name}\", other))),\
                     }}\
                   }},\
                   other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"expected {name}, got {{}}\", other))),\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\
           fn from_json_value(value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\
         }}"
    )
}

/// Constructor `Path(items[0]?, items[1]?, ...)`.
fn de_tuple_ctor(path: &str, n: usize) -> String {
    let args: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_json_value(&items[{i}])?"))
        .collect();
    format!("{path}({})", args.join(", "))
}

/// Wraps a tuple constructor with array extraction and arity checking.
fn de_from_array(source: &str, path: &str, n: usize, ctor: &str) -> String {
    format!(
        "{{ let items = {source}.as_array().ok_or_else(|| \
           ::serde::DeError::custom(\"expected array for {path}\"))?;\
           if items.len() != {n} {{\
             return ::std::result::Result::Err(::serde::DeError::custom(\
               ::std::format!(\"expected {n} elements for {path}, got {{}}\", items.len())));\
           }}\
           ::std::result::Result::Ok({ctor}) }}"
    )
}

/// Constructor `Path {{ field: ..., ... }}` reading from `obj`.
///
/// Missing fields fall back to deserialising `Null` — which yields `None`
/// for `Option` fields (matching serde) and a "missing field" error for
/// everything else. `#[serde(default)]` fields use `Default::default()`.
fn de_named_ctor(path: &str, ty: &str, fields: &[Field]) -> String {
    let mut out = format!("{path} {{");
    for f in fields {
        let fname = &f.name;
        if f.default {
            let _ = write!(
                out,
                "{fname}: match obj.get(\"{fname}\") {{\
                   ::std::option::Option::Some(v) => \
                     ::serde::Deserialize::from_json_value(v)\
                       .map_err(|e| e.context_field(\"{ty}\", \"{fname}\"))?,\
                   ::std::option::Option::None => ::std::default::Default::default(),\
                 }},"
            );
        } else {
            let _ = write!(
                out,
                "{fname}: match obj.get(\"{fname}\") {{\
                   ::std::option::Option::Some(v) => \
                     ::serde::Deserialize::from_json_value(v)\
                       .map_err(|e| e.context_field(\"{ty}\", \"{fname}\"))?,\
                   ::std::option::Option::None => \
                     ::serde::Deserialize::from_json_value(&::serde::Value::Null)\
                       .map_err(|_| ::serde::DeError::missing_field(\"{ty}\", \"{fname}\"))?,\
                 }},"
            );
        }
    }
    out.push('}');
    out
}
