//! Minimal vendored stand-in for `crossbeam`.
//!
//! Provides the `channel` module surface the workspace uses: unbounded
//! MPMC-shaped channels with `try_iter`. Built on `std::sync::mpsc` plus a
//! mutex on the receiver so the handle can be shared/cloned like
//! crossbeam's (consumption is work-stealing: each message goes to exactly
//! one receiver handle).

#![forbid(unsafe_code)]

/// Multi-producer channels (crossbeam-channel subset).
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Error returned when sending on a disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half (clonable).
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    // Manual impl: the derive would demand `T: Clone`, but a channel handle
    // clones regardless of what it carries (as upstream's does).
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// The receiving half (clonable; handles share one buffer).
    #[derive(Debug)]
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|_| RecvError)
        }

        /// Receives a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match self.lock().try_recv() {
                Ok(v) => Ok(v),
                Err(mpsc::TryRecvError::Empty) => Err(TryRecvError::Empty),
                Err(mpsc::TryRecvError::Disconnected) => Err(TryRecvError::Disconnected),
            }
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Blocking iterator until all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Iterator over immediately available messages.
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    /// Blocking iterator over messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_try_iter_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
