//! Minimal vendored stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::shuffle`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 rather than
//! upstream's ChaCha12, so the concrete random streams differ from the
//! real crate — simulations remain fully deterministic per seed, which
//! is the property the workspace relies on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Draws a u64 in `[0, bound)` via widening multiply with rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Lemire's method: unbiased thanks to the low-word rejection loop.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let wide = (rng.next_u64() as u128) * (bound as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + bounded_u64(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (low as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i32, u32, i64, u64, usize, isize, u16, i16, u8, i8);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        let value = low + unit * (high - low);
        // Guard against rounding landing exactly on the open bound.
        if value < high {
            value
        } else {
            low.max(f64_prev(high))
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low <= high, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        low + unit * (high - low)
    }
}

/// Largest float strictly below `x` (for positive finite `x`).
fn f64_prev(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

/// Range-shaped arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64 (differs from upstream rand's ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (subset: `SliceRandom::shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2..=3);
            assert!((2..=3).contains(&w));
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_inclusive_ends() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[rng.gen_range(0..=1) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_rate_tracks_p() {
        let mut rng = StdRng::seed_from_u64(21);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let f: f64 = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
