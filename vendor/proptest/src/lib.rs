//! Minimal vendored stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` test harness macro, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, range / tuple / collection / option / `any` / string
//! strategies, and `prop_map`. No shrinking — a failing case panics with
//! its deterministic case seed so it can be re-run.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies inside a test case.
pub type TestRng = StdRng;

/// Outcome of a single generated test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` (resampled, not a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Drives one property: runs `config.cases` generated cases with
/// deterministic per-case seeds derived from the test name.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    while passed < config.cases {
        let seed = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        index += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.cases.saturating_mul(20) {
                    panic!(
                        "proptest `{name}`: too many rejected cases \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed (case seed {seed:#x}): {msg}");
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Always produces clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Bounded rather than bit-random: property bodies do arithmetic.
        rng.gen_range(-1.0e9..1.0e9)
    }
}

/// String strategy: a `&str` pattern in a small regex subset —
/// literal characters and `[...]` classes (ranges + literals), each
/// optionally repeated `{n}` or `{m,n}`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One element: a class or a literal char.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
            let class = expand_class(&chars[i + 1..close], pattern);
            i = close + 1;
            class
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().expect("repetition lower bound"),
                    hi.trim().parse::<usize>().expect("repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            out.push(alphabet[rng.gen_range(0..alphabet.len())]);
        }
    }
    out
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    assert!(
        !set.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    set
}

/// Strategy combinators namespaced like upstream (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Size specification: exact (`240`) or ranged (`0..60`).
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl SizeRange {
            fn sample(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.lo..=self.hi)
            }
        }

        /// `Vec` strategy with the given element strategy and size.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy for `Vec<S::Value>`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `BTreeSet` strategy: up to the sampled count of draws
        /// (duplicates collapse, as in upstream proptest).
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy for `BTreeSet<S::Value>`.
        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// `Option` strategy: `None` for a quarter of the cases.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// Strategy for `Option<S::Value>`.
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_bool(0.25) {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// One test-fn-at-a-time expander behind [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest($cfg, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports a test-case failure instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports a test-case failure instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Rejects the current case (resampled, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, f in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn collections_and_options(
            v in prop::collection::vec((0u32..6, any::<bool>()), 0..20),
            s in prop::collection::btree_set(0u64..40, 1..5),
            o in prop::option::of(0u8..3),
            text in "[a-z/0-9]{0,24}",
            exact in prop::collection::vec(any::<bool>(), 7),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(!s.is_empty() && s.len() <= 4);
            if let Some(x) = o {
                prop_assert!(x < 3);
            }
            prop_assert!(text.len() <= 24);
            prop_assert!(text.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || c == '/'));
            prop_assert_eq!(exact.len(), 7);
        }

        #[test]
        fn mapped_strategies(p in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(p <= 18);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        run_proptest_for_panic();
    }

    fn run_proptest_for_panic() {
        crate::run_proptest(ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }
}
