//! Minimal vendored stand-in for the `bytes` crate.
//!
//! The workspace builds in an offline container with no crates.io access,
//! so the handful of external crates it uses are vendored as small,
//! API-compatible subsets. Only the surface the workspace actually touches
//! is implemented: an immutable byte buffer constructed from `Vec<u8>`
//! that derefs to `[u8]`.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(std::sync::Arc<Vec<u8>>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(std::sync::Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes(std::sync::Arc::new(v.to_vec()))
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes(std::sync::Arc::new(v.as_bytes().to_vec()))
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}
