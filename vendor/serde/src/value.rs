//! The JSON data model shared by the vendored `serde` / `serde_json`.
//!
//! `Value` lives here (rather than in `serde_json`) so the `Serialize` /
//! `Deserialize` traits can be expressed directly in terms of it without
//! a circular crate dependency. `serde_json` re-exports it.

use std::collections::BTreeMap;
use std::fmt;

/// An arbitrary-precision-free JSON number.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Builds a number from a signed integer, normalising non-negatives
    /// into `PosInt` so equality is variant-independent.
    pub fn from_i64(v: i64) -> Number {
        if v >= 0 {
            Number::PosInt(v as u64)
        } else {
            Number::NegInt(v)
        }
    }

    /// As `u64` if integer and in range.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    /// As `i64` if integer and in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }

    /// As `f64` (integers convert).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (*self, *other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            // Constructors normalise, so Pos/Neg never hold equal values.
            (Number::Float(a), Number::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) if v.is_finite() => {
                // Rust's Debug formatting for floats is shortest-roundtrip
                // and always keeps a fractional part ("1.0"), matching
                // what serde_json emits closely enough to roundtrip.
                write!(f, "{v:?}")
            }
            // serde_json emits null for non-finite floats.
            Number::Float(_) => f.write_str("null"),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key/value map. Sorted by key, so serialisation is deterministic.
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` for `Value::String`.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// `true` for `Value::Bool`.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// `true` for any `Value::Number`.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// `true` when the number is stored as a float (matches `serde_json`,
    /// where integer-represented numbers report `false`).
    pub fn is_f64(&self) -> bool {
        matches!(self, Value::Number(Number::Float(_)))
    }

    /// `true` for non-negative integer numbers.
    pub fn is_u64(&self) -> bool {
        matches!(self, Value::Number(Number::PosInt(_)))
    }

    /// `true` for integer numbers representable as `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some() && !self.is_f64()
    }

    /// `true` for `Value::Array`.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` for `Value::Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// The string payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As `u64`, if a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64`, if an integer number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `f64`, if any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The map, if an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` for other variants / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == Number::from_i64(*other as i64))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        matches!(self, Value::Number(n) if *n == Number::PosInt(*other))
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(Number::Float(v)) if v == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self == *other
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

/// Writes `value` as compact JSON into `out`.
pub fn write_json(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            use fmt::Write;
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(key, out);
                out.push(':');
                write_json(val, out);
            }
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::new();
        write_json(self, &mut buf);
        f.write_str(&buf)
    }
}
