//! Minimal vendored stand-in for `serde`.
//!
//! The real serde pivots on format-agnostic `Serializer` / `Deserializer`
//! traits; the only format this workspace ever uses is JSON, so this
//! stand-in collapses the data model straight onto [`Value`]:
//!
//! - [`Serialize`] renders a type to a [`Value`]
//! - [`Deserialize`] rebuilds a type from a [`Value`]
//!
//! The `serde_derive` proc-macros generate impls of these traits with the
//! same observable JSON shapes as upstream serde_json: structs are
//! objects, newtype structs are transparent, enums are externally tagged,
//! and missing `Option` fields deserialise to `None`.

pub mod value;

pub use value::{Number, Value};

// Derive macros, re-exported under the trait names (macro namespace).
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Deserialisation error: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error from a message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// Error for a field absent from an object.
    pub fn missing_field(ty: &str, field: &str) -> DeError {
        DeError {
            msg: format!("missing field `{field}` for `{ty}`"),
        }
    }

    /// Wraps this error with struct/field context.
    pub fn context_field(self, ty: &str, field: &str) -> DeError {
        DeError {
            msg: format!("{ty}.{field}: {}", self.msg),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types renderable to a JSON [`Value`].
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_json_value(&self) -> Value;
}

/// Types rebuildable from a JSON [`Value`].
///
/// The lifetime parameter mirrors upstream serde's API so bounds such as
/// `for<'de> Deserialize<'de>` (via [`de::DeserializeOwned`]) keep
/// working; this stand-in never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a JSON value.
    fn from_json_value(value: &Value) -> Result<Self, DeError>;
}

/// Deserialisation helpers and marker traits.
pub mod de {
    /// Owned deserialisation (no borrows from the input).
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_json_value(value: &Value) -> Result<Value, DeError> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_json_value(value: &Value) -> Result<bool, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, got {value}")))
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_json_value(value: &Value) -> Result<$t, DeError> {
                value
                    .as_i64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| {
                        DeError::custom(format!(
                            concat!("expected ", stringify!($t), ", got {}"),
                            value
                        ))
                    })
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_json_value(value: &Value) -> Result<$t, DeError> {
                value
                    .as_u64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| {
                        DeError::custom(format!(
                            concat!("expected ", stringify!($t), ", got {}"),
                            value
                        ))
                    })
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_json_value(value: &Value) -> Result<f64, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, got {value}")))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_json_value(value: &Value) -> Result<f32, DeError> {
        f64::from_json_value(value).map(|v| v as f32)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_json_value(value: &Value) -> Result<String, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom(format!("expected string, got {value}")))
    }
}

impl<'de> Deserialize<'de> for &'static str {
    /// Value-based deserialization cannot borrow from the input, so the
    /// string is leaked. Only `&'static str` fields use this (static
    /// taxonomy tables); the leak is bounded and tiny.
    fn from_json_value(value: &Value) -> Result<&'static str, DeError> {
        value
            .as_str()
            .map(|s| &*s.to_owned().leak())
            .ok_or_else(|| DeError::custom(format!("expected string, got {value}")))
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_json_value(value: &Value) -> Result<char, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::custom("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_json_value(value: &Value) -> Result<Option<T>, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Vec<T>, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {value}")))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_json_value(value: &Value) -> Result<BTreeSet<T>, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {value}")))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T>
where
    T: std::hash::Hash + Eq,
{
    fn to_json_value(&self) -> Value {
        // Sort for deterministic output (upstream emits hash order).
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_json_value).collect())
    }
}

impl<'de, T> Deserialize<'de> for HashSet<T>
where
    T: Deserialize<'de> + std::hash::Hash + Eq,
{
    fn from_json_value(value: &Value) -> Result<HashSet<T>, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {value}")))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

/// Renders a serialised key to an object key string (strings pass
/// through, integers stringify — matching serde_json's map-key rules).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_json_value() {
        Value::String(s) => s,
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported JSON map key: {other}"),
    }
}

/// Rebuilds a key type from an object key string: first as a JSON
/// string, then (for numeric newtype keys) as a parsed number.
fn key_from_string<'de, K: Deserialize<'de>>(key: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_json_value(&Value::String(key.to_owned())) {
        return Ok(k);
    }
    if let Ok(u) = key.parse::<u64>() {
        return K::from_json_value(&Value::Number(Number::PosInt(u)));
    }
    if let Ok(i) = key.parse::<i64>() {
        return K::from_json_value(&Value::Number(Number::from_i64(i)));
    }
    if let Ok(b) = key.parse::<bool>() {
        return K::from_json_value(&Value::Bool(b));
    }
    Err(DeError::custom(format!(
        "cannot rebuild map key from {key:?}"
    )))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_json_value()))
                .collect(),
        )
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn from_json_value(value: &Value) -> Result<BTreeMap<K, V>, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, got {value}")))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_json_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        // BTreeMap collection sorts keys: deterministic output.
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_json_value()))
                .collect(),
        )
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_json_value(value: &Value) -> Result<HashMap<K, V, S>, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, got {value}")))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_json_value(v)?)))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident . $idx:tt),+) of $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::custom(format!("expected array, got {value}")))?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected array of length {}, got {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_json_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A.0) of 1;
    (A.0, B.1) of 2;
    (A.0, B.1, C.2) of 3;
    (A.0, B.1, C.2, D.3) of 4;
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_json_value(value: &Value) -> Result<Box<T>, DeError> {
        T::from_json_value(value).map(Box::new)
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_json_value(value: &Value) -> Result<(), DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::custom(format!("expected null, got {other}"))),
        }
    }
}
