//! Minimal vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API shape:
//! `lock()`/`read()`/`write()` return guards directly instead of `Result`s.
//! A poisoned std lock (a thread panicked while holding it) is recovered
//! by taking the inner guard — matching parking_lot, which has no poisoning.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// A guard type alias: std's guard, re-exported for signatures.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock (non-poisoning facade over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}
