//! Minimal vendored stand-in for `serde_json`.
//!
//! Re-exports the [`Value`] model from the vendored `serde` and provides
//! the function surface the workspace uses (`to_vec`, `from_slice`,
//! `to_string`, `from_str`, `from_value`, `to_value`) plus a `json!`
//! macro. Serialisation goes through `Serialize::to_json_value` and a
//! compact writer; floats are emitted with Rust's shortest-roundtrip
//! formatting so byte output parses back to the identical `f64`.

#![forbid(unsafe_code)]

mod parse;

pub use serde::value::{Number, Value};

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Renders `value` as a JSON [`Value`].
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Rebuilds a `T` from a JSON [`Value`].
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::from_json_value(&value).map_err(Error::from)
}

/// Serialises to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::value::write_json(&value.to_json_value(), &mut out);
    Ok(out)
}

/// Serialises to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a `T` from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::from_json_value(&value).map_err(Error::from)
}

/// Parses a `T` from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Serialises a value inside `json!` (infallible, like upstream's macro).
#[doc(hidden)]
pub fn __to_value_for_macro<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Array accumulator for `json!` — a named constructor keeps the macro's
/// push-based muncher out of reach of `clippy::vec_init_then_push`.
#[doc(hidden)]
pub fn __new_array_for_macro() -> Vec<Value> {
    Vec::new()
}

/// Builds a [`Value`] from JSON-ish syntax.
///
/// Supports `null` / `true` / `false`, object and array literals (nested,
/// trailing commas allowed), and arbitrary Rust expressions implementing
/// `Serialize` in value position. Object keys must be string literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        let mut items = $crate::__new_array_for_macro();
        $crate::json_array_internal!(items [] $($tt)+);
        $crate::Value::Array(items)
    }};
    ({}) => { $crate::Value::Object(::std::collections::BTreeMap::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $crate::json_object_internal!(map $($tt)+);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::__to_value_for_macro(&$other) };
}

/// Object-entry muncher for [`json!`]: expects `"key" : <value tokens>`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($map:ident) => {};
    ($map:ident $key:literal : $($rest:tt)+) => {
        $crate::json_object_value!($map $key [] $($rest)+);
    };
}

/// Value muncher: accumulates tokens until a top-level comma, then
/// recurses into [`json!`] for the accumulated value.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_value {
    // Top-level comma: finish this entry, continue with the next.
    ($map:ident $key:literal [$($val:tt)+] , $($rest:tt)*) => {
        $map.insert(::std::string::String::from($key), $crate::json!($($val)+));
        $crate::json_object_internal!($map $($rest)*);
    };
    // End of input: finish the last entry.
    ($map:ident $key:literal [$($val:tt)+]) => {
        $map.insert(::std::string::String::from($key), $crate::json!($($val)+));
    };
    // Otherwise: munch one token into the accumulator.
    ($map:ident $key:literal [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_object_value!($map $key [$($val)* $next] $($rest)*);
    };
}

/// Array-element muncher, same accumulation scheme as objects.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    // Top-level comma: finish this element, continue.
    ($items:ident [$($val:tt)+] , $($rest:tt)*) => {
        $items.push($crate::json!($($val)+));
        $crate::json_array_internal!($items [] $($rest)*);
    };
    // End of input: finish the last element.
    ($items:ident [$($val:tt)+]) => {
        $items.push($crate::json!($($val)+));
    };
    // Trailing comma already consumed; nothing left.
    ($items:ident []) => {};
    // Munch one token.
    ($items:ident [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_array_internal!($items [$($val)* $next] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let home = (7u32, "x");
        let v = json!({
            "place": home.0,
            "window": [15, 24],
            "nothing": null,
            "flag": true,
            "nested": {"a": 1},
        });
        assert_eq!(v["place"], 7);
        assert_eq!(v["window"][0], 15);
        assert_eq!(v["window"][1], 24);
        assert!(v["nothing"].is_null());
        assert_eq!(v["flag"], true);
        assert_eq!(v["nested"]["a"], 1);
        assert_eq!(json!({}), Value::Object(Default::default()));
        assert_eq!(json!([]), Value::Array(Vec::new()));
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn string_roundtrip_with_escapes() {
        let v = json!({"s": "line\n\"quoted\"\t\\end", "u": "héllo ☂"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &f in &[
            0.1f64,
            1.0 / 3.0,
            12.871287,
            1e-7,
            6_371_000.772,
            -0.0,
            2.5e300,
        ] {
            let v = json!({ "x": f });
            let text = to_string(&v).unwrap();
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back["x"].as_f64().unwrap().to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn integer_boundaries_roundtrip() {
        let v = json!({"a": u64::MAX, "b": i64::MIN, "c": 0, "d": -1});
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back["a"].as_u64(), Some(u64::MAX));
        assert_eq!(back["b"].as_i64(), Some(i64::MIN));
        assert_eq!(back["c"], 0);
        assert_eq!(back["d"], -1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"\\q\"").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str("\"\\u00e9\\u2602 \\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "é☂ 😀");
    }
}
