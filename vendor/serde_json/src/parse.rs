//! Recursive-descent JSON parser producing [`Value`].

use crate::Error;
use serde::value::{Number, Value};
use std::collections::BTreeMap;

/// Maximum nesting depth (arrays/objects) accepted.
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("document too deeply nested"));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null").map(|()| Value::Null),
            Some(b't') => self.expect_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.bump(); // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.bump(); // '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.bump() != Some(b':') {
                return Err(self.error("expected `:` after object key"));
            }
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.bump(); // '"'
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.parse_unicode_escape()?),
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a valid &str, so the
                    // sequence starting one byte back decodes cleanly.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.error("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => return Err(self.error("invalid \\u escape")),
            };
            v = (v << 4) | u16::from(d);
        }
        Ok(v)
    }

    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        let hi = self.parse_hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // High surrogate: a low surrogate must follow.
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.error("unpaired surrogate in \\u escape"));
            }
            let lo = self.parse_hex4()?;
            if !(0xdc00..0xe000).contains(&lo) {
                return Err(self.error("invalid low surrogate in \\u escape"));
            }
            let c = 0x10000 + ((u32::from(hi) - 0xd800) << 10) + (u32::from(lo) - 0xdc00);
            char::from_u32(c).ok_or_else(|| self.error("invalid surrogate pair"))
        } else if (0xdc00..0xe000).contains(&hi) {
            Err(self.error("unpaired low surrogate in \\u escape"))
        } else {
            char::from_u32(u32::from(hi)).ok_or_else(|| self.error("invalid \\u escape"))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.bump();
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => {
                self.bump();
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digits after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        if !is_float {
            if !negative {
                if let Ok(u) = text.parse::<u64>() {
                    return Ok(Value::Number(Number::PosInt(u)));
                }
            } else if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
            // Integer out of 64-bit range: fall through to f64.
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.error("invalid number"))
    }
}

/// Byte width of a UTF-8 sequence from its lead byte.
fn utf8_width(lead: u8) -> usize {
    match lead {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}
