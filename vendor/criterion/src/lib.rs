//! Minimal vendored stand-in for `criterion`.
//!
//! Provides the macro + builder surface the workspace's benches use and a
//! simple wall-clock harness: per benchmark it warms up, then takes
//! `sample_size` timed samples sized to fill `measurement_time`, and
//! prints the per-iteration mean and min. No statistics, plots, or
//! baseline storage.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for convenience parity with upstream.
pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.clone(),
            _parent: self,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, &self.clone(), routine);
        self
    }
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Criterion,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Overrides the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Benchmarks a routine under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, &self.config, routine);
        self
    }

    /// Benchmarks a routine that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (printing nothing extra; parity with upstream API).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark routines.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn call_routine<F: FnMut(&mut Bencher)>(routine: &mut F, iters: u64) -> Duration {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    bencher.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, config: &Criterion, mut routine: F) {
    // Warm-up while estimating per-iteration cost.
    let warm_start = Instant::now();
    let mut iters: u64 = 1;
    let mut per_iter = Duration::from_nanos(1);
    loop {
        let elapsed = call_routine(&mut routine, iters);
        per_iter = elapsed
            .checked_div(iters as u32)
            .unwrap_or(per_iter)
            .max(Duration::from_nanos(1));
        if warm_start.elapsed() >= config.warm_up_time {
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 20);
    }

    // Size samples so all of them together roughly fill measurement_time.
    let budget = config.measurement_time.as_nanos() / config.sample_size.max(1) as u128;
    let iters_per_sample = (budget / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..config.sample_size {
        let elapsed = call_routine(&mut routine, iters_per_sample);
        total += elapsed;
        let sample_per_iter = elapsed / iters_per_sample as u32;
        if sample_per_iter < best {
            best = sample_per_iter;
        }
    }
    let iterations = iters_per_sample * config.sample_size as u64;
    let mean = total.as_nanos() as f64 / iterations as f64;
    println!(
        "bench {label:<50} mean {:>12.1} ns/iter   min {:>12} ns/iter   ({} iters x {} samples)",
        mean,
        best.as_nanos(),
        iters_per_sample,
        config.sample_size,
    );
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3)
    }

    #[test]
    fn harness_runs_group_and_function() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| black_box(3) * 2));
        group.bench_with_input(BenchmarkId::new("with-input", 7), &7u32, |b, &x| {
            b.iter(|| x + 1)
        });
        group.finish();
    }
}
