# Convenience targets for the PMWare reproduction workspace.

.PHONY: verify build test clippy fmt chaos bench bench-gca obs

# The full pre-merge gate: release build, the whole test suite, a
# warning-free clippy pass over every target in the workspace, a
# formatting check, the chaos gate (fault-injection matrix + soak), and
# the observability gate (byte-identical golden exports +
# zero-perturbation overhead bench).
verify: build test clippy fmt chaos obs

build:
	cargo build --release --workspace

test:
	cargo test -q --workspace

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

# Formatting is part of the gate: workspace crates only (vendored deps
# are path dependencies, not workspace members, so fmt never touches
# them).
fmt:
	cargo fmt --check

# The chaos gate: the deterministic fault-injection matrix (five fault
# kinds x four endpoints x reboot modes, each asserting bit-identical
# convergence) plus a chaos-soak smoke run that writes BENCH_chaos.json
# and fails if any rate <= 0.30 does not converge.
chaos:
	cargo test --release --test chaos_matrix --test connected_apps
	cargo run --release -p pmware-bench --bin chaos_soak

bench:
	cargo bench -p pmware-bench

# Incremental-vs-batch nightly discovery cost and cold-vs-memoized
# analytics throughput; writes BENCH_gca.json in the repo root.
bench-gca:
	cargo run --release -p pmware-bench --bin gca_scaling

# The observability gate: golden determinism tests (same seed => byte-
# identical metrics snapshot and trace JSONL, at any thread count; obs
# on == obs off to the last bit) plus the overhead bench, which writes
# BENCH_obs.json and exits nonzero if instrumentation perturbs results.
obs:
	cargo test --release -q -p pmware-bench --test obs_golden
	cargo run --release -p pmware-bench --bin obs_overhead
