# Convenience targets for the PMWare reproduction workspace.

.PHONY: verify build test clippy bench bench-gca

# The full pre-merge gate: release build, the whole test suite, and a
# warning-free clippy pass over every target in the workspace.
verify: build test clippy

build:
	cargo build --release --workspace

test:
	cargo test -q --workspace

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

bench:
	cargo bench -p pmware-bench

# Incremental-vs-batch nightly discovery cost and cold-vs-memoized
# analytics throughput; writes BENCH_gca.json in the repo root.
bench-gca:
	cargo run --release -p pmware-bench --bin gca_scaling
