# Convenience targets for the PMWare reproduction workspace.

.PHONY: verify build test clippy fmt chaos bench bench-gca bench-smoke bench-wire bench-federation bench-latency bench-storage lint-wire lint-latency lint-storage obs test-federation test-storage

# The full pre-merge gate: release build, the whole test suite, a
# warning-free clippy pass over every target in the workspace, a
# formatting check, the chaos gate (fault-injection matrix + soak), the
# observability gate (byte-identical golden exports + zero-perturbation
# overhead bench), the federation gate (failover matrix + soak), a
# tiny-config throughput smoke run that fails if parallel and
# sequential studies ever diverge, the wire lint that keeps untyped
# JSON from creeping back onto the hot path, the wall-clock lint that
# keeps real time out of simulation code, and the latency soak with its
# built-in shed/convergence gates, and the storage gate (durable
# crash-recovery goldens, the residency lint, and the RSS/hydration/
# recovery soak with its built-in capped-below-uncapped assertion).
verify: build test clippy fmt lint-wire lint-latency lint-storage chaos obs test-federation test-storage bench-smoke bench-latency bench-storage

build:
	cargo build --release --workspace

test:
	cargo test -q --workspace

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

# Formatting is part of the gate: workspace crates only (vendored deps
# are path dependencies, not workspace members, so fmt never touches
# them).
fmt:
	cargo fmt --check

# The chaos gate: the deterministic fault-injection matrix (five fault
# kinds x four endpoints x reboot modes, each asserting bit-identical
# convergence) plus a chaos-soak smoke run that writes BENCH_chaos.json
# and fails if any rate <= 0.30 does not converge.
chaos:
	cargo test --release --test chaos_matrix --test connected_apps
	cargo run --release -p pmware-bench --bin chaos_soak

bench:
	cargo bench -p pmware-bench

# Incremental-vs-batch nightly discovery cost and cold-vs-memoized
# analytics throughput; writes BENCH_gca.json in the repo root.
bench-gca:
	cargo run --release -p pmware-bench --bin gca_scaling

# Tiny-config cohort throughput smoke: one quick pass over the full
# thread ladder. The binary asserts every timed run equals the
# sequential reference bit for bit, so this exits nonzero on any
# parallel-vs-sequential divergence. Runs in a scratch directory so the
# checked-in BENCH_cohort.json (full-size numbers) is never clobbered.
bench-smoke:
	cargo build --quiet --release -p pmware-bench --bin cohort_throughput
	tmp=$$(mktemp -d) && cd $$tmp && \
		$(CURDIR)/target/release/cohort_throughput --participants 2 --days 2 --repeats 1 && \
		rm -rf $$tmp

# Per-endpoint cost of the typed in-process path vs the marshalled JSON
# wire path; writes BENCH_wire.json in the repo root.
bench-wire:
	cargo run --release -p pmware-bench --bin wire_micro

# The typed-wire-path regression gate: handlers receive typed Payload
# bodies and the client builds typed payloads, so neither may mention
# `json!(` or `serde_json::Value` (`#[cfg(test)]` code in the client is
# exempt — the lint strips everything from its `mod tests` down).
lint-wire:
	@! grep -rn 'json!(\|serde_json::Value' crates/cloud/src/handlers/ \
		|| { echo 'lint-wire: untyped JSON crept back into crates/cloud/src/handlers/'; exit 1; }
	@! sed -n '1,/^mod tests {/p' crates/core/src/cloud_client.rs | grep -n 'json!(' \
		|| { echo 'lint-wire: json! crept back into the CloudClient request builders'; exit 1; }
	@echo 'lint-wire: ok'

# The wall-clock lint: the request latency model (DESIGN.md §5j) is
# sim-time only, so no simulation code may read a real clock. The only
# sanctioned wall-clock readers are the feature-gated profiler
# (crates/obs/src/profiling.rs, `wallclock` feature) and the
# throughput/overhead bench binaries in crates/bench/src/bin, which
# measure wall time on purpose.
lint-latency:
	@! grep -rn 'std::time::\(Instant\|SystemTime\)' crates \
		--include='*.rs' --exclude-dir=bin --exclude=profiling.rs \
		|| { echo 'lint-latency: wall-clock time crept into simulation code'; exit 1; }
	@echo 'lint-latency: ok'

# The latency soak: request quantiles vs a doubling offered-load
# ladder, max users per instance at a fixed p99 SLO, and the
# flash-crowd arm (must shed, must converge to the unshedded
# baseline's exact state); writes BENCH_latency.json in the repo root.
# Flags: --seed, --reqs, --max-users, --slo-p99-ms, --flash-users,
# --shed-depth.
bench-latency:
	cargo run --release -p pmware-bench --bin latency_soak

# The federation gate: the failover & migration matrix (every arm of
# N instances x balancing policy x kill instant, plain and under 30 %
# transport chaos, asserting byte-identical convergence to the
# single-instance baseline and the zero-steady-state-router pin), then
# the federation soak, which writes BENCH_federation.json and exits
# nonzero if the arm diverges or a control-plane pin breaks.
test-federation:
	cargo test --release -q --test federation_matrix
	$(MAKE) bench-federation

# Multi-instance soak: capacity split, migration sim-latency, and
# control-plane cost; writes BENCH_federation.json in the repo root.
# Flags: --instances, --balance-policy, --failover-at-day, --chaos-rate.
bench-federation:
	cargo run --release -p pmware-bench --bin federation_soak

# The storage gate: the engine's golden tests — byte-identical durable
# replay after a crash, deterministic LRU eviction, evicted-user
# failover, and the capped-vs-uncapped proptest equivalence — plus the
# durable arm of the chaos matrix.
test-storage:
	cargo test --release -q -p pmware-cloud --test storage
	cargo test --release --test chaos_matrix chaos_matrix_durable_crash_recovery_converges

# Storage soak: capped-RSS-vs-population ladder (each arm in its own
# child process so peak RSS is honest), hydration latency vs history
# length, and crash-recovery time; writes BENCH_storage.json in the
# repo root and exits nonzero if the residency cap leaks or the capped
# arm's peak RSS reaches the uncapped arm's. Flags: --cap, --rounds,
# --seed.
bench-storage:
	cargo run --release -p pmware-bench --bin storage_soak

# The storage-boundary lint: every UserStore access goes through the
# engine (DESIGN.md §5k), so outside crates/cloud/src/storage/ no cloud
# code may reach into a `.users.` shard map or mint a bare
# `Arc<Mutex<UserStore>>` of its own.
lint-storage:
	@! grep -rn '\.users\.\|Arc::new(Mutex::new(UserStore' crates/cloud/src \
		--include='*.rs' | grep -v 'src/storage/' \
		|| { echo 'lint-storage: UserStore access leaked around the storage engine'; exit 1; }
	@echo 'lint-storage: ok'

# The observability gate: golden determinism tests (same seed => byte-
# identical metrics snapshot and trace JSONL, at any thread count; obs
# on == obs off to the last bit), the latency-model goldens (the model
# annotates, never perturbs; span/histogram exports byte-stable), plus
# the overhead bench, which writes BENCH_obs.json and exits nonzero if
# instrumentation perturbs results.
obs:
	cargo test --release -q -p pmware-bench --test obs_golden --test latency_matrix
	cargo run --release -p pmware-bench --bin obs_overhead
