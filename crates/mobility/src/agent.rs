//! Agents: the simulated study participants.

use std::collections::BTreeMap;

use pmware_world::{PlaceCategory, PlaceId};
use serde::{Deserialize, Serialize};

/// Identifier of an agent in a [`Population`](crate::Population).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AgentId(pub u32);

impl std::fmt::Display for AgentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "agent:{}", self.0)
    }
}

/// A simulated participant: their anchor places and movement parameters.
///
/// Agents have a home and a workplace plus a small set of *frequented*
/// places per category; daily schedules draw from these with a bias toward
/// the first (favourite) entry, which concentrates visits the way real
/// mobility does (the paper cites users spending 80–90 % of time in places).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentProfile {
    id: AgentId,
    home: PlaceId,
    workplace: PlaceId,
    frequented: BTreeMap<PlaceCategory, Vec<PlaceId>>,
    /// Travel speed along roads, m/s (walking + transit mix).
    travel_speed_mps: f64,
    /// Probability that the participant tags a discovered place with a
    /// semantic label (§4: 70 % of visited places were tagged).
    tag_probability: f64,
    /// Seed for this agent's private randomness.
    seed: u64,
}

impl AgentProfile {
    /// Creates an agent profile.
    ///
    /// # Panics
    ///
    /// Panics if `travel_speed_mps` is not positive and finite, or if
    /// `tag_probability` is outside `[0, 1]`.
    pub fn new(
        id: AgentId,
        home: PlaceId,
        workplace: PlaceId,
        frequented: BTreeMap<PlaceCategory, Vec<PlaceId>>,
        travel_speed_mps: f64,
        tag_probability: f64,
        seed: u64,
    ) -> Self {
        assert!(
            travel_speed_mps.is_finite() && travel_speed_mps > 0.0,
            "travel speed must be positive, got {travel_speed_mps}"
        );
        assert!(
            (0.0..=1.0).contains(&tag_probability),
            "tag probability must be in [0,1], got {tag_probability}"
        );
        AgentProfile {
            id,
            home,
            workplace,
            frequented,
            travel_speed_mps,
            tag_probability,
            seed,
        }
    }

    /// Agent identifier.
    pub fn id(&self) -> AgentId {
        self.id
    }

    /// Home place.
    pub fn home(&self) -> PlaceId {
        self.home
    }

    /// Workplace.
    pub fn workplace(&self) -> PlaceId {
        self.workplace
    }

    /// Frequented places for a category (possibly empty).
    pub fn frequented(&self, category: PlaceCategory) -> &[PlaceId] {
        self.frequented
            .get(&category)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All frequented categories.
    pub fn frequented_categories(&self) -> impl Iterator<Item = PlaceCategory> + '_ {
        self.frequented.keys().copied()
    }

    /// Every distinct place this agent can ever visit (home, work, and all
    /// frequented places).
    pub fn known_places(&self) -> Vec<PlaceId> {
        let mut out = vec![self.home, self.workplace];
        for places in self.frequented.values() {
            out.extend_from_slice(places);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Travel speed in m/s.
    pub fn travel_speed_mps(&self) -> f64 {
        self.travel_speed_mps
    }

    /// Probability of semantically tagging a discovered place.
    pub fn tag_probability(&self) -> f64 {
        self.tag_probability
    }

    /// The agent's private random seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> AgentProfile {
        let mut freq = BTreeMap::new();
        freq.insert(PlaceCategory::Shopping, vec![PlaceId(5), PlaceId(6)]);
        freq.insert(PlaceCategory::Restaurant, vec![PlaceId(7)]);
        AgentProfile::new(AgentId(0), PlaceId(1), PlaceId(2), freq, 6.0, 0.7, 42)
    }

    #[test]
    fn known_places_dedup_and_sorted() {
        let p = profile();
        assert_eq!(
            p.known_places(),
            vec![PlaceId(1), PlaceId(2), PlaceId(5), PlaceId(6), PlaceId(7)]
        );
    }

    #[test]
    fn frequented_lookup() {
        let p = profile();
        assert_eq!(
            p.frequented(PlaceCategory::Shopping),
            &[PlaceId(5), PlaceId(6)]
        );
        assert!(p.frequented(PlaceCategory::Fitness).is_empty());
    }

    #[test]
    #[should_panic(expected = "travel speed must be positive")]
    fn rejects_bad_speed() {
        let _ = AgentProfile::new(
            AgentId(0),
            PlaceId(0),
            PlaceId(1),
            BTreeMap::new(),
            0.0,
            0.5,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "tag probability")]
    fn rejects_bad_tag_probability() {
        let _ = AgentProfile::new(
            AgentId(0),
            PlaceId(0),
            PlaceId(1),
            BTreeMap::new(),
            5.0,
            1.5,
            1,
        );
    }
}
