//! Ground-truth co-location encounters.
//!
//! PMWare's social-discovery module (§2.2.2) detects physical proximity via
//! Bluetooth/WiFi. This module computes the *ground truth* the detector is
//! scored against: intervals during which two agents were within a proximity
//! radius of each other.

use pmware_geo::Meters;
use pmware_world::{PlaceId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::agent::AgentId;
use crate::trajectory::Itinerary;

/// A ground-truth co-location interval between two agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Encounter {
    /// First agent (lower id).
    pub a: AgentId,
    /// Second agent (higher id).
    pub b: AgentId,
    /// When proximity began.
    pub start: SimTime,
    /// When proximity ended.
    pub end: SimTime,
    /// The place where the encounter happened, if both agents were dwelling
    /// at the same ground-truth place for its majority.
    pub place: Option<PlaceId>,
}

impl Encounter {
    /// Encounter length.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Finds all encounters between two itineraries by sampling positions every
/// `step` and keeping proximity runs of at least `min_duration`.
///
/// # Panics
///
/// Panics if `step` is zero.
pub fn find_encounters(
    x: &Itinerary,
    y: &Itinerary,
    radius: Meters,
    step: SimDuration,
    min_duration: SimDuration,
) -> Vec<Encounter> {
    assert!(step.as_seconds() > 0, "sampling step must be positive");
    let (a, b) = if x.agent() <= y.agent() {
        (x, y)
    } else {
        (y, x)
    };
    let end = a.end_time().min(b.end_time());
    let mut out = Vec::new();
    let mut run_start: Option<SimTime> = None;
    let mut same_place_hits: usize = 0;
    let mut total_hits: usize = 0;
    let mut run_place: Option<PlaceId> = None;

    let mut t = SimTime::EPOCH;
    while t <= end {
        let close = a.position_at(t).equirectangular_distance(b.position_at(t)) <= radius;
        if close {
            if run_start.is_none() {
                run_start = Some(t);
                same_place_hits = 0;
                total_hits = 0;
                run_place = None;
            }
            total_hits += 1;
            if let (Some(pa), Some(pb)) = (a.place_at(t), b.place_at(t)) {
                if pa == pb {
                    same_place_hits += 1;
                    run_place = Some(pa);
                }
            }
        } else if let Some(start) = run_start.take() {
            push_run(
                &mut out,
                a.agent(),
                b.agent(),
                start,
                t,
                min_duration,
                same_place_hits,
                total_hits,
                run_place,
            );
        }
        t += step;
    }
    if let Some(start) = run_start {
        push_run(
            &mut out,
            a.agent(),
            b.agent(),
            start,
            end,
            min_duration,
            same_place_hits,
            total_hits,
            run_place,
        );
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn push_run(
    out: &mut Vec<Encounter>,
    a: AgentId,
    b: AgentId,
    start: SimTime,
    end: SimTime,
    min_duration: SimDuration,
    same_place_hits: usize,
    total_hits: usize,
    run_place: Option<PlaceId>,
) {
    if end.since(start) < min_duration {
        return;
    }
    let place = if total_hits > 0 && same_place_hits * 2 > total_hits {
        run_place
    } else {
        None
    };
    out.push(Encounter {
        a,
        b,
        start,
        end,
        place,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;
    use pmware_world::builder::{RegionProfile, WorldBuilder};

    #[test]
    fn agents_sharing_workplace_encounter_each_other() {
        let world = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(10)
            .build();
        // Generate enough agents that two share a workplace (tiny world has
        // 3 workplaces).
        let pop = Population::generate(&world, 6, 20);
        let mut shared = None;
        'outer: for (i, a) in pop.agents().iter().enumerate() {
            for b in &pop.agents()[i + 1..] {
                if a.workplace() == b.workplace() {
                    shared = Some((a.id(), b.id()));
                    break 'outer;
                }
            }
        }
        let (ia, ib) = shared.expect("six agents over three offices must collide");
        let x = pop.itinerary(&world, ia, 5);
        let y = pop.itinerary(&world, ib, 5);
        let encounters = find_encounters(
            &x,
            &y,
            Meters::new(120.0),
            SimDuration::from_minutes(2),
            SimDuration::from_minutes(30),
        );
        assert!(
            !encounters.is_empty(),
            "colleagues over a work week must meet"
        );
        // Every encounter is well-formed.
        for e in &encounters {
            assert!(e.start < e.end);
            assert!(e.duration() >= SimDuration::from_minutes(30));
            assert!(e.a < e.b);
        }
        // At least one of them is at the shared workplace.
        let wp = pop.agent(ia).workplace();
        assert!(
            encounters.iter().any(|e| e.place == Some(wp)),
            "no encounter attributed to the shared workplace"
        );
    }

    #[test]
    fn disjoint_agents_rarely_encounter() {
        let world = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(11)
            .build();
        let pop = Population::generate(&world, 6, 21);
        // Find two agents with different home and workplace.
        let mut pair = None;
        'outer: for (i, a) in pop.agents().iter().enumerate() {
            for b in &pop.agents()[i + 1..] {
                if a.workplace() != b.workplace() && a.home() != b.home() {
                    pair = Some((a.id(), b.id()));
                    break 'outer;
                }
            }
        }
        let (ia, ib) = pair.expect("distinct pair exists");
        let x = pop.itinerary(&world, ia, 2);
        let y = pop.itinerary(&world, ib, 2);
        let encounters = find_encounters(
            &x,
            &y,
            Meters::new(30.0),
            SimDuration::from_minutes(2),
            SimDuration::from_minutes(45),
        );
        // They may cross paths at a shared shop, but long encounters at a
        // tight radius should be rare.
        assert!(
            encounters.len() <= 4,
            "unexpectedly many: {}",
            encounters.len()
        );
    }

    #[test]
    #[should_panic(expected = "sampling step")]
    fn zero_step_rejected() {
        let world = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(12)
            .build();
        let pop = Population::generate(&world, 2, 22);
        let x = pop.itinerary(&world, AgentId(0), 1);
        let y = pop.itinerary(&world, AgentId(1), 1);
        let _ = find_encounters(
            &x,
            &y,
            Meters::new(50.0),
            SimDuration::ZERO,
            SimDuration::ZERO,
        );
    }
}
