//! Ground-truth visits: the diary.

use pmware_world::{PlaceId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::agent::AgentId;

/// One ground-truth stay at a place, as the paper's diary logging recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrueVisit {
    /// Who visited.
    pub agent: AgentId,
    /// The ground-truth place.
    pub place: PlaceId,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Departure instant.
    pub departure: SimTime,
}

impl TrueVisit {
    /// Stay duration.
    pub fn duration(&self) -> SimDuration {
        self.departure.since(self.arrival)
    }

    /// Returns `true` if `t` falls within the stay.
    pub fn contains(&self, t: SimTime) -> bool {
        self.arrival <= t && t < self.departure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_and_containment() {
        let v = TrueVisit {
            agent: AgentId(0),
            place: PlaceId(3),
            arrival: SimTime::from_seconds(1_000),
            departure: SimTime::from_seconds(4_000),
        };
        assert_eq!(v.duration(), SimDuration::from_seconds(3_000));
        assert!(v.contains(SimTime::from_seconds(1_000)));
        assert!(v.contains(SimTime::from_seconds(3_999)));
        assert!(!v.contains(SimTime::from_seconds(4_000)));
        assert!(!v.contains(SimTime::from_seconds(999)));
    }
}
