//! Synthetic human mobility for the PMWare reproduction.
//!
//! The paper's deployment study (§4) followed 16 participants for two weeks,
//! with a diary app recording ground-truth place visits. This crate replaces
//! the participants: a [`population`] of schedule-driven [`agent`]s moves
//! through a [`pmware_world::World`] along roads, dwelling at places
//! according to weekday/weekend [`schedule`] templates, producing
//!
//! * a continuous [`trajectory::Itinerary`] (position + motion state at any
//!   instant) that the device simulator samples, and
//! * a perfect [`visit::TrueVisit`] diary used as ground truth when scoring
//!   discovered places as *correct*, *merged*, or *divided*.
//!
//! Everything is deterministic given a seed.
//!
//! # Examples
//!
//! ```
//! use pmware_world::builder::{RegionProfile, WorldBuilder};
//! use pmware_mobility::population::Population;
//!
//! let world = WorldBuilder::new(RegionProfile::test_tiny()).seed(1).build();
//! let pop = Population::generate(&world, 4, 11);
//! let itinerary = pop.itinerary(&world, pop.agents()[0].id(), 7);
//! assert!(!itinerary.visits().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod encounter;
pub mod population;
pub mod schedule;
pub mod trajectory;
pub mod visit;

pub use agent::{AgentId, AgentProfile};
pub use encounter::{find_encounters, Encounter};
pub use population::Population;
pub use trajectory::{Itinerary, Segment};
pub use visit::TrueVisit;
