//! Daily schedule templates.
//!
//! A schedule is a sequence of *planned stops* — places with intended
//! departure times — starting and ending at home. Weekdays follow a
//! home→work→(errand)→home pattern with stochastic jitter; weekends are
//! leisure-driven. The trajectory builder turns planned stops into actual
//! timed movement, inserting real road travel between them.

use pmware_world::time::{DAY, HOUR, MINUTE};
use pmware_world::{PlaceCategory, PlaceId, SimTime, World};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::agent::AgentProfile;

/// One intended stay at a place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedStop {
    /// Where to stay.
    pub place: PlaceId,
    /// When the agent intends to leave.
    pub planned_departure: SimTime,
}

/// A full day's plan: ordered stops, first and last at home.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DayPlan {
    /// Day index since the simulation epoch.
    pub day: u64,
    /// Stops in visiting order.
    pub stops: Vec<PlannedStop>,
}

impl DayPlan {
    /// Returns `true` if the plan never leaves home.
    pub fn is_home_day(&self) -> bool {
        self.stops.len() == 1
    }
}

/// Picks a place from the agent's frequented list for `category`, favouring
/// the first (favourite) entry. With a small probability the agent
/// *explores*: tries any place of that category in the world (people do
/// visit new restaurants). Returns `None` if no place of the category
/// exists anywhere.
fn pick_place<R: Rng + ?Sized>(
    agent: &AgentProfile,
    world: &World,
    category: PlaceCategory,
    rng: &mut R,
) -> Option<PlaceId> {
    let options = agent.frequented(category);
    let explore = rng.gen_bool(0.22);
    if explore || options.is_empty() {
        let all: Vec<PlaceId> = world
            .places()
            .iter()
            .filter(|p| p.category() == category)
            .map(|p| p.id())
            .collect();
        if all.is_empty() {
            return None;
        }
        if explore {
            return Some(all[rng.gen_range(0..all.len())]);
        }
        return None;
    }
    match options.len() {
        1 => Some(options[0]),
        n => {
            if rng.gen_bool(0.7) {
                Some(options[0])
            } else {
                Some(options[1 + rng.gen_range(0..n - 1)])
            }
        }
    }
}

/// Jittered time-of-day in seconds: `base ± spread`, clamped to the day.
fn jitter<R: Rng + ?Sized>(rng: &mut R, base: u64, spread: u64) -> u64 {
    let lo = base.saturating_sub(spread);
    let hi = (base + spread).min(DAY - 1);
    rng.gen_range(lo..=hi)
}

/// Plans one day for an agent.
///
/// The returned plan always starts at home and ends with a final home stop
/// whose planned departure is the following midnight, so that consecutive
/// days chain into a continuous trajectory.
pub fn plan_day<R: Rng + ?Sized>(
    agent: &AgentProfile,
    world: &World,
    day: u64,
    rng: &mut R,
) -> DayPlan {
    let midnight = day * DAY;
    let next_midnight = SimTime::from_seconds((day + 1) * DAY);
    let weekday = SimTime::from_seconds(midnight).weekday();
    let mut stops = Vec::new();

    if weekday.is_weekend() {
        plan_weekend(agent, world, day, rng, &mut stops);
    } else {
        plan_workday(agent, world, day, rng, &mut stops);
    }

    // Close the day at home.
    stops.push(PlannedStop {
        place: agent.home(),
        planned_departure: next_midnight,
    });

    // Drop stops at places that do not exist in this world (defensive: a
    // profile built for another world would otherwise panic downstream).
    stops.retain(|s| (s.place.0 as usize) < world.places().len());
    debug_assert!(!stops.is_empty());

    DayPlan { day, stops }
}

fn plan_workday<R: Rng + ?Sized>(
    agent: &AgentProfile,
    world: &World,
    day: u64,
    rng: &mut R,
    stops: &mut Vec<PlannedStop>,
) {
    let midnight = day * DAY;
    // ~8 % of weekdays are work-from-home days.
    if rng.gen_bool(0.08) {
        // Maybe a lunchtime errand, otherwise home all day.
        if rng.gen_bool(0.4) {
            let leave_home = midnight + jitter(rng, 12 * HOUR, 45 * MINUTE);
            stops.push(PlannedStop {
                place: agent.home(),
                planned_departure: SimTime::from_seconds(leave_home),
            });
            if let Some(place) = pick_place(agent, world, PlaceCategory::Restaurant, rng)
                .or_else(|| pick_place(agent, world, PlaceCategory::Shopping, rng))
            {
                let depart = leave_home + jitter(rng, HOUR, 30 * MINUTE);
                stops.push(PlannedStop {
                    place,
                    planned_departure: SimTime::from_seconds(depart),
                });
            }
        }
        return;
    }

    let leave_home = midnight + jitter(rng, 8 * HOUR + 15 * MINUTE, 45 * MINUTE);
    stops.push(PlannedStop {
        place: agent.home(),
        planned_departure: SimTime::from_seconds(leave_home),
    });

    let leave_work = midnight + jitter(rng, 17 * HOUR + 30 * MINUTE, HOUR);

    // Lunch outing with probability 0.3: out of the office around 12:30,
    // back for the afternoon.
    if rng.gen_bool(0.3) {
        if let Some(place) = pick_place(agent, world, PlaceCategory::Restaurant, rng) {
            let leave_for_lunch = midnight + jitter(rng, 12 * HOUR + 30 * MINUTE, 20 * MINUTE);
            if leave_for_lunch + HOUR < leave_work {
                stops.push(PlannedStop {
                    place: agent.workplace(),
                    planned_departure: SimTime::from_seconds(leave_for_lunch),
                });
                stops.push(PlannedStop {
                    place,
                    planned_departure: SimTime::from_seconds(
                        leave_for_lunch + jitter(rng, 45 * MINUTE, 15 * MINUTE),
                    ),
                });
            }
        }
    }

    stops.push(PlannedStop {
        place: agent.workplace(),
        planned_departure: SimTime::from_seconds(leave_work),
    });

    // Evening errand with probability 0.55.
    if rng.gen_bool(0.55) {
        let category = match rng.gen_range(0..10) {
            0..=3 => PlaceCategory::Restaurant,
            4..=6 => PlaceCategory::Fitness,
            7..=8 => PlaceCategory::Shopping,
            _ => PlaceCategory::Entertainment,
        };
        if let Some(place) = pick_place(agent, world, category, rng) {
            let dwell = jitter(rng, 90 * MINUTE, 45 * MINUTE);
            stops.push(PlannedStop {
                place,
                planned_departure: SimTime::from_seconds(leave_work + 20 * MINUTE + dwell),
            });
        }
    }
}

fn plan_weekend<R: Rng + ?Sized>(
    agent: &AgentProfile,
    world: &World,
    day: u64,
    rng: &mut R,
    stops: &mut Vec<PlannedStop>,
) {
    let midnight = day * DAY;
    // ~15 % of weekend days are spent entirely at home.
    if rng.gen_bool(0.15) {
        return;
    }
    let mut t = midnight + jitter(rng, 10 * HOUR + 30 * MINUTE, 90 * MINUTE);
    stops.push(PlannedStop {
        place: agent.home(),
        planned_departure: SimTime::from_seconds(t),
    });

    let mut outings = 1;
    if rng.gen_bool(0.65) {
        outings += 1;
    }
    if rng.gen_bool(0.45) {
        outings += 1;
    }
    let leisure = [
        PlaceCategory::Shopping,
        PlaceCategory::Park,
        PlaceCategory::Entertainment,
        PlaceCategory::Restaurant,
        PlaceCategory::Healthcare,
    ];
    for _ in 0..outings {
        let category = leisure[rng.gen_range(0..leisure.len())];
        if let Some(place) = pick_place(agent, world, category, rng) {
            let dwell = jitter(rng, 100 * MINUTE, 60 * MINUTE);
            t += 25 * MINUTE + dwell;
            if t >= (day + 1) * DAY - HOUR {
                break;
            }
            stops.push(PlannedStop {
                place,
                planned_departure: SimTime::from_seconds(t),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;
    use pmware_world::builder::{RegionProfile, WorldBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (World, AgentProfile) {
        let world = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(2)
            .build();
        let pop = Population::generate(&world, 2, 3);
        (world.clone(), pop.agents()[0].clone())
    }

    #[test]
    fn weekday_plan_contains_home_and_work() {
        let (world, agent) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        // Day 1 is a Tuesday. Try several seeds; most weekdays include work.
        let mut saw_work = false;
        for s in 0..20 {
            let mut rng2 = StdRng::seed_from_u64(s);
            let plan = plan_day(&agent, &world, 1, &mut rng2);
            assert_eq!(plan.stops.first().unwrap().place, agent.home());
            assert_eq!(plan.stops.last().unwrap().place, agent.home());
            if plan.stops.iter().any(|s| s.place == agent.workplace()) {
                saw_work = true;
            }
        }
        assert!(saw_work, "no work stop in 20 weekday plans");
        let plan = plan_day(&agent, &world, 1, &mut rng);
        // Departures are non-decreasing.
        for w in plan.stops.windows(2) {
            assert!(w[0].planned_departure <= w[1].planned_departure);
        }
    }

    #[test]
    fn weekend_plan_uses_leisure_places() {
        let (world, agent) = setup();
        let mut any_leisure = false;
        for s in 0..30 {
            let mut rng = StdRng::seed_from_u64(s);
            let plan = plan_day(&agent, &world, 5, &mut rng); // Saturday
            for stop in &plan.stops {
                let place = world.place(stop.place);
                if !matches!(
                    place.category(),
                    PlaceCategory::Home | PlaceCategory::Workplace
                ) {
                    any_leisure = true;
                }
            }
        }
        assert!(any_leisure, "weekends should reach leisure places");
    }

    #[test]
    fn last_stop_departure_is_next_midnight() {
        let (world, agent) = setup();
        let mut rng = StdRng::seed_from_u64(9);
        let plan = plan_day(&agent, &world, 3, &mut rng);
        assert_eq!(
            plan.stops.last().unwrap().planned_departure,
            SimTime::from_day_time(4, 0, 0, 0)
        );
    }

    #[test]
    fn home_days_have_single_stop() {
        let (world, agent) = setup();
        let mut found_home_day = false;
        for s in 0..80 {
            let mut rng = StdRng::seed_from_u64(s);
            let plan = plan_day(&agent, &world, 6, &mut rng); // Sunday
            if plan.is_home_day() {
                found_home_day = true;
                assert_eq!(plan.stops[0].place, agent.home());
            }
        }
        assert!(found_home_day, "15% of weekend days should be home days");
    }

    #[test]
    fn deterministic_given_seed() {
        let (world, agent) = setup();
        let a = plan_day(&agent, &world, 2, &mut StdRng::seed_from_u64(7));
        let b = plan_day(&agent, &world, 2, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn pick_place_favours_first() {
        let (world, agent) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        // Use a category with >= 2 options if one exists.
        let cat = PlaceCategory::ALL
            .iter()
            .copied()
            .find(|c| agent.frequented(*c).len() >= 2);
        if let Some(cat) = cat {
            let fav = agent.frequented(cat)[0];
            let n = 500;
            let fav_count = (0..n)
                .filter(|_| pick_place(&agent, &world, cat, &mut rng) == Some(fav))
                .count();
            assert!(fav_count > n / 2, "favourite picked only {fav_count}/{n}");
        }
        // A category with no places anywhere in the world yields None;
        // the tiny world has no transit places, so even exploration fails.
        for _ in 0..50 {
            assert_eq!(
                pick_place(&agent, &world, PlaceCategory::Transit, &mut rng),
                None
            );
        }
    }
}
