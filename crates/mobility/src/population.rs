//! Population generation: assigning agents to places.

use std::collections::BTreeMap;

use pmware_world::{PlaceCategory, PlaceId, World};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::agent::{AgentId, AgentProfile};
use crate::trajectory::Itinerary;

/// A deterministic set of agents bound to a world.
///
/// # Examples
///
/// ```
/// use pmware_world::builder::{RegionProfile, WorldBuilder};
/// use pmware_mobility::Population;
///
/// let world = WorldBuilder::new(RegionProfile::test_tiny()).seed(3).build();
/// let pop = Population::generate(&world, 4, 99);
/// assert_eq!(pop.agents().len(), 4);
/// // Homes are distinct while enough exist.
/// let homes: std::collections::HashSet<_> =
///     pop.agents().iter().map(|a| a.home()).collect();
/// assert_eq!(homes.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    agents: Vec<AgentProfile>,
    seed: u64,
}

impl Population {
    /// Generates `n` agents over `world`, deterministically from `seed`.
    ///
    /// Homes are assigned without reuse until the world runs out of homes;
    /// workplaces are shared (several agents per office, as in a real
    /// study pool). Each agent frequents one to three places in most
    /// leisure categories.
    ///
    /// # Panics
    ///
    /// Panics if the world has no home or no workplace places.
    pub fn generate(world: &World, n: usize, seed: u64) -> Population {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut homes: Vec<PlaceId> = places_of(world, PlaceCategory::Home);
        let workplaces: Vec<PlaceId> = places_of(world, PlaceCategory::Workplace);
        assert!(!homes.is_empty(), "world has no homes");
        assert!(!workplaces.is_empty(), "world has no workplaces");
        homes.shuffle(&mut rng);

        let leisure_categories = [
            (PlaceCategory::Shopping, 0.95),
            (PlaceCategory::Restaurant, 0.95),
            (PlaceCategory::Fitness, 0.5),
            (PlaceCategory::Park, 0.6),
            (PlaceCategory::Entertainment, 0.6),
            (PlaceCategory::Healthcare, 0.45),
            (PlaceCategory::Education, 0.3),
            (PlaceCategory::Transit, 0.4),
        ];

        let mut agents = Vec::with_capacity(n);
        for i in 0..n {
            let home = homes[i % homes.len()];
            let workplace = workplaces[rng.gen_range(0..workplaces.len())];
            let mut frequented: BTreeMap<PlaceCategory, Vec<PlaceId>> = BTreeMap::new();
            for (category, prob) in leisure_categories {
                if !rng.gen_bool(prob) {
                    continue;
                }
                let mut options = places_of(world, category);
                if options.is_empty() {
                    continue;
                }
                options.shuffle(&mut rng);
                let k = rng.gen_range(2..=3).min(options.len()).max(1);
                frequented.insert(category, options[..k].to_vec());
            }
            let speed = rng.gen_range(4.0..9.0);
            let tag_prob = (0.70_f64 + rng.gen_range(-0.12..0.12)).clamp(0.0, 1.0);
            let agent_seed = pmware_world::seeds::derive_indexed(seed, "agent", i as u64);
            agents.push(AgentProfile::new(
                AgentId(i as u32),
                home,
                workplace,
                frequented,
                speed,
                tag_prob,
                agent_seed,
            ));
        }
        Population { agents, seed }
    }

    /// The agents, ordered by id.
    pub fn agents(&self) -> &[AgentProfile] {
        &self.agents
    }

    /// One agent by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in this population.
    pub fn agent(&self, id: AgentId) -> &AgentProfile {
        &self.agents[id.0 as usize]
    }

    /// Builds the itinerary of one agent over `days` days.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in this population or `days == 0`.
    pub fn itinerary(&self, world: &World, id: AgentId, days: u64) -> Itinerary {
        Itinerary::build(self.agent(id), world, days)
    }

    /// Builds itineraries for every agent.
    pub fn itineraries(&self, world: &World, days: u64) -> Vec<Itinerary> {
        self.agents
            .iter()
            .map(|a| Itinerary::build(a, world, days))
            .collect()
    }
}

fn places_of(world: &World, category: PlaceCategory) -> Vec<PlaceId> {
    world
        .places()
        .iter()
        .filter(|p| p.category() == category)
        .map(|p| p.id())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_world::builder::{RegionProfile, WorldBuilder};

    fn world() -> World {
        WorldBuilder::new(RegionProfile::test_tiny())
            .seed(4)
            .build()
    }

    #[test]
    fn distinct_homes_until_exhausted() {
        let w = world();
        let pop = Population::generate(&w, 4, 1);
        let homes: std::collections::HashSet<_> = pop.agents().iter().map(|a| a.home()).collect();
        assert_eq!(homes.len(), 4);
    }

    #[test]
    fn homes_are_homes_and_workplaces_are_workplaces() {
        let w = world();
        let pop = Population::generate(&w, 5, 2);
        for a in pop.agents() {
            assert_eq!(w.place(a.home()).category(), PlaceCategory::Home);
            assert_eq!(w.place(a.workplace()).category(), PlaceCategory::Workplace);
        }
    }

    #[test]
    fn frequented_places_match_their_category() {
        let w = world();
        let pop = Population::generate(&w, 6, 3);
        for a in pop.agents() {
            for cat in a.frequented_categories() {
                for pid in a.frequented(cat) {
                    assert_eq!(w.place(*pid).category(), cat);
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let w = world();
        let a = Population::generate(&w, 8, 7);
        let b = Population::generate(&w, 8, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_population() {
        let w = world();
        let a = Population::generate(&w, 8, 7);
        let b = Population::generate(&w, 8, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn more_agents_than_homes_reuses() {
        let w = world(); // tiny: 6 homes
        let pop = Population::generate(&w, 10, 5);
        assert_eq!(pop.agents().len(), 10);
    }

    #[test]
    fn itineraries_builds_for_all() {
        let w = world();
        let pop = Population::generate(&w, 3, 6);
        let its = pop.itineraries(&w, 2);
        assert_eq!(its.len(), 3);
        for (i, it) in its.iter().enumerate() {
            assert_eq!(it.agent(), AgentId(i as u32));
        }
    }
}
