//! Continuous trajectories built from day plans.
//!
//! An [`Itinerary`] is the agent's complete movement over the study: an
//! ordered list of dwell and travel [`Segment`]s covering every instant from
//! the first to the last midnight. The device simulator samples it for
//! positions and motion states; the diary ([`TrueVisit`] list) falls out of
//! the dwell segments.

use pmware_geo::{GeoPoint, Meters, Polyline};
use pmware_world::{MotionState, PlaceId, SimDuration, SimTime, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::agent::AgentProfile;
use crate::schedule::{plan_day, DayPlan};
use crate::visit::TrueVisit;

/// Minimum stay at a place even when the schedule is running late.
const MIN_DWELL: SimDuration = SimDuration::from_seconds(15 * 60);

/// One piece of an itinerary.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// Staying at a place, stationary at `spot`.
    Dwell {
        /// The ground-truth place.
        place: PlaceId,
        /// Exact position inside the place for this stay.
        spot: GeoPoint,
        /// Stay start.
        start: SimTime,
        /// Stay end.
        end: SimTime,
    },
    /// Travelling along a road path.
    Travel {
        /// The path, start point first.
        path: Polyline,
        /// Departure instant.
        start: SimTime,
        /// Arrival instant.
        end: SimTime,
    },
}

impl Segment {
    /// Segment start time.
    pub fn start(&self) -> SimTime {
        match self {
            Segment::Dwell { start, .. } | Segment::Travel { start, .. } => *start,
        }
    }

    /// Segment end time.
    pub fn end(&self) -> SimTime {
        match self {
            Segment::Dwell { end, .. } | Segment::Travel { end, .. } => *end,
        }
    }

    /// Position at time `t`, which must lie within the segment.
    fn position_at(&self, t: SimTime) -> GeoPoint {
        match self {
            Segment::Dwell { spot, .. } => *spot,
            Segment::Travel { path, start, end } => {
                let total = end.since(*start).as_seconds() as f64;
                if total == 0.0 {
                    return path.start();
                }
                let elapsed = t.since(*start).as_seconds() as f64;
                path.point_at_fraction(elapsed / total)
            }
        }
    }
}

/// An agent's complete, gap-free movement over several days.
#[derive(Debug, Clone, PartialEq)]
pub struct Itinerary {
    agent: crate::AgentId,
    segments: Vec<Segment>,
    end: SimTime,
}

impl Itinerary {
    /// Builds an itinerary for `agent` covering `days` days starting at the
    /// epoch. Deterministic: the agent's own seed drives all randomness.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0` or if the agent references places outside
    /// `world`.
    pub fn build(agent: &AgentProfile, world: &World, days: u64) -> Itinerary {
        assert!(days > 0, "itinerary needs at least one day");
        let mut rng = StdRng::seed_from_u64(agent.seed());
        let plans: Vec<DayPlan> = (0..days)
            .map(|d| plan_day(agent, world, d, &mut rng))
            .collect();
        Self::from_plans(agent, world, &plans, &mut rng)
    }

    /// Builds an itinerary from explicit day plans (used by tests and by the
    /// deployment-study harness when it needs custom scenarios).
    pub fn from_plans(
        agent: &AgentProfile,
        world: &World,
        plans: &[DayPlan],
        rng: &mut StdRng,
    ) -> Itinerary {
        assert!(!plans.is_empty(), "at least one day plan required");
        let mut segments: Vec<Segment> = Vec::new();
        let mut clock = SimTime::from_seconds(plans[0].day * pmware_world::time::DAY);
        // Current dwell spot carried between stops.
        let mut current_spot: Option<GeoPoint> = None;

        for plan in plans {
            for stop in &plan.stops {
                let place = world.place(stop.place);
                let spot = sample_spot(place.position(), place.radius(), rng);

                // Travel from the previous spot if we are somewhere else.
                if let Some(prev) = current_spot {
                    if prev != spot {
                        let path = world
                            .roads()
                            .route_between(prev, spot)
                            .and_then(|r| r.to_polyline().ok())
                            .unwrap_or_else(|| {
                                Polyline::new(vec![prev, spot]).expect("two points")
                            });
                        let secs = (path.length().value() / agent.travel_speed_mps()).ceil() as u64;
                        let end = clock + SimDuration::from_seconds(secs.max(60));
                        segments.push(Segment::Travel {
                            path,
                            start: clock,
                            end,
                        });
                        clock = end;
                    }
                }

                // Dwell until the planned departure (or a minimum stay when
                // already late).
                let depart = stop.planned_departure.max(clock + MIN_DWELL);
                segments.push(Segment::Dwell {
                    place: stop.place,
                    spot,
                    start: clock,
                    end: depart,
                });
                clock = depart;
                current_spot = Some(spot);
            }
        }

        // Merge adjacent dwells at the same place (e.g. across midnight).
        let segments = merge_adjacent_dwells(segments);
        let end = segments.last().expect("non-empty").end();
        Itinerary {
            agent: agent.id(),
            segments,
            end,
        }
    }

    /// The agent this itinerary belongs to.
    pub fn agent(&self) -> crate::AgentId {
        self.agent
    }

    /// All segments in time order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Instant the itinerary ends.
    pub fn end_time(&self) -> SimTime {
        self.end
    }

    /// Position at `t`. Before the start the first position is returned; at
    /// or after the end, the last.
    pub fn position_at(&self, t: SimTime) -> GeoPoint {
        match self.segment_at(t) {
            Some(seg) => seg.position_at(t),
            None => {
                if t < self.segments[0].start() {
                    self.segments[0].position_at(self.segments[0].start())
                } else {
                    let last = self.segments.last().expect("non-empty");
                    last.position_at(last.end())
                }
            }
        }
    }

    /// Ground-truth motion state at `t` (dwelling = stationary).
    pub fn motion_at(&self, t: SimTime) -> MotionState {
        match self.segment_at(t) {
            Some(Segment::Travel { .. }) => MotionState::Moving,
            _ => MotionState::Stationary,
        }
    }

    /// The ground-truth place occupied at `t`, if dwelling.
    pub fn place_at(&self, t: SimTime) -> Option<PlaceId> {
        match self.segment_at(t) {
            Some(Segment::Dwell { place, .. }) => Some(*place),
            _ => None,
        }
    }

    fn segment_at(&self, t: SimTime) -> Option<&Segment> {
        let idx = self.segments.partition_point(|s| s.end() <= t);
        self.segments.get(idx).filter(|s| s.start() <= t)
    }

    /// The diary: every dwell as a [`TrueVisit`], in time order.
    pub fn visits(&self) -> Vec<TrueVisit> {
        self.segments
            .iter()
            .filter_map(|s| match s {
                Segment::Dwell {
                    place, start, end, ..
                } => Some(TrueVisit {
                    agent: self.agent,
                    place: *place,
                    arrival: *start,
                    departure: *end,
                }),
                Segment::Travel { .. } => None,
            })
            .collect()
    }

    /// Distinct places visited.
    pub fn visited_places(&self) -> Vec<PlaceId> {
        let mut out: Vec<PlaceId> = self.visits().iter().map(|v| v.place).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Samples a fixed spot inside a place for one stay: within 60 % of the
/// radius so the agent is comfortably inside the extent.
fn sample_spot<R: Rng + ?Sized>(center: GeoPoint, radius: Meters, rng: &mut R) -> GeoPoint {
    let d = rng.gen_range(0.0..radius.value() * 0.6);
    let b = rng.gen_range(0.0..360.0);
    center.destination(b, Meters::new(d))
}

fn merge_adjacent_dwells(segments: Vec<Segment>) -> Vec<Segment> {
    let mut out: Vec<Segment> = Vec::with_capacity(segments.len());
    for seg in segments {
        if let (
            Some(Segment::Dwell {
                place: p1, end: e1, ..
            }),
            Segment::Dwell {
                place: p2,
                start,
                end,
                ..
            },
        ) = (out.last_mut(), &seg)
        {
            if *p1 == *p2 && *e1 == *start {
                *e1 = *end;
                continue;
            }
        }
        out.push(seg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;
    use pmware_world::builder::{RegionProfile, WorldBuilder};

    fn setup() -> (World, AgentProfile) {
        let world = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(2)
            .build();
        let pop = Population::generate(&world, 3, 5);
        let agent = pop.agents()[0].clone();
        (world, agent)
    }

    #[test]
    fn covers_whole_span_without_gaps() {
        let (world, agent) = setup();
        let it = Itinerary::build(&agent, &world, 7);
        let segs = it.segments();
        assert_eq!(segs[0].start(), SimTime::EPOCH);
        for w in segs.windows(2) {
            assert_eq!(w[0].end(), w[1].start(), "gap between segments");
        }
        assert!(it.end_time() >= SimTime::from_day_time(7, 0, 0, 0));
    }

    #[test]
    fn starts_and_ends_at_home() {
        let (world, agent) = setup();
        let it = Itinerary::build(&agent, &world, 3);
        let visits = it.visits();
        assert_eq!(visits.first().unwrap().place, agent.home());
        assert_eq!(visits.last().unwrap().place, agent.home());
    }

    #[test]
    fn dwell_positions_inside_place_extent() {
        let (world, agent) = setup();
        let it = Itinerary::build(&agent, &world, 5);
        for seg in it.segments() {
            if let Segment::Dwell { place, spot, .. } = seg {
                let p = world.place(*place);
                assert!(
                    p.position().equirectangular_distance(*spot) <= p.radius(),
                    "spot outside {}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn position_at_midnight_is_home() {
        let (world, agent) = setup();
        let it = Itinerary::build(&agent, &world, 4);
        let home = world.place(agent.home());
        for day in 0..4 {
            let t = SimTime::from_day_time(day, 3, 0, 0);
            let pos = it.position_at(t);
            assert!(
                home.position().equirectangular_distance(pos).value()
                    <= home.radius().value() + 1.0,
                "not home at {t}"
            );
            assert_eq!(it.place_at(t), Some(agent.home()));
        }
    }

    #[test]
    fn motion_state_matches_segment_kind() {
        let (world, agent) = setup();
        let it = Itinerary::build(&agent, &world, 5);
        let mut travel_seen = false;
        for seg in it.segments() {
            let mid =
                SimTime::from_seconds((seg.start().as_seconds() + seg.end().as_seconds()) / 2);
            match seg {
                Segment::Travel { .. } => {
                    travel_seen = true;
                    assert_eq!(it.motion_at(mid), MotionState::Moving);
                }
                Segment::Dwell { .. } => {
                    assert_eq!(it.motion_at(mid), MotionState::Stationary);
                }
            }
        }
        assert!(travel_seen, "five days should include travel");
    }

    #[test]
    fn travel_interpolates_along_path() {
        let (world, agent) = setup();
        let it = Itinerary::build(&agent, &world, 5);
        let travel = it
            .segments()
            .iter()
            .find_map(|s| match s {
                Segment::Travel { path, start, end } => Some((path.clone(), *start, *end)),
                _ => None,
            })
            .expect("has travel");
        let (path, start, end) = travel;
        let mid = SimTime::from_seconds((start.as_seconds() + end.as_seconds()) / 2);
        let pos = it.position_at(mid);
        assert!(
            path.distance_to(pos).value() < 5.0,
            "mid-travel point off path"
        );
        // Position just before start is path start; at end is path end.
        assert_eq!(it.position_at(start), path.start());
    }

    #[test]
    fn queries_outside_span_clamp() {
        let (world, agent) = setup();
        let it = Itinerary::build(&agent, &world, 2);
        let before = it.position_at(SimTime::EPOCH);
        assert_eq!(before, it.position_at(SimTime::EPOCH));
        let way_after = it.position_at(SimTime::from_day_time(30, 0, 0, 0));
        let last_home = world.place(agent.home());
        assert!(
            last_home
                .position()
                .equirectangular_distance(way_after)
                .value()
                <= last_home.radius().value() + 1.0
        );
    }

    #[test]
    fn visits_are_merged_across_midnight() {
        let (world, agent) = setup();
        let it = Itinerary::build(&agent, &world, 3);
        for w in it.visits().windows(2) {
            // No two adjacent visits to the same place touching in time.
            assert!(
                !(w[0].place == w[1].place && w[0].departure == w[1].arrival),
                "unmerged adjacent dwell"
            );
        }
    }

    #[test]
    fn deterministic() {
        let (world, agent) = setup();
        let a = Itinerary::build(&agent, &world, 4);
        let b = Itinerary::build(&agent, &world, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn min_dwell_respected() {
        let (world, agent) = setup();
        let it = Itinerary::build(&agent, &world, 14);
        for v in it.visits() {
            assert!(
                v.duration() >= MIN_DWELL,
                "visit to {:?} lasted only {}",
                v.place,
                v.duration()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn zero_days_rejected() {
        let (world, agent) = setup();
        let _ = Itinerary::build(&agent, &world, 0);
    }
}
