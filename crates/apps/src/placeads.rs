//! PlaceADs: contextual advertisements on place events (§3, §4).
//!
//! *"PlaceADs is developed as a connected mobile application, which uses
//! PMWare middleware for sensing and discovering places. For example,
//! whenever a new place is visited, PlaceADs gets an intent broadcast from
//! PMWare mobile service with the details of the place. PlaceADs
//! subsequently fetches targeted contextual advertisements suggesting
//! nearby points of interests such as restaurants, cafes, etc."*
//!
//! The app consumes `PLACE_ARRIVAL`/`PLACE_NEW` intents (area-level
//! granularity suffices — Figure 2), looks up nearby offers in an
//! [`AdInventory`] built from the world's commercial places, and serves the
//! closest not-recently-served card.

use pmware_core::intents::{actions, Intent};
use pmware_geo::{grid::SpatialGrid, GeoPoint, Meters};
use pmware_world::{PlaceCategory, SimTime, World};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One advertisement in the inventory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ad {
    /// Inventory index.
    pub id: u32,
    /// Advertised point of interest.
    pub poi_name: String,
    /// POI category.
    pub category: PlaceCategory,
    /// POI position.
    pub position: GeoPoint,
    /// Offer text.
    pub offer: String,
}

/// The ad inventory: offers attached to the world's commercial places.
#[derive(Debug, Clone)]
pub struct AdInventory {
    ads: Vec<Ad>,
    index: SpatialGrid<u32>,
}

/// Categories that carry advertisements.
const AD_CATEGORIES: [PlaceCategory; 4] = [
    PlaceCategory::Shopping,
    PlaceCategory::Restaurant,
    PlaceCategory::Entertainment,
    PlaceCategory::Fitness,
];

impl AdInventory {
    /// Builds the inventory from a world's commercial places.
    pub fn from_world(world: &World) -> AdInventory {
        let mut ads = Vec::new();
        let mut index = SpatialGrid::new(Meters::new(500.0)).expect("positive cell");
        for place in world.places() {
            if !AD_CATEGORIES.contains(&place.category()) {
                continue;
            }
            let id = ads.len() as u32;
            let ad = Ad {
                id,
                poi_name: place.name().to_owned(),
                category: place.category(),
                position: place.position(),
                offer: format!("{}% off at {}", 10 + (id % 4) * 10, place.name()),
            };
            index.insert(place.position(), id);
            ads.push(ad);
        }
        AdInventory { ads, index }
    }

    /// Number of ads.
    pub fn len(&self) -> usize {
        self.ads.len()
    }

    /// Returns `true` when no ads exist.
    pub fn is_empty(&self) -> bool {
        self.ads.is_empty()
    }

    /// An ad by id.
    ///
    /// # Panics
    ///
    /// Panics for an unknown id.
    pub fn ad(&self, id: u32) -> &Ad {
        &self.ads[id as usize]
    }

    /// Ads within `radius` of a position, best first: universally popular
    /// categories (restaurants, shopping — the offers the paper's §3
    /// example names) rank before niche ones, then by distance. This is
    /// the app's "targeted contextual advertisements" policy.
    pub fn nearby(&self, position: GeoPoint, radius: Meters) -> Vec<&Ad> {
        let mut found: Vec<(u8, Meters, u32)> = Vec::new();
        self.index.for_each_within(position, radius, |_, id, d| {
            let category_rank = match self.ads[*id as usize].category {
                PlaceCategory::Restaurant | PlaceCategory::Shopping => 0,
                _ => 1,
            };
            found.push((category_rank, d, *id));
        });
        found.sort_by(|a, b| {
            (a.0, a.1.value())
                .partial_cmp(&(b.0, b.1.value()))
                .expect("finite distances")
        });
        found.into_iter().map(|(_, _, id)| self.ad(id)).collect()
    }
}

/// A served card, awaiting a swipe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdCard {
    /// The ad being shown.
    pub ad: Ad,
    /// When it was pushed.
    pub served_at: SimTime,
    /// The (coarsened) position the triggering intent carried.
    pub trigger_position: Option<GeoPoint>,
    /// The PMS place id that triggered it.
    pub trigger_place: Option<u32>,
}

/// The PlaceADs connected application.
#[derive(Debug)]
pub struct PlaceAdsApp {
    inventory: AdInventory,
    search_radius: Meters,
    /// Minimum time between re-serving the same ad.
    cooldown: pmware_world::SimDuration,
    last_served: HashMap<u32, SimTime>,
    served: Vec<AdCard>,
}

impl PlaceAdsApp {
    /// The intent filter PlaceADs registers with PMS: arrivals only — ads
    /// must be contextual to where the user *is right now*, and PLACE_NEW
    /// broadcasts arrive from the nightly batch recomputation.
    pub fn filter() -> pmware_core::intents::IntentFilter {
        pmware_core::intents::IntentFilter::for_actions([actions::PLACE_ARRIVAL])
    }

    /// The requirement PlaceADs states (area-level granularity, Figure 2).
    pub fn requirement() -> pmware_core::requirements::AppRequirement {
        pmware_core::requirements::AppRequirement::places(
            pmware_core::requirements::Granularity::Area,
        )
    }

    /// Creates the app over an inventory.
    pub fn new(inventory: AdInventory) -> PlaceAdsApp {
        PlaceAdsApp {
            inventory,
            search_radius: Meters::new(1_200.0),
            cooldown: pmware_world::SimDuration::from_hours(12),
            last_served: HashMap::new(),
            served: Vec::new(),
        }
    }

    /// Cards served so far.
    pub fn served(&self) -> &[AdCard] {
        &self.served
    }

    /// Processes one intent; returns the card pushed, if any.
    pub fn on_intent(&mut self, intent: &Intent) -> Option<AdCard> {
        if intent.action != actions::PLACE_ARRIVAL {
            return None;
        }
        let lat = intent.extras["latitude"].as_f64()?;
        let lng = intent.extras["longitude"].as_f64()?;
        let position = GeoPoint::new(lat, lng).ok()?;
        let place = intent.extras["place"].as_u64().map(|p| p as u32);

        let candidates = self.inventory.nearby(position, self.search_radius);
        let now = intent.time;
        let chosen = candidates.into_iter().find(|ad| {
            self.last_served
                .get(&ad.id)
                .map(|t| now.since(*t) >= self.cooldown)
                .unwrap_or(true)
        })?;
        let card = AdCard {
            ad: chosen.clone(),
            served_at: now,
            trigger_position: Some(position),
            trigger_place: place,
        };
        self.last_served.insert(card.ad.id, now);
        self.served.push(card.clone());
        Some(card)
    }

    /// Drains a receiver of intents, serving cards for each.
    pub fn drain(&mut self, rx: &crossbeam::channel::Receiver<Intent>) -> Vec<AdCard> {
        rx.try_iter()
            .collect::<Vec<_>>()
            .iter()
            .filter_map(|i| self.on_intent(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_world::builder::{RegionProfile, WorldBuilder};
    use serde_json::json;

    fn world() -> World {
        WorldBuilder::new(RegionProfile::urban_india())
            .seed(9)
            .build()
    }

    fn arrival_at(position: GeoPoint, minute: u64) -> Intent {
        Intent::new(
            actions::PLACE_ARRIVAL,
            SimTime::from_seconds(minute * 60),
            json!({
                "place": 0,
                "latitude": position.latitude(),
                "longitude": position.longitude(),
                "granularity": "area",
            }),
        )
    }

    #[test]
    fn inventory_covers_commercial_places() {
        let w = world();
        let inv = AdInventory::from_world(&w);
        let commercial = w
            .places()
            .iter()
            .filter(|p| AD_CATEGORIES.contains(&p.category()))
            .count();
        assert_eq!(inv.len(), commercial);
        assert!(!inv.is_empty());
    }

    #[test]
    fn nearby_sorts_popular_categories_first_then_distance() {
        let w = world();
        let inv = AdInventory::from_world(&w);
        let center = w.bounds().center();
        let near = inv.nearby(center, Meters::new(3_000.0));
        assert!(near.len() >= 2);
        let rank = |c: PlaceCategory| match c {
            PlaceCategory::Restaurant | PlaceCategory::Shopping => 0u8,
            _ => 1,
        };
        let mut last = (0u8, Meters::ZERO);
        for ad in &near {
            let key = (
                rank(ad.category),
                center.equirectangular_distance(ad.position),
            );
            assert!(
                key.0 > last.0 || (key.0 == last.0 && key.1 >= last.1),
                "ordering violated"
            );
            last = key;
        }
    }

    #[test]
    fn serves_card_on_arrival_near_commerce() {
        let w = world();
        let inv = AdInventory::from_world(&w);
        let shop = w
            .places()
            .iter()
            .find(|p| p.category() == PlaceCategory::Shopping)
            .unwrap();
        let mut app = PlaceAdsApp::new(inv);
        let card = app
            .on_intent(&arrival_at(shop.position(), 10))
            .expect("a shop is in range of itself");
        assert!(card.trigger_position.is_some());
        assert_eq!(app.served().len(), 1);
    }

    #[test]
    fn cooldown_prevents_spam() {
        let w = world();
        let inv = AdInventory::from_world(&w);
        let shop = w
            .places()
            .iter()
            .find(|p| p.category() == PlaceCategory::Shopping)
            .unwrap();
        let mut app = PlaceAdsApp::new(inv);
        let n_candidates = {
            let inv2 = AdInventory::from_world(&w);
            inv2.nearby(shop.position(), Meters::new(1_200.0)).len()
        };
        // Serve repeatedly from the same spot within the cooldown: each ad
        // can appear once, after which nothing is served.
        let mut served = 0;
        for minute in 0..n_candidates as u64 + 5 {
            if app
                .on_intent(&arrival_at(shop.position(), minute))
                .is_some()
            {
                served += 1;
            }
        }
        assert_eq!(served, n_candidates);
        // After the cooldown, serving resumes.
        let later = 13 * 60; // 13 h in minutes
        assert!(app.on_intent(&arrival_at(shop.position(), later)).is_some());
    }

    #[test]
    fn ignores_intents_without_position() {
        let w = world();
        let mut app = PlaceAdsApp::new(AdInventory::from_world(&w));
        let intent = Intent::new(
            actions::PLACE_ARRIVAL,
            SimTime::EPOCH,
            json!({"place": 0, "latitude": null, "longitude": null}),
        );
        assert!(app.on_intent(&intent).is_none());
    }

    #[test]
    fn ignores_unrelated_actions() {
        let w = world();
        let mut app = PlaceAdsApp::new(AdInventory::from_world(&w));
        let intent = Intent::new(
            actions::ROUTE_COMPLETED,
            SimTime::EPOCH,
            json!({"route": 0}),
        );
        assert!(app.on_intent(&intent).is_none());
    }
}
