//! The simulated ad-swiping participant.
//!
//! §4: *"each advertisement was displayed as a card and the user could
//! like a card by a simple gesture of swiping it on left if it was context
//! relevant and dislike it by swiping it on right if it was not. \[…\] The
//! ratio of total number of likes obtained for the advertisements to the
//! number of dislikes obtained turned out to be 17 : 3."*
//!
//! The model decides each swipe from *ground truth*: an ad is contextually
//! relevant when the advertised POI is genuinely near the user's true
//! position at serving time and its category is one the user cares about.
//! Place-discovery errors therefore show up as dislikes — a merged place's
//! centroid sits between two buildings, pulling in ads for the wrong
//! neighbourhood — preserving the causal link the paper measured.

use std::collections::BTreeSet;

use pmware_geo::{GeoPoint, Meters};
use pmware_mobility::AgentProfile;
use pmware_world::PlaceCategory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::placeads::AdCard;

/// A recorded swipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Swipe {
    /// Contextually relevant.
    Like,
    /// Not relevant.
    Dislike,
}

/// The participant's taste and swipe behaviour.
#[derive(Debug, Clone)]
pub struct UserTasteModel {
    preferred: BTreeSet<PlaceCategory>,
    /// Relevance radius: an ad for a POI farther than this from the user's
    /// true position is out of context.
    relevance_radius: Meters,
    /// P(like) for a relevant card.
    p_like_relevant: f64,
    /// P(like) for an irrelevant card (people still like a good deal).
    p_like_irrelevant: f64,
    rng: StdRng,
    likes: u32,
    dislikes: u32,
}

impl UserTasteModel {
    /// Builds the model from an agent's profile: the categories they
    /// actually frequent are the ones whose offers they care about.
    pub fn from_agent(agent: &AgentProfile, seed: u64) -> UserTasteModel {
        let mut preferred: BTreeSet<PlaceCategory> = agent.frequented_categories().collect();
        // Everyone eats and shops.
        preferred.insert(PlaceCategory::Restaurant);
        preferred.insert(PlaceCategory::Shopping);
        UserTasteModel {
            preferred,
            relevance_radius: Meters::new(2_500.0),
            p_like_relevant: 0.93,
            p_like_irrelevant: 0.15,
            rng: StdRng::seed_from_u64(seed),
            likes: 0,
            dislikes: 0,
        }
    }

    /// Whether a category interests this user.
    pub fn prefers(&self, category: PlaceCategory) -> bool {
        self.preferred.contains(&category)
    }

    /// Swipes one card given the user's *true* position when it was served.
    pub fn swipe(&mut self, card: &AdCard, true_position: GeoPoint) -> Swipe {
        let distance = true_position.equirectangular_distance(card.ad.position);
        let relevant = distance <= self.relevance_radius && self.prefers(card.ad.category);
        let p_like = if relevant {
            self.p_like_relevant
        } else {
            self.p_like_irrelevant
        };
        let swipe = if self.rng.gen_bool(p_like) {
            Swipe::Like
        } else {
            Swipe::Dislike
        };
        match swipe {
            Swipe::Like => self.likes += 1,
            Swipe::Dislike => self.dislikes += 1,
        }
        swipe
    }

    /// Total likes so far.
    pub fn likes(&self) -> u32 {
        self.likes
    }

    /// Total dislikes so far.
    pub fn dislikes(&self) -> u32 {
        self.dislikes
    }

    /// The like:dislike ratio as a fraction of likes (§4 reports 17:3 =
    /// 0.85). `None` before any swipe.
    pub fn like_fraction(&self) -> Option<f64> {
        let total = self.likes + self.dislikes;
        (total > 0).then(|| self.likes as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placeads::Ad;
    use pmware_mobility::Population;
    use pmware_world::builder::{RegionProfile, WorldBuilder};
    use pmware_world::SimTime;

    fn model() -> UserTasteModel {
        let world = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(1)
            .build();
        let pop = Population::generate(&world, 1, 2);
        UserTasteModel::from_agent(&pop.agents()[0], 3)
    }

    fn card_at(position: GeoPoint, category: PlaceCategory) -> AdCard {
        AdCard {
            ad: Ad {
                id: 0,
                poi_name: "poi".into(),
                category,
                position,
                offer: "20% off".into(),
            },
            served_at: SimTime::EPOCH,
            trigger_position: Some(position),
            trigger_place: None,
        }
    }

    #[test]
    fn everyone_prefers_food_and_shopping() {
        let m = model();
        assert!(m.prefers(PlaceCategory::Restaurant));
        assert!(m.prefers(PlaceCategory::Shopping));
    }

    #[test]
    fn nearby_relevant_ads_are_mostly_liked() {
        let mut m = model();
        let user = GeoPoint::new(12.97, 77.59).unwrap();
        let near = user.destination(90.0, Meters::new(300.0));
        for _ in 0..200 {
            let _ = m.swipe(&card_at(near, PlaceCategory::Restaurant), user);
        }
        let frac = m.like_fraction().unwrap();
        assert!(frac > 0.85, "relevant like fraction {frac}");
    }

    #[test]
    fn faraway_ads_are_mostly_disliked() {
        let mut m = model();
        let user = GeoPoint::new(12.97, 77.59).unwrap();
        let far = user.destination(90.0, Meters::new(5_000.0));
        for _ in 0..200 {
            let _ = m.swipe(&card_at(far, PlaceCategory::Restaurant), user);
        }
        let frac = m.like_fraction().unwrap();
        assert!(frac < 0.35, "irrelevant like fraction {frac}");
    }

    #[test]
    fn unpreferred_category_is_irrelevant_even_nearby() {
        let mut m = model();
        let user = GeoPoint::new(12.97, 77.59).unwrap();
        let near = user.destination(90.0, Meters::new(100.0));
        // Healthcare is only preferred if the agent frequents it; construct
        // a category the tiny world's agent cannot frequent (no such places
        // exist in the tiny mix).
        assert!(!m.prefers(PlaceCategory::Healthcare));
        for _ in 0..200 {
            let _ = m.swipe(&card_at(near, PlaceCategory::Healthcare), user);
        }
        assert!(m.like_fraction().unwrap() < 0.35);
    }

    #[test]
    fn counters_track_swipes() {
        let mut m = model();
        let user = GeoPoint::new(12.97, 77.59).unwrap();
        assert_eq!(m.like_fraction(), None);
        let _ = m.swipe(&card_at(user, PlaceCategory::Shopping), user);
        assert_eq!(m.likes() + m.dislikes(), 1);
    }
}
