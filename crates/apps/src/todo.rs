//! The To-Do geo-reminder app: the paper's walk-through use case (§2.4).
//!
//! *"Consider a scenario where a To-Do application intends to alert user
//! with some reminders when the user enters/leaves her workplace. \[…\] it
//! requires building-level granularity with a tracking between 9 AM to
//! 6 PM."*

use pmware_core::intents::{actions, Intent, IntentFilter};
use pmware_core::requirements::{AppRequirement, Granularity};
use pmware_world::SimTime;
use serde::{Deserialize, Serialize};

/// A reminder shown to the user.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reminder {
    /// When it fired.
    pub time: SimTime,
    /// The message.
    pub message: String,
    /// Whether it fired on arrival (true) or departure (false).
    pub on_arrival: bool,
}

/// The To-Do application.
#[derive(Debug, Clone)]
pub struct TodoApp {
    /// The PMS place id of the user's workplace (configured once the user
    /// has tagged it in the life-logging UI).
    workplace: Option<u32>,
    arrival_notes: Vec<String>,
    departure_notes: Vec<String>,
    fired: Vec<Reminder>,
}

impl TodoApp {
    /// The requirement the app states in its request (§2.4 step 1):
    /// building-level granularity, tracked 9 AM – 6 PM.
    pub fn requirement() -> AppRequirement {
        AppRequirement::places(Granularity::Building).with_window(9, 18)
    }

    /// The intent filter for its place alerts (§2.4 step 1: "specifies its
    /// own intent-filter that will listen to the place alerts").
    pub fn filter() -> IntentFilter {
        IntentFilter::for_actions([actions::PLACE_ARRIVAL, actions::PLACE_DEPARTURE])
    }

    /// Creates an app with no workplace configured yet.
    pub fn new() -> TodoApp {
        TodoApp {
            workplace: None,
            arrival_notes: vec!["stand-up at 9:30".to_owned()],
            departure_notes: vec!["buy milk on the way home".to_owned()],
            fired: Vec::new(),
        }
    }

    /// Configures the workplace place id.
    pub fn set_workplace(&mut self, place: u32) {
        self.workplace = Some(place);
    }

    /// The configured workplace.
    pub fn workplace(&self) -> Option<u32> {
        self.workplace
    }

    /// Adds a note to fire on arrival.
    pub fn add_arrival_note(&mut self, note: impl Into<String>) {
        self.arrival_notes.push(note.into());
    }

    /// Adds a note to fire on departure.
    pub fn add_departure_note(&mut self, note: impl Into<String>) {
        self.departure_notes.push(note.into());
    }

    /// Reminders fired so far.
    pub fn fired(&self) -> &[Reminder] {
        &self.fired
    }

    /// Processes one intent (§2.4 step 5); returns newly fired reminders.
    pub fn on_intent(&mut self, intent: &Intent) -> Vec<Reminder> {
        let Some(workplace) = self.workplace else {
            return Vec::new();
        };
        let Some(place) = intent.extras["place"].as_u64() else {
            return Vec::new();
        };
        if place as u32 != workplace {
            return Vec::new();
        }
        let notes = match intent.action.as_str() {
            actions::PLACE_ARRIVAL => &self.arrival_notes,
            actions::PLACE_DEPARTURE => &self.departure_notes,
            _ => return Vec::new(),
        };
        let on_arrival = intent.action == actions::PLACE_ARRIVAL;
        let new: Vec<Reminder> = notes
            .iter()
            .map(|n| Reminder {
                time: intent.time,
                message: n.clone(),
                on_arrival,
            })
            .collect();
        self.fired.extend(new.iter().cloned());
        new
    }
}

impl Default for TodoApp {
    fn default() -> Self {
        TodoApp::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn intent(action: &str, place: u64, hour: u64) -> Intent {
        Intent::new(
            action,
            SimTime::from_day_time(0, hour, 0, 0),
            json!({"place": place}),
        )
    }

    #[test]
    fn fires_on_workplace_arrival_and_departure() {
        let mut app = TodoApp::new();
        app.set_workplace(3);
        let fired = app.on_intent(&intent(actions::PLACE_ARRIVAL, 3, 9));
        assert_eq!(fired.len(), 1);
        assert!(fired[0].on_arrival);
        let fired = app.on_intent(&intent(actions::PLACE_DEPARTURE, 3, 17));
        assert_eq!(fired.len(), 1);
        assert!(!fired[0].on_arrival);
        assert_eq!(app.fired().len(), 2);
    }

    #[test]
    fn other_places_do_not_fire() {
        let mut app = TodoApp::new();
        app.set_workplace(3);
        assert!(app
            .on_intent(&intent(actions::PLACE_ARRIVAL, 5, 9))
            .is_empty());
    }

    #[test]
    fn unconfigured_app_is_silent() {
        let mut app = TodoApp::new();
        assert!(app
            .on_intent(&intent(actions::PLACE_ARRIVAL, 3, 9))
            .is_empty());
    }

    #[test]
    fn requirement_matches_use_case() {
        let r = TodoApp::requirement();
        assert_eq!(r.granularity, Granularity::Building);
        assert!(r.active_at_hour(9) && r.active_at_hour(17));
        assert!(!r.active_at_hour(8) && !r.active_at_hour(18));
    }

    #[test]
    fn multiple_notes_all_fire() {
        let mut app = TodoApp::new();
        app.set_workplace(1);
        app.add_arrival_note("check email");
        let fired = app.on_intent(&intent(actions::PLACE_ARRIVAL, 1, 10));
        assert_eq!(fired.len(), 2);
    }
}
