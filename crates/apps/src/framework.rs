//! The connected-application framework: one trait and a pump.
//!
//! §2.2.4's contract, seen from the application side: an app states its
//! name, its [`AppRequirement`], and an [`IntentFilter`]; PMWare delivers
//! matching intents. [`ConnectedApp`] captures that contract as a trait so
//! that heterogeneous apps can be installed and pumped uniformly, and
//! [`AppHarness`] does the plumbing (registration, channel draining) that
//! every host — examples, the deployment study, downstream users —
//! otherwise re-implements by hand.

use crossbeam::channel::Receiver;
use pmware_core::intents::{Intent, IntentFilter};
use pmware_core::pms::PmwareMobileService;
use pmware_core::requirements::AppRequirement;
use pmware_device::PositionProvider;

/// A third-party application connected to PMWare.
pub trait ConnectedApp {
    /// Registration name (unique per PMS).
    fn name(&self) -> &str;
    /// What the app asks of the middleware (§2.4 step 1).
    fn requirement(&self) -> AppRequirement;
    /// Which broadcasts it listens to.
    fn filter(&self) -> IntentFilter;
    /// Handles one delivered intent.
    fn on_intent(&mut self, intent: &Intent);
}

/// Installs [`ConnectedApp`]s on a PMS and pumps their intents.
///
/// # Examples
///
/// ```no_run
/// use pmware_apps::framework::{AppHarness, ConnectedApp};
/// use pmware_core::intents::{Intent, IntentFilter};
/// use pmware_core::requirements::{AppRequirement, Granularity};
///
/// struct Counter {
///     intents: usize,
/// }
///
/// impl ConnectedApp for Counter {
///     fn name(&self) -> &str {
///         "counter"
///     }
///     fn requirement(&self) -> AppRequirement {
///         AppRequirement::places(Granularity::Area)
///     }
///     fn filter(&self) -> IntentFilter {
///         IntentFilter::all()
///     }
///     fn on_intent(&mut self, _intent: &Intent) {
///         self.intents += 1;
///     }
/// }
/// ```
#[derive(Default)]
pub struct AppHarness {
    apps: Vec<Installed>,
}

struct Installed {
    app: Box<dyn ConnectedApp>,
    rx: Receiver<Intent>,
}

impl AppHarness {
    /// An empty harness.
    pub fn new() -> Self {
        AppHarness::default()
    }

    /// Registers `app` with `pms` and takes ownership of it.
    pub fn install<P: PositionProvider>(
        &mut self,
        pms: &mut PmwareMobileService<'_, P>,
        app: Box<dyn ConnectedApp>,
    ) {
        let rx = pms.register_app(app.name().to_owned(), app.requirement(), app.filter());
        self.apps.push(Installed { app, rx });
    }

    /// Number of installed apps.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Returns `true` with no installed apps.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Drains every app's pending intents into its `on_intent`; returns the
    /// number of intents delivered. Call between simulation slices.
    pub fn pump(&mut self) -> usize {
        let mut delivered = 0;
        for installed in &mut self.apps {
            for intent in installed.rx.try_iter() {
                installed.app.on_intent(&intent);
                delivered += 1;
            }
        }
        delivered
    }

    /// Borrows an installed app by name (downcast-free inspection is up to
    /// the caller; keep a concrete handle when specifics are needed).
    pub fn app(&self, name: &str) -> Option<&dyn ConnectedApp> {
        self.apps
            .iter()
            .find(|i| i.app.name() == name)
            .map(|i| i.app.as_ref())
    }
}

// The shipped applications implement the trait so they can be installed
// generically; their inherent methods remain for callers that need typed
// results (served cards, fired reminders, …).

impl ConnectedApp for crate::lifelog::LifeLogApp {
    fn name(&self) -> &str {
        "lifelog"
    }
    fn requirement(&self) -> AppRequirement {
        crate::lifelog::LifeLogApp::requirement()
    }
    fn filter(&self) -> IntentFilter {
        crate::lifelog::LifeLogApp::filter()
    }
    fn on_intent(&mut self, intent: &Intent) {
        crate::lifelog::LifeLogApp::on_intent(self, intent);
    }
}

impl ConnectedApp for crate::todo::TodoApp {
    fn name(&self) -> &str {
        "todo"
    }
    fn requirement(&self) -> AppRequirement {
        crate::todo::TodoApp::requirement()
    }
    fn filter(&self) -> IntentFilter {
        crate::todo::TodoApp::filter()
    }
    fn on_intent(&mut self, intent: &Intent) {
        let _ = crate::todo::TodoApp::on_intent(self, intent);
    }
}

impl ConnectedApp for crate::placeads::PlaceAdsApp {
    fn name(&self) -> &str {
        "placeads"
    }
    fn requirement(&self) -> AppRequirement {
        crate::placeads::PlaceAdsApp::requirement()
    }
    fn filter(&self) -> IntentFilter {
        crate::placeads::PlaceAdsApp::filter()
    }
    fn on_intent(&mut self, intent: &Intent) {
        let _ = crate::placeads::PlaceAdsApp::on_intent(self, intent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_core::intents::actions;
    use pmware_core::requirements::Granularity;
    use pmware_world::SimTime;
    use serde_json::json;

    struct Probe {
        name: String,
        seen: Vec<String>,
    }

    impl ConnectedApp for Probe {
        fn name(&self) -> &str {
            &self.name
        }
        fn requirement(&self) -> AppRequirement {
            AppRequirement::places(Granularity::Area)
        }
        fn filter(&self) -> IntentFilter {
            IntentFilter::for_actions([actions::PLACE_ARRIVAL])
        }
        fn on_intent(&mut self, intent: &Intent) {
            self.seen.push(intent.action.clone());
        }
    }

    #[test]
    fn shipped_apps_expose_their_contracts() {
        let lifelog = crate::lifelog::LifeLogApp::new(0.5, 1);
        assert_eq!(ConnectedApp::name(&lifelog), "lifelog");
        assert_eq!(
            ConnectedApp::requirement(&lifelog).granularity,
            Granularity::Building
        );
        let todo = crate::todo::TodoApp::new();
        assert_eq!(ConnectedApp::name(&todo), "todo");
        assert!(ConnectedApp::filter(&todo).matches(actions::PLACE_ARRIVAL));
    }

    #[test]
    fn trait_dispatch_delivers_intents() {
        let mut probe = Probe {
            name: "probe".into(),
            seen: Vec::new(),
        };
        let intent = Intent::new(actions::PLACE_ARRIVAL, SimTime::EPOCH, json!({}));
        ConnectedApp::on_intent(&mut probe, &intent);
        assert_eq!(probe.seen, vec![actions::PLACE_ARRIVAL.to_owned()]);
    }

    #[test]
    fn harness_end_to_end() {
        use pmware_cloud::{CellDatabase, CloudInstance, SharedCloud};
        use pmware_core::pms::PmsConfig;
        use pmware_device::{Device, EnergyModel};
        use pmware_mobility::Population;
        use pmware_world::builder::{RegionProfile, WorldBuilder};
        use pmware_world::radio::{RadioConfig, RadioEnvironment};

        let world = WorldBuilder::new(RegionProfile::urban_india())
            .seed(5000)
            .build();
        let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 5001));
        let pop = Population::generate(&world, 1, 5002);
        let it = pop.itinerary(&world, pop.agents()[0].id(), 3);
        let env = RadioEnvironment::new(&world, RadioConfig::default());
        let device = Device::new(env, &it, EnergyModel::htc_explorer(), 5003);
        let mut pms = PmwareMobileService::new(
            device,
            cloud,
            PmsConfig::for_participant(50),
            SimTime::EPOCH,
        )
        .unwrap();

        let mut harness = AppHarness::new();
        harness.install(
            &mut pms,
            Box::new(Probe {
                name: "probe".into(),
                seen: Vec::new(),
            }),
        );
        harness.install(
            &mut pms,
            Box::new(crate::lifelog::LifeLogApp::new(1.0, 5004)),
        );
        assert_eq!(harness.len(), 2);

        pms.run(SimTime::from_day_time(3, 0, 0, 0)).unwrap();
        let delivered = harness.pump();
        assert!(delivered > 0, "three days should deliver intents");
        assert!(harness.app("probe").is_some());
        assert!(harness.app("nope").is_none());
    }
}
