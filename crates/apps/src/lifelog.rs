//! The life-logging application of §3 (Figure 4).
//!
//! *"We have packaged PMWare mobile service with a life-logging application
//! that enables users to validate discovered places as well as to provide
//! a semantic meaning to the places \[…\] Our mobile application uses that
//! capability to present fine-grained information to the user about her
//! stay time at visited places and visiting days."*
//!
//! The Figure 4 map/list/detail UI is reproduced as a textual report; the
//! *tagging* behaviour — each participant labels ~70 % of their places
//! (§4) — is simulated with the agent's tag probability.

use std::collections::{BTreeMap, BTreeSet};

use pmware_core::intents::{actions, Intent, IntentFilter};
use pmware_core::requirements::{AppRequirement, Granularity};
use pmware_world::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-place history the app accumulates (the Figure 4c detail view).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlaceHistory {
    /// User-assigned label, if tagged.
    pub label: Option<String>,
    /// Number of visits seen.
    pub visits: u32,
    /// Total stay time across completed visits.
    pub total_stay: SimDuration,
    /// Days on which the place was visited.
    pub visit_days: BTreeSet<u64>,
    /// Whether the place's departure side has been observed at least once
    /// (§4 excludes tagged places "without departure information").
    pub has_departure_info: bool,
}

/// The life-logging connected application.
#[derive(Debug)]
pub struct LifeLogApp {
    history: BTreeMap<u32, PlaceHistory>,
    open_arrivals: BTreeMap<u32, SimTime>,
    tag_probability: f64,
    rng: StdRng,
    /// Labels decided but not yet pushed to PMS.
    pending_labels: Vec<(u32, String)>,
}

impl LifeLogApp {
    /// The requirement: building-level diary.
    pub fn requirement() -> AppRequirement {
        AppRequirement::places(Granularity::Building)
    }

    /// Listens to every place event.
    pub fn filter() -> IntentFilter {
        IntentFilter::for_actions([
            actions::PLACE_ARRIVAL,
            actions::PLACE_DEPARTURE,
            actions::PLACE_NEW,
        ])
    }

    /// Creates the app with the participant's tagging probability.
    ///
    /// # Panics
    ///
    /// Panics if `tag_probability` is outside `[0, 1]`.
    pub fn new(tag_probability: f64, seed: u64) -> LifeLogApp {
        assert!(
            (0.0..=1.0).contains(&tag_probability),
            "tag probability must be in [0,1], got {tag_probability}"
        );
        LifeLogApp {
            history: BTreeMap::new(),
            open_arrivals: BTreeMap::new(),
            tag_probability,
            rng: StdRng::seed_from_u64(seed),
            pending_labels: Vec::new(),
        }
    }

    /// The place histories, keyed by PMS place id.
    pub fn history(&self) -> &BTreeMap<u32, PlaceHistory> {
        &self.history
    }

    /// Labels decided since the last call (push these to PMS with
    /// `label_place`).
    pub fn take_pending_labels(&mut self) -> Vec<(u32, String)> {
        std::mem::take(&mut self.pending_labels)
    }

    /// Number of tagged places.
    pub fn tagged_count(&self) -> usize {
        self.history.values().filter(|h| h.label.is_some()).count()
    }

    /// Places tagged *and* carrying departure info — the §4 evaluable set.
    pub fn evaluable_places(&self) -> Vec<u32> {
        self.history
            .iter()
            .filter(|(_, h)| h.label.is_some() && h.has_departure_info)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Processes one intent.
    pub fn on_intent(&mut self, intent: &Intent) {
        let Some(place) = intent.extras["place"].as_u64().map(|p| p as u32) else {
            return;
        };
        match intent.action.as_str() {
            actions::PLACE_NEW => {
                let tag = self.rng.gen_bool(self.tag_probability);
                let entry = self.history.entry(place).or_default();
                if tag && entry.label.is_none() {
                    // The user opens the map view (Figure 4a) and names the
                    // pin; the simulated label encodes the place id.
                    let label = format!("my-place-{place}");
                    entry.label = Some(label.clone());
                    self.pending_labels.push((place, label));
                }
                // PLACE_NEW carries the visit history PMWare already knows
                // (the Figure 4c detail view); fold it into the diary.
                if let Some(history) = intent.extras["history"].as_array() {
                    for visit in history {
                        let (Some(arrival), Some(departure)) =
                            (visit[0].as_u64(), visit[1].as_u64())
                        else {
                            continue;
                        };
                        entry.visits += 1;
                        entry
                            .visit_days
                            .insert(SimTime::from_seconds(arrival).day());
                        if departure > arrival {
                            entry.total_stay += SimDuration::from_seconds(departure - arrival);
                            entry.has_departure_info = true;
                        }
                    }
                }
            }
            actions::PLACE_ARRIVAL => {
                let entry = self.history.entry(place).or_default();
                entry.visits += 1;
                entry.visit_days.insert(intent.time.day());
                self.open_arrivals.insert(place, intent.time);
            }
            actions::PLACE_DEPARTURE => {
                let entry = self.history.entry(place).or_default();
                entry.has_departure_info = true;
                if let Some(arrival) = self.open_arrivals.remove(&place) {
                    entry.total_stay += intent.time.since(arrival);
                }
            }
            _ => {}
        }
    }

    /// Renders the Figure 4b/4c style report: one line per place with its
    /// label, visit count, visiting days, and total stay.
    pub fn report(&self) -> String {
        let mut out = String::from("place | label | visits | days | total stay\n");
        for (id, h) in &self.history {
            out.push_str(&format!(
                "{:>5} | {} | {:>6} | {:>4} | {}\n",
                id,
                h.label.as_deref().unwrap_or("(untagged)"),
                h.visits,
                h.visit_days.len(),
                h.total_stay,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn intent(action: &str, place: u64, day: u64, hour: u64) -> Intent {
        Intent::new(
            action,
            SimTime::from_day_time(day, hour, 0, 0),
            json!({"place": place}),
        )
    }

    #[test]
    fn accumulates_stays_and_days() {
        let mut app = LifeLogApp::new(1.0, 1);
        app.on_intent(&intent(actions::PLACE_NEW, 0, 0, 3));
        app.on_intent(&intent(actions::PLACE_ARRIVAL, 0, 0, 9));
        app.on_intent(&intent(actions::PLACE_DEPARTURE, 0, 0, 17));
        app.on_intent(&intent(actions::PLACE_ARRIVAL, 0, 1, 9));
        app.on_intent(&intent(actions::PLACE_DEPARTURE, 0, 1, 18));
        let h = &app.history()[&0];
        assert_eq!(h.visits, 2);
        assert_eq!(h.visit_days.len(), 2);
        assert_eq!(h.total_stay, SimDuration::from_hours(17));
        assert!(h.has_departure_info);
    }

    #[test]
    fn tagging_follows_probability() {
        // p = 1: everything tagged; p = 0: nothing.
        let mut always = LifeLogApp::new(1.0, 2);
        let mut never = LifeLogApp::new(0.0, 3);
        for place in 0..20 {
            always.on_intent(&intent(actions::PLACE_NEW, place, 0, 3));
            never.on_intent(&intent(actions::PLACE_NEW, place, 0, 3));
        }
        assert_eq!(always.tagged_count(), 20);
        assert_eq!(never.tagged_count(), 0);
        assert_eq!(always.take_pending_labels().len(), 20);
        // Intermediate probability lands in between.
        let mut sometimes = LifeLogApp::new(0.7, 4);
        for place in 0..300 {
            sometimes.on_intent(&intent(actions::PLACE_NEW, place, 0, 3));
        }
        let frac = sometimes.tagged_count() as f64 / 300.0;
        assert!((frac - 0.7).abs() < 0.1, "tag fraction {frac}");
    }

    #[test]
    fn evaluable_needs_tag_and_departure() {
        let mut app = LifeLogApp::new(1.0, 5);
        // Place 0: tagged + departure → evaluable.
        app.on_intent(&intent(actions::PLACE_NEW, 0, 0, 3));
        app.on_intent(&intent(actions::PLACE_ARRIVAL, 0, 0, 9));
        app.on_intent(&intent(actions::PLACE_DEPARTURE, 0, 0, 17));
        // Place 1: tagged, never departed → not evaluable.
        app.on_intent(&intent(actions::PLACE_NEW, 1, 0, 3));
        app.on_intent(&intent(actions::PLACE_ARRIVAL, 1, 0, 20));
        assert_eq!(app.evaluable_places(), vec![0]);
    }

    #[test]
    fn report_contains_labels() {
        let mut app = LifeLogApp::new(1.0, 6);
        app.on_intent(&intent(actions::PLACE_NEW, 7, 0, 3));
        let report = app.report();
        assert!(report.contains("my-place-7"), "{report}");
    }

    #[test]
    #[should_panic(expected = "tag probability")]
    fn bad_probability_rejected() {
        let _ = LifeLogApp::new(1.5, 0);
    }
}
