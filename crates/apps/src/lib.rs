//! Connected applications for the PMWare reproduction.
//!
//! The paper demonstrates PMWare through applications that delegate their
//! place sensing to the middleware (§3):
//!
//! * [`placeads`] — **PlaceADs**: *"pushes advertisements and
//!   recommendations for new places based on user's mobility profile"*;
//!   each ad is a card the user likes or dislikes by swiping. The §4
//!   deployment measured a 17:3 like:dislike ratio.
//! * [`adsim`] — the simulated participant who swipes those cards: an ad
//!   is liked when it is genuinely contextual (near the user's *true*
//!   position and matching their tastes), so mis-discovered places degrade
//!   the ratio exactly as they would in the real study.
//! * [`todo`](mod@todo) — the §2.4 use case: a To-Do app that alerts on
//!   workplace arrival/departure between 9 AM and 6 PM at building-level
//!   granularity.
//! * [`lifelog`] — the life-logging app of §3 (Figure 4): visualises
//!   visited places, lets the user validate and semantically tag them
//!   (producing the ~70 % tagged fraction of §4), and reports stay time
//!   and visiting days per place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adsim;
pub mod framework;
pub mod lifelog;
pub mod placeads;
pub mod todo;

pub use adsim::UserTasteModel;
pub use framework::{AppHarness, ConnectedApp};
pub use lifelog::LifeLogApp;
pub use placeads::{AdCard, AdInventory, PlaceAdsApp};
pub use todo::{Reminder, TodoApp};
