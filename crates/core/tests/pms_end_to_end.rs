//! End-to-end middleware test: one simulated participant runs PMS for
//! several days with connected apps; places are discovered, events are
//! broadcast, profiles are synced, and the battery pays only for what the
//! apps demanded.

use pmware_cloud::{CellDatabase, CloudInstance, SharedCloud};
use pmware_core::intents::{actions, IntentFilter};
use pmware_core::pms::{PmsConfig, PmwareMobileService};
use pmware_core::requirements::{AppRequirement, Granularity, RouteAccuracy};
use pmware_device::{Device, EnergyModel, Interface};
use pmware_mobility::Population;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::{SimTime, World};

fn setup(days: u64, seed: u64) -> (World, SharedCloud) {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(seed)
        .build();
    let cloud = SharedCloud::new(CloudInstance::new(
        CellDatabase::from_world(&world),
        seed + 1,
    ));
    let _ = days;
    (world, cloud)
}

#[test]
fn pms_discovers_places_and_broadcasts_events() {
    let days = 5;
    let (world, cloud) = setup(days, 500);
    let pop = Population::generate(&world, 1, 501);
    let agent = &pop.agents()[0];
    let itinerary = pop.itinerary(&world, agent.id(), days);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let device = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 502);

    let mut pms = PmwareMobileService::new(
        device,
        cloud.clone(),
        PmsConfig::for_participant(0),
        SimTime::EPOCH,
    )
    .expect("registration succeeds");

    // A building-level app listening to everything.
    let rx = pms.register_app(
        "todo",
        AppRequirement::places(Granularity::Building).with_routes(RouteAccuracy::Low),
        IntentFilter::all(),
    );

    pms.run(SimTime::from_day_time(days, 0, 0, 0)).unwrap();

    // Places were discovered and tracked.
    assert!(
        pms.places().len() >= 2,
        "expected home+work at least, got {}",
        pms.places().len()
    );
    let counters = pms.counters();
    assert!(counters.arrivals >= 4, "arrivals: {:?}", counters);
    assert!(counters.departures >= 3, "departures: {:?}", counters);
    assert!(
        counters.gca_offloads >= days - 1,
        "offloads: {:?}",
        counters
    );
    assert_eq!(counters.gca_local_fallbacks, 0, "cloud never fails here");
    assert!(counters.routes >= 2, "routes: {:?}", counters);
    assert!(
        counters.profiles_synced >= days - 2,
        "profiles: {:?}",
        counters
    );

    // The app received intents of several kinds.
    let intents: Vec<_> = rx.try_iter().collect();
    let arrivals = intents
        .iter()
        .filter(|i| i.action == actions::PLACE_ARRIVAL)
        .count();
    let news = intents
        .iter()
        .filter(|i| i.action == actions::PLACE_NEW)
        .count();
    let routes = intents
        .iter()
        .filter(|i| i.action == actions::ROUTE_COMPLETED)
        .count();
    assert!(arrivals >= 4, "app saw {arrivals} arrivals");
    assert!(news >= 2, "app saw {news} new places");
    assert!(routes >= 2, "app saw {routes} routes");

    // Positions in intents come from the cloud geolocation and are
    // building-level coarsened, near the world's actual extent.
    let with_pos = intents
        .iter()
        .find(|i| i.extras["latitude"].is_f64())
        .expect("some intent carries a position");
    let lat = with_pos.extras["latitude"].as_f64().unwrap();
    assert!((lat - world.bounds().center().latitude()).abs() < 0.2);

    // Energy accounting: GSM sampled continuously; GPS only while moving
    // (building-level demand), so GSM sample count must dominate.
    let report = pms.finish(SimTime::from_day_time(days, 0, 0, 0));
    let gsm = report
        .energy_by_interface
        .iter()
        .find(|(i, _)| *i == Interface::Gsm)
        .map(|(_, j)| *j)
        .unwrap_or(0.0);
    assert!(gsm > 0.0);
    let wifi = report
        .energy_by_interface
        .iter()
        .find(|(i, _)| *i == Interface::WifiScan)
        .map(|(_, j)| *j)
        .unwrap_or(0.0);
    assert_eq!(wifi, 0.0, "no room-level app: WiFi must stay off");
    assert!(report.intents_delivered as usize >= intents.len());
}

#[test]
fn granularity_cap_coarsens_payloads() {
    let days = 3;
    let (world, cloud) = setup(days, 600);
    let pop = Population::generate(&world, 1, 601);
    let itinerary = pop.itinerary(&world, pop.agents()[0].id(), days);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let device = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 602);
    let mut pms =
        PmwareMobileService::new(device, cloud, PmsConfig::for_participant(1), SimTime::EPOCH)
            .unwrap();

    // The ads app asks for building-level but the user caps it at area.
    let ads_rx = pms.register_app(
        "ads",
        AppRequirement::places(Granularity::Building),
        IntentFilter::for_actions([actions::PLACE_ARRIVAL]),
    );
    let fine_rx = pms.register_app(
        "logger",
        AppRequirement::places(Granularity::Building),
        IntentFilter::for_actions([actions::PLACE_ARRIVAL]),
    );
    pms.preferences_mut().set_cap("ads", Granularity::Area);

    pms.run(SimTime::from_day_time(days, 0, 0, 0)).unwrap();

    let ads_intents: Vec<_> = ads_rx.try_iter().collect();
    let fine_intents: Vec<_> = fine_rx.try_iter().collect();
    assert!(!ads_intents.is_empty());
    assert_eq!(ads_intents.len(), fine_intents.len());
    for intent in &ads_intents {
        assert_eq!(intent.extras["granularity"], "area");
    }
    for intent in &fine_intents {
        assert_eq!(intent.extras["granularity"], "building");
    }
    // Same events, different positional precision: where both carry a
    // position for the same place/time, they may differ (coarsening), and
    // the ads one snaps to a 1 km grid.
    for (a, f) in ads_intents.iter().zip(&fine_intents) {
        if let (Some(la), Some(lf)) = (a.extras["latitude"].as_f64(), f.extras["latitude"].as_f64())
        {
            // Area-level snapping moves the coordinate by at most ~1km/111km deg.
            assert!((la - lf).abs() <= 0.01, "ads {la} vs fine {lf}");
        }
    }
}

#[test]
fn kill_switch_stops_all_place_intents() {
    let days = 2;
    let (world, cloud) = setup(days, 700);
    let pop = Population::generate(&world, 1, 701);
    let itinerary = pop.itinerary(&world, pop.agents()[0].id(), days);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let device = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 702);
    let mut pms =
        PmwareMobileService::new(device, cloud, PmsConfig::for_participant(2), SimTime::EPOCH)
            .unwrap();
    let rx = pms.register_app(
        "app",
        AppRequirement::places(Granularity::Area),
        IntentFilter::for_actions([
            actions::PLACE_ARRIVAL,
            actions::PLACE_DEPARTURE,
            actions::PLACE_NEW,
        ]),
    );
    pms.preferences_mut().set_sharing_disabled(true);
    pms.run(SimTime::from_day_time(days, 0, 0, 0)).unwrap();
    assert_eq!(
        rx.try_iter().count(),
        0,
        "kill switch must block every place intent"
    );
}

#[test]
fn room_level_app_triggers_wifi_and_augments_signatures() {
    let days = 3;
    // Europe profile: WiFi nearly everywhere.
    let world = WorldBuilder::new(RegionProfile::urban_europe())
        .seed(800)
        .build();
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 801));
    let pop = Population::generate(&world, 1, 802);
    let itinerary = pop.itinerary(&world, pop.agents()[0].id(), days);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let device = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 803);
    let mut pms =
        PmwareMobileService::new(device, cloud, PmsConfig::for_participant(3), SimTime::EPOCH)
            .unwrap();
    let _rx = pms.register_app(
        "activity-tracker",
        AppRequirement::places(Granularity::Room),
        IntentFilter::all(),
    );
    pms.run(SimTime::from_day_time(days, 0, 0, 0)).unwrap();

    // WiFi was sampled (room-level demand).
    let wifi_energy = pms.battery().drained_by(Interface::WifiScan);
    assert!(
        wifi_energy > 0.0,
        "room-level demand must trigger WiFi scans"
    );
    // And at least one discovered place carries WiFi augmentation.
    let augmented = pms
        .places()
        .iter()
        .filter(|p| !p.wifi_aps.is_empty())
        .count();
    assert!(
        augmented >= 1,
        "opportunistic WiFi should augment some place signatures"
    );
    let report = pms.finish(SimTime::from_day_time(days, 0, 0, 0));
    assert!(report.energy_joules > 0.0);
}

#[test]
fn activity_summary_reaches_the_cloud() {
    let days = 2;
    let (world, cloud) = setup(days, 900);
    let pop = Population::generate(&world, 1, 901);
    let itinerary = pop.itinerary(&world, pop.agents()[0].id(), days);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let device = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 902);
    let mut pms =
        PmwareMobileService::new(device, cloud, PmsConfig::for_participant(9), SimTime::EPOCH)
            .unwrap();
    let _rx = pms.register_app(
        "app",
        AppRequirement::places(Granularity::Area),
        IntentFilter::all(),
    );
    let end = SimTime::from_day_time(days, 0, 0, 0);
    pms.run(end).unwrap();

    // Day 0's profile was synced at the day-1 maintenance; it must carry a
    // full day of classified activity (1440 one-minute windows).
    let resp = pms
        .cloud_client_mut()
        .get("/api/v1/profiles/0", end)
        .expect("day 0 synced");
    let activity = &resp.body["profile"]["activity"];
    let moving = activity["moving_seconds"].as_u64().unwrap();
    let stationary = activity["stationary_seconds"].as_u64().unwrap();
    assert_eq!(moving + stationary, 24 * 3_600, "every window accounted");
    assert!(moving > 0, "a commuter day includes movement");
    assert!(stationary > moving, "most of a day is stationary");

    // The aggregate analytics endpoint answers too.
    let resp = pms
        .cloud_client_mut()
        .call("/api/v1/analytics/activity", serde_json::json!({}), end)
        .unwrap();
    assert!(resp.body["mean_daily_moving_minutes"].as_f64().unwrap() > 0.0);
}
