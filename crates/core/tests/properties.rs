//! Property-based tests for the middleware components: scheduler budgets,
//! privacy coarsening, intent filtering, profile-builder invariants, and
//! registry reconciliation.

use pmware_algorithms::signature::{
    DiscoveredPlace, DiscoveredPlaceId, DiscoveredVisit, PlaceSignature,
};
use pmware_core::apps::Demand;
use pmware_core::preferences::{coarsen_position, UserPreferences};
use pmware_core::profile_builder::ProfileBuilder;
use pmware_core::registry::PlaceRegistry;
use pmware_core::requirements::Granularity;
use pmware_core::sensing::{SensingConfig, SensingScheduler};
use pmware_geo::GeoPoint;
use pmware_world::{CellGlobalId, CellId, Lac, MotionState, Plmn, SimTime};
use proptest::prelude::*;

fn cell(id: u32) -> CellGlobalId {
    CellGlobalId {
        plmn: Plmn { mcc: 404, mnc: 45 },
        lac: Lac(1),
        cell: CellId(id),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scheduler_sample_counts_respect_periods(
        motion_bits in prop::collection::vec(any::<bool>(), 240),
        granularity_pick in 0u8..3,
    ) {
        let granularity = Granularity::ALL[granularity_pick as usize];
        let demand = Demand { granularity: Some(granularity), route: None, social: false };
        let config = SensingConfig::default();
        let mut s = SensingScheduler::new(config.clone());
        let (mut gsm, mut wifi, mut gps) = (0u64, 0u64, 0u64);
        for (minute, moving) in motion_bits.iter().enumerate() {
            let motion = if *moving { MotionState::Moving } else { MotionState::Stationary };
            let d = s.decide(SimTime::from_seconds(minute as u64 * 60), demand, motion);
            gsm += d.gsm as u64;
            wifi += d.wifi as u64;
            gps += d.gps as u64;
        }
        let minutes = motion_bits.len() as u64;
        // GSM every minute, exactly.
        prop_assert_eq!(gsm, minutes);
        // WiFi can never exceed one scan per wifi_moving_period, plus one
        // per motion transition.
        let transitions = motion_bits.windows(2).filter(|w| w[0] != w[1]).count() as u64;
        let wifi_cap = minutes * 60 / config.wifi_moving_period.as_seconds() + transitions + 1;
        prop_assert!(wifi <= wifi_cap, "wifi {wifi} > cap {wifi_cap}");
        if granularity != Granularity::Room {
            prop_assert_eq!(wifi, 0);
        }
        if granularity != Granularity::Building {
            prop_assert_eq!(gps, 0);
        } else {
            let gps_cap = minutes * 60 / config.gps_moving_period.as_seconds() + transitions + 1;
            prop_assert!(gps <= gps_cap);
        }
    }

    #[test]
    fn coarsening_error_is_bounded_and_idempotent(
        lat in -60.0..60.0f64,
        lng in -170.0..170.0f64,
        granularity_pick in 0u8..3,
    ) {
        let granularity = Granularity::ALL[granularity_pick as usize];
        let p = GeoPoint::new(lat, lng).unwrap();
        let snapped = coarsen_position(p, granularity);
        let d = p.equirectangular_distance(snapped).value();
        // Displacement bounded by the cell diagonal.
        let bound = granularity.coarseness_m() * std::f64::consts::SQRT_2 / 2.0 + 1.0;
        prop_assert!(d <= bound, "displaced {d} > {bound}");
        // Snapping is idempotent.
        let again = coarsen_position(snapped, granularity);
        prop_assert!(snapped.equirectangular_distance(again).value() < 1e-6);
    }

    #[test]
    fn effective_granularity_never_finer_than_cap_or_request(
        cap_pick in prop::option::of(0u8..3),
        request_pick in 0u8..3,
        disabled in any::<bool>(),
    ) {
        let request = Granularity::ALL[request_pick as usize];
        let mut prefs = UserPreferences::new();
        if let Some(c) = cap_pick {
            prefs.set_cap("app", Granularity::ALL[c as usize]);
        }
        prefs.set_sharing_disabled(disabled);
        match prefs.effective_granularity("app", request) {
            None => prop_assert!(disabled),
            Some(effective) => {
                prop_assert!(!disabled);
                prop_assert!(effective <= request);
                if let Some(c) = cap_pick {
                    prop_assert!(effective <= Granularity::ALL[c as usize]);
                }
            }
        }
    }

    #[test]
    fn profile_builder_day_entries_stay_within_their_day(
        stays in prop::collection::vec((0u64..(5 * 1_440), 10u64..2_000), 1..20),
    ) {
        let mut b = ProfileBuilder::new();
        let mut clock = 0u64;
        for (i, (gap, len)) in stays.iter().enumerate() {
            clock += gap;
            let arrive = SimTime::from_seconds(clock * 60);
            clock += len;
            let depart = SimTime::from_seconds(clock * 60);
            b.on_arrival(DiscoveredPlaceId(i as u32 % 4), arrive);
            b.on_departure(depart);
        }
        let profiles = b.finish(SimTime::from_seconds(clock * 60));
        for p in &profiles {
            for entry in &p.places {
                prop_assert_eq!(entry.arrival.day(), p.day);
                prop_assert!(entry.departure.day() == p.day
                    || (entry.departure.day() == p.day + 1
                        && entry.departure.seconds_of_day() == 0));
                prop_assert!(entry.arrival <= entry.departure);
            }
        }
        // Total profiled stay equals total input stay.
        let profiled: u64 = profiles
            .iter()
            .flat_map(|p| p.places.iter())
            .map(|e| e.departure.since(e.arrival).as_seconds())
            .sum();
        let input: u64 = stays.iter().map(|(_, len)| len * 60).sum();
        prop_assert_eq!(profiled, input);
    }

    #[test]
    fn registry_reconcile_is_stable_under_identity(
        signatures in prop::collection::vec(
            prop::collection::btree_set(0u32..40, 1..5), 1..10),
    ) {
        let places: Vec<DiscoveredPlace> = signatures
            .iter()
            .enumerate()
            .map(|(i, cells)| {
                DiscoveredPlace::new(
                    DiscoveredPlaceId(i as u32),
                    PlaceSignature::Cells(cells.iter().map(|&c| cell(c)).collect()),
                    vec![DiscoveredVisit {
                        arrival: SimTime::from_seconds(0),
                        departure: SimTime::from_seconds(900),
                    }],
                )
            })
            .collect();
        let mut registry = PlaceRegistry::new();
        let first = registry.reconcile(&places, SimTime::EPOCH, 0.3);
        let after_first = registry.len();
        prop_assert_eq!(first.created.len(), after_first);
        // Reconciling the identical output again creates nothing new.
        let second = registry.reconcile(&places, SimTime::EPOCH, 0.3);
        prop_assert!(second.created.is_empty());
        prop_assert_eq!(registry.len(), after_first);
        // And every GCA id resolves.
        for p in &places {
            prop_assert!(registry.resolve(p.id).is_some());
        }
    }
}
