//! The triggered-sensing scheduler (§2.2.2).
//!
//! *"PMWare uses triggered sensing approach where it continuously samples
//! low energy location interfaces such as GSM continuously and samples
//! high energy location interfaces such as WiFi, GPS based on the demand
//! of connected applications."*
//!
//! Policy, per tick:
//!
//! * **GSM**: every `gsm_period`, unconditionally — the cheap backbone.
//! * **Accelerometer**: every `accel_period`, unconditionally — it drives
//!   the movement detector that triggers everything else.
//! * **WiFi**: only when some active app needs room-level accuracy (or
//!   high-accuracy routes, which use WiFi to detect departure): scans fire
//!   on movement-state *transitions* and at a slow opportunistic period
//!   while stationary.
//! * **GPS**: only for building-level demand or high-accuracy routes, and
//!   only while *moving* (a stationary user's place is pinned by the other
//!   interfaces; burning fixes indoors is wasted energy) plus one fix on
//!   the moving→stationary transition to pinpoint the arrival.
//! * **Bluetooth**: only for social-contact demand, while stationary.

use pmware_world::{MotionState, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::apps::Demand;
use crate::requirements::{Granularity, RouteAccuracy};

/// Scheduler periods.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensingConfig {
    /// GSM sampling period (the paper's "every minute").
    pub gsm_period: SimDuration,
    /// Accelerometer window period.
    pub accel_period: SimDuration,
    /// Opportunistic WiFi period while stationary with room-level demand.
    pub wifi_stationary_period: SimDuration,
    /// WiFi period while moving with room-level demand (departure/arrival
    /// detection needs denser scans in motion).
    pub wifi_moving_period: SimDuration,
    /// GPS period while moving with building-level demand.
    pub gps_moving_period: SimDuration,
    /// Bluetooth inquiry period while stationary with social demand.
    pub bluetooth_period: SimDuration,
    /// When set, GPS is sampled at `gps_moving_period` regardless of
    /// motion state — the naive "continuous GPS" plan PMWare's triggered
    /// sensing is compared against (never enabled in normal operation).
    pub gps_continuous: bool,
}

impl Default for SensingConfig {
    fn default() -> Self {
        SensingConfig {
            gsm_period: SimDuration::from_minutes(1),
            accel_period: SimDuration::from_minutes(1),
            wifi_stationary_period: SimDuration::from_minutes(10),
            wifi_moving_period: SimDuration::from_minutes(2),
            gps_moving_period: SimDuration::from_minutes(2),
            bluetooth_period: SimDuration::from_minutes(10),
            gps_continuous: false,
        }
    }
}

/// What to sample this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SensingDecision {
    /// Read the serving cell.
    pub gsm: bool,
    /// Read an accelerometer window.
    pub accel: bool,
    /// Perform a WiFi scan.
    pub wifi: bool,
    /// Attempt a GPS fix.
    pub gps: bool,
    /// Perform a Bluetooth inquiry.
    pub bluetooth: bool,
}

/// The stateful scheduler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensingScheduler {
    config: SensingConfig,
    last_gsm: Option<SimTime>,
    last_accel: Option<SimTime>,
    last_wifi: Option<SimTime>,
    last_gps: Option<SimTime>,
    last_bluetooth: Option<SimTime>,
    prev_motion: MotionState,
}

impl SensingScheduler {
    /// Creates a scheduler.
    pub fn new(config: SensingConfig) -> Self {
        SensingScheduler {
            config,
            last_gsm: None,
            last_accel: None,
            last_wifi: None,
            last_gps: None,
            last_bluetooth: None,
            prev_motion: MotionState::Stationary,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SensingConfig {
        &self.config
    }

    fn due(last: Option<SimTime>, now: SimTime, period: SimDuration) -> bool {
        match last {
            None => true,
            Some(t) => now.since(t) >= period,
        }
    }

    /// Decides what to sample at `now`, given the app demand and the
    /// current smoothed motion state. Call exactly once per tick; the
    /// decision records what was sampled.
    pub fn decide(&mut self, now: SimTime, demand: Demand, motion: MotionState) -> SensingDecision {
        let transition = motion != self.prev_motion;
        self.prev_motion = motion;

        let mut decision = SensingDecision::default();

        if Self::due(self.last_gsm, now, self.config.gsm_period) {
            decision.gsm = true;
            self.last_gsm = Some(now);
        }
        if Self::due(self.last_accel, now, self.config.accel_period) {
            decision.accel = true;
            self.last_accel = Some(now);
        }

        let wifi_demanded = demand.granularity == Some(Granularity::Room)
            || demand.route == Some(RouteAccuracy::High);
        if wifi_demanded {
            let period = if motion.is_moving() {
                self.config.wifi_moving_period
            } else {
                self.config.wifi_stationary_period
            };
            if transition || Self::due(self.last_wifi, now, period) {
                decision.wifi = true;
                self.last_wifi = Some(now);
            }
        }

        let gps_demanded = demand.granularity == Some(Granularity::Building)
            || demand.route == Some(RouteAccuracy::High);
        if gps_demanded {
            let arriving = transition && !motion.is_moving();
            let due = Self::due(self.last_gps, now, self.config.gps_moving_period);
            if ((motion.is_moving() || self.config.gps_continuous) && due) || arriving {
                decision.gps = true;
                self.last_gps = Some(now);
            }
        }

        if demand.social
            && !motion.is_moving()
            && Self::due(self.last_bluetooth, now, self.config.bluetooth_period)
        {
            decision.bluetooth = true;
            self.last_bluetooth = Some(now);
        }

        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(g: Granularity) -> Demand {
        Demand {
            granularity: Some(g),
            route: None,
            social: false,
        }
    }

    fn run_day(
        scheduler: &mut SensingScheduler,
        demand: Demand,
        motion: impl Fn(u64) -> MotionState,
    ) -> (u32, u32, u32, u32) {
        let (mut gsm, mut wifi, mut gps, mut bt) = (0, 0, 0, 0);
        for minute in 0..24 * 60 {
            let d = scheduler.decide(SimTime::from_seconds(minute * 60), demand, motion(minute));
            gsm += d.gsm as u32;
            wifi += d.wifi as u32;
            gps += d.gps as u32;
            bt += d.bluetooth as u32;
        }
        (gsm, wifi, gps, bt)
    }

    #[test]
    fn gsm_runs_continuously_regardless_of_demand() {
        let mut s = SensingScheduler::new(SensingConfig::default());
        let (gsm, wifi, gps, bt) = run_day(&mut s, Demand::default(), |_| MotionState::Stationary);
        assert_eq!(gsm, 24 * 60);
        assert_eq!(wifi, 0);
        assert_eq!(gps, 0);
        assert_eq!(bt, 0);
    }

    #[test]
    fn area_demand_never_triggers_expensive_interfaces() {
        let mut s = SensingScheduler::new(SensingConfig::default());
        let (_, wifi, gps, _) = run_day(&mut s, demand(Granularity::Area), |m| {
            if m % 60 < 10 {
                MotionState::Moving
            } else {
                MotionState::Stationary
            }
        });
        assert_eq!(wifi, 0);
        assert_eq!(gps, 0);
    }

    #[test]
    fn room_demand_triggers_wifi_not_gps() {
        let mut s = SensingScheduler::new(SensingConfig::default());
        let (_, wifi, gps, _) = run_day(&mut s, demand(Granularity::Room), |m| {
            if m % 120 < 15 {
                MotionState::Moving
            } else {
                MotionState::Stationary
            }
        });
        assert!(wifi > 0);
        assert_eq!(gps, 0);
    }

    #[test]
    fn building_demand_triggers_gps_only_while_moving() {
        let mut s = SensingScheduler::new(SensingConfig::default());
        // Stationary all day: no GPS at all.
        let (_, _, gps, _) = run_day(&mut s, demand(Granularity::Building), |_| {
            MotionState::Stationary
        });
        assert_eq!(gps, 0);
        // Moving one hour a day: a bounded number of fixes.
        let mut s = SensingScheduler::new(SensingConfig::default());
        let (_, _, gps, _) = run_day(&mut s, demand(Granularity::Building), |m| {
            if m < 60 {
                MotionState::Moving
            } else {
                MotionState::Stationary
            }
        });
        // ~every 2 min for 60 min plus the arrival fix.
        assert!((25..=35).contains(&gps), "gps = {gps}");
    }

    #[test]
    fn wifi_fires_on_motion_transitions() {
        let mut s = SensingScheduler::new(SensingConfig::default());
        let d = demand(Granularity::Room);
        // Warm up stationary.
        for m in 0..20 {
            let _ = s.decide(SimTime::from_seconds(m * 60), d, MotionState::Stationary);
        }
        // Transition to moving must scan immediately even if the periodic
        // timer is not due.
        let dec = s.decide(SimTime::from_seconds(20 * 60), d, MotionState::Moving);
        assert!(dec.wifi, "transition should force a scan");
    }

    #[test]
    fn moving_wifi_denser_than_stationary() {
        let config = SensingConfig::default();
        let mut s = SensingScheduler::new(config.clone());
        let d = demand(Granularity::Room);
        let (_, wifi_moving, _, _) = run_day(&mut s, d, |_| MotionState::Moving);
        let mut s = SensingScheduler::new(config);
        let (_, wifi_stationary, _, _) = run_day(&mut s, d, |_| MotionState::Stationary);
        assert!(wifi_moving > wifi_stationary * 2);
    }

    #[test]
    fn bluetooth_only_with_social_demand_and_stationary() {
        let mut s = SensingScheduler::new(SensingConfig::default());
        let social = Demand {
            granularity: Some(Granularity::Building),
            route: None,
            social: true,
        };
        let (_, _, _, bt) = run_day(&mut s, social, |_| MotionState::Stationary);
        assert!(bt > 0 && bt <= 24 * 6 + 1, "bt = {bt}");
        let mut s = SensingScheduler::new(SensingConfig::default());
        let (_, _, _, bt_moving) = run_day(&mut s, social, |_| MotionState::Moving);
        assert_eq!(bt_moving, 0);
    }

    #[test]
    fn high_accuracy_routes_bring_both_wifi_and_gps() {
        let mut s = SensingScheduler::new(SensingConfig::default());
        let d = Demand {
            granularity: Some(Granularity::Area),
            route: Some(RouteAccuracy::High),
            social: false,
        };
        let (_, wifi, gps, _) = run_day(&mut s, d, |m| {
            if m % 60 < 20 {
                MotionState::Moving
            } else {
                MotionState::Stationary
            }
        });
        assert!(wifi > 0, "WiFi detects departures in high-accuracy mode");
        assert!(gps > 0, "GPS traces the route in high-accuracy mode");
    }
}
