//! REST client for the cloud instance (§2.2.5).
//!
//! *"Communication module handles two different kind of communication i.e.
//! REST API based communication with the cloud instance and inter
//! application communication between PMS and connected applications."*
//!
//! Every call serialises the request to wire bytes and parses them back on
//! the "server" side, so the JSON marshalling path is exercised exactly as
//! it would be over HTTP. The cloud instance is shared through the
//! internally synchronized [`SharedCloud`] handle — sixteen simulated
//! phones talk to one server concurrently, as in the deployment study.

use pmware_algorithms::route::CanonicalRoute;
use pmware_algorithms::signature::{DiscoveredPlace, DiscoveredPlaceId};
use pmware_cloud::{MobilityProfile, Request, Response, SharedCloud, UserId};
use pmware_world::{CellGlobalId, GsmObservation, SimTime};
use pmware_geo::GeoPoint;
use serde::Deserialize;
use serde_json::json;

use crate::error::PmsError;

/// A client bound to one registered device.
#[derive(Debug, Clone)]
pub struct CloudClient {
    cloud: SharedCloud,
    user: UserId,
    token: String,
    token_expires: SimTime,
}

impl CloudClient {
    /// Registers a device with the cloud and returns a ready client
    /// (§2.2.1: one-time registration request retrieving an auth token).
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] when registration fails.
    pub fn register(
        cloud: SharedCloud,
        imei: &str,
        email: &str,
        now: SimTime,
    ) -> Result<CloudClient, PmsError> {
        let request = Request::post(
            "/api/v1/registration",
            json!({ "imei": imei, "email": email }),
        );
        let response = Self::transport(&cloud, &request, now);
        let response = Self::check(&request, response)?;
        #[derive(Deserialize)]
        struct Body {
            user: UserId,
            token: String,
            expires_at: SimTime,
        }
        let body: Body = response.parse().map_err(|e| PmsError::Decode(e.to_string()))?;
        Ok(CloudClient {
            cloud,
            user: body.user,
            token: body.token,
            token_expires: body.expires_at,
        })
    }

    /// The registered user id.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Re-registers the device after its token was irrecoverably lost
    /// (e.g. it expired while the cloud was unreachable). Registration is
    /// idempotent per device identity, so the same user id comes back.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] while the cloud stays unreachable.
    pub fn reregister(
        &mut self,
        imei: &str,
        email: &str,
        now: SimTime,
    ) -> Result<(), PmsError> {
        let fresh = CloudClient::register(self.cloud.clone(), imei, email, now)?;
        self.user = fresh.user;
        self.token = fresh.token;
        self.token_expires = fresh.token_expires;
        Ok(())
    }

    /// When the current token expires.
    pub fn token_expires(&self) -> SimTime {
        self.token_expires
    }

    /// Refreshes the token when it is within `margin` of expiry
    /// ("refreshed periodically based on its expiry time", §2.2.1).
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] when the refresh is rejected.
    pub fn refresh_if_needed(
        &mut self,
        now: SimTime,
        margin: pmware_world::SimDuration,
    ) -> Result<bool, PmsError> {
        if now + margin < self.token_expires {
            return Ok(false);
        }
        let response = self.call("/api/v1/token/refresh", json!(null), now)?;
        #[derive(Deserialize)]
        struct Body {
            token: String,
            expires_at: SimTime,
        }
        let body: Body = response.parse().map_err(|e| PmsError::Decode(e.to_string()))?;
        self.token = body.token;
        self.token_expires = body.expires_at;
        Ok(true)
    }

    /// Offloads GCA place discovery to the cloud (§2.3.1) and returns the
    /// discovered places.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] / [`PmsError::Decode`] on failure.
    pub fn discover_places(
        &mut self,
        observations: &[GsmObservation],
        now: SimTime,
    ) -> Result<Vec<DiscoveredPlace>, PmsError> {
        let response = self.call(
            "/api/v1/places/discover",
            json!({ "observations": observations }),
            now,
        )?;
        #[derive(Deserialize)]
        struct Body {
            places: Vec<DiscoveredPlace>,
        }
        let body: Body = response.parse().map_err(|e| PmsError::Decode(e.to_string()))?;
        Ok(body.places)
    }

    /// Pushes the authoritative place list to the cloud.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] on failure.
    pub fn sync_places(
        &mut self,
        places: &[DiscoveredPlace],
        now: SimTime,
    ) -> Result<(), PmsError> {
        self.call("/api/v1/places/sync", json!({ "places": places }), now)?;
        Ok(())
    }

    /// Labels a place (§2.2.5 semantic labelling).
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] when the place is unknown server-side.
    pub fn label_place(
        &mut self,
        place: DiscoveredPlaceId,
        label: &str,
        now: SimTime,
    ) -> Result<(), PmsError> {
        self.call(
            "/api/v1/places/label",
            json!({ "place": place, "label": label }),
            now,
        )?;
        Ok(())
    }

    /// Syncs a day's mobility profile (§2.2.3).
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] on failure.
    pub fn sync_profile(
        &mut self,
        profile: &MobilityProfile,
        now: SimTime,
    ) -> Result<(), PmsError> {
        self.call("/api/v1/profiles/sync", json!({ "profile": profile }), now)?;
        Ok(())
    }

    /// Syncs the canonical route table.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] on failure.
    pub fn sync_routes(
        &mut self,
        routes: &[CanonicalRoute],
        now: SimTime,
    ) -> Result<(), PmsError> {
        self.call("/api/v1/routes/sync", json!({ "routes": routes }), now)?;
        Ok(())
    }

    /// Syncs social contacts.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] on failure.
    pub fn sync_contacts(
        &mut self,
        contacts: &[pmware_cloud::ContactEntry],
        now: SimTime,
    ) -> Result<(), PmsError> {
        self.call("/api/v1/social/sync", json!({ "contacts": contacts }), now)?;
        Ok(())
    }

    /// Resolves a cell-set signature to approximate coordinates via the
    /// cloud's geolocation endpoint. Returns `None` when unknown.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] on transport-level failures (404 is
    /// mapped to `Ok(None)`).
    pub fn geolocate_signature(
        &mut self,
        cells: &[CellGlobalId],
        now: SimTime,
    ) -> Result<Option<GeoPoint>, PmsError> {
        let request = Request::post(
            "/api/v1/misc/geolocate_signature",
            json!({ "cells": cells }),
        )
        .with_token(&self.token);
        let response = Self::transport(&self.cloud, &request, now);
        if response.status == 404 {
            return Ok(None);
        }
        let response = Self::check(&request, response)?;
        #[derive(Deserialize)]
        struct Body {
            latitude: f64,
            longitude: f64,
        }
        let body: Body = response.parse().map_err(|e| PmsError::Decode(e.to_string()))?;
        GeoPoint::new(body.latitude, body.longitude)
            .map(Some)
            .map_err(|e| PmsError::Decode(e.to_string()))
    }

    /// Sends an arbitrary authenticated request — the escape hatch apps use
    /// for analytics queries (§2.3.2).
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] for non-2xx responses.
    pub fn call(
        &mut self,
        path: &str,
        body: serde_json::Value,
        now: SimTime,
    ) -> Result<Response, PmsError> {
        let request = Request::post(path, body).with_token(&self.token);
        let response = Self::transport(&self.cloud, &request, now);
        Self::check(&request, response)
    }

    /// Sends an authenticated GET.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] for non-2xx responses.
    pub fn get(&mut self, path: &str, now: SimTime) -> Result<Response, PmsError> {
        let request = Request::get(path).with_token(&self.token);
        let response = Self::transport(&self.cloud, &request, now);
        Self::check(&request, response)
    }

    /// The wire: serialise, deliver, deserialise — both directions.
    fn transport(cloud: &SharedCloud, request: &Request, now: SimTime) -> Response {
        let bytes = request.to_bytes();
        let parsed = Request::from_bytes(&bytes).expect("request round-trips");
        let response = cloud.handle(&parsed, now);
        let bytes = response.to_bytes();
        serde_json::from_slice(&bytes).expect("response round-trips")
    }

    fn check(request: &Request, response: Response) -> Result<Response, PmsError> {
        if response.is_success() {
            Ok(response)
        } else {
            Err(PmsError::Cloud {
                path: request.path.clone(),
                status: response.status,
                message: response.body["error"]
                    .as_str()
                    .unwrap_or("unknown error")
                    .to_owned(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_cloud::{CellDatabase, CloudInstance};
    use pmware_world::SimDuration;

    fn cloud() -> SharedCloud {
        SharedCloud::new(CloudInstance::new(CellDatabase::new(), 5))
    }

    #[test]
    fn register_and_basic_flow() {
        let cloud = cloud();
        let mut client =
            CloudClient::register(cloud.clone(), "imei-1", "a@x.com", SimTime::EPOCH)
                .unwrap();
        assert_eq!(cloud.user_count(), 1);
        // Sync an empty place list.
        client.sync_places(&[], SimTime::EPOCH).unwrap();
        // Fetch them back through the raw GET.
        let resp = client.get("/api/v1/places", SimTime::EPOCH).unwrap();
        assert_eq!(resp.body["places"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn refresh_only_when_near_expiry() {
        let cloud = cloud();
        let mut client =
            CloudClient::register(cloud, "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        // Far from expiry: no refresh.
        let refreshed = client
            .refresh_if_needed(SimTime::EPOCH, SimDuration::from_hours(2))
            .unwrap();
        assert!(!refreshed);
        // Near expiry: refresh happens and extends the horizon.
        let near = SimTime::EPOCH + SimDuration::from_hours(23);
        let old_expiry = client.token_expires();
        let refreshed = client
            .refresh_if_needed(near, SimDuration::from_hours(2))
            .unwrap();
        assert!(refreshed);
        assert!(client.token_expires() > old_expiry);
    }

    #[test]
    fn expired_token_surfaces_cloud_error() {
        let cloud = cloud();
        let mut client =
            CloudClient::register(cloud, "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        let long_after = SimTime::EPOCH + SimDuration::from_days(3);
        let err = client.sync_places(&[], long_after).unwrap_err();
        match err {
            PmsError::Cloud { status, .. } => assert_eq!(status, 401),
            other => panic!("expected cloud error, got {other}"),
        }
    }

    #[test]
    fn label_unknown_place_is_cloud_404() {
        let cloud = cloud();
        let mut client =
            CloudClient::register(cloud, "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        let err = client
            .label_place(DiscoveredPlaceId(9), "Home", SimTime::EPOCH)
            .unwrap_err();
        match err {
            PmsError::Cloud { status, .. } => assert_eq!(status, 404),
            other => panic!("expected cloud error, got {other}"),
        }
    }

    #[test]
    fn geolocate_unknown_signature_is_none() {
        let cloud = cloud();
        let mut client =
            CloudClient::register(cloud, "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        let got = client.geolocate_signature(&[], SimTime::EPOCH).unwrap();
        assert!(got.is_none());
    }
}
