//! REST client for the cloud instance (§2.2.5).
//!
//! *"Communication module handles two different kind of communication i.e.
//! REST API based communication with the cloud instance and inter
//! application communication between PMS and connected applications."*
//!
//! Every call builds a typed [`Payload`] directly — no JSON tree on the
//! hot path. Against an in-process [`SharedCloud`] the payload travels
//! typed end-to-end with zero serde work; only the fault-injecting
//! decorator (the wire boundary) spells it as JSON bytes, and those bytes
//! are rendered **once** per request and reused across the whole retry
//! schedule. The client owns the *retry policy*: every request class has
//! a bounded number of attempts with capped exponential backoff and
//! deterministic SimTime-derived jitter, so a lossy link is survived
//! without ever consulting a wall clock (fault runs replay bit-identically
//! from a seed).
//!
//! Mutating endpoints carry idempotency keys (sequence numbers and stream
//! offsets) so that the retries, duplicates and reorderings a faulty
//! transport produces are absorbed exactly once server-side.

use pmware_algorithms::route::CanonicalRoute;
use pmware_algorithms::signature::{DiscoveredPlace, DiscoveredPlaceId};
use pmware_cloud::wire::ObservationBatch;
use pmware_cloud::{
    CloudEndpoint, DiscoverBody, GeolocateSignatureBody, LabelBody, MobilityProfile, Payload,
    RegistrationBody, Request, Response, SpanCtx, SyncContactsBody, SyncPlacesBody,
    SyncProfileBody, SyncRoutesBody, UserId, STATUS_BUDGET_EXHAUSTED, STATUS_MISDIRECTED,
    STATUS_RATE_LIMITED, STATUS_TIMEOUT,
};
use pmware_geo::GeoPoint;
use pmware_obs::{Counter, FieldValue, Histogram, Obs, SpanSink};
use pmware_world::{CellGlobalId, GsmObservation, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::error::PmsError;

/// A response rendered to its JSON spelling — what the untyped
/// [`CloudClient::call`]/[`CloudClient::get`] escape hatch returns, so
/// app-level callers can keep indexing bodies (`resp.body["places"]`)
/// without caring which typed variant the server produced.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonResponse {
    /// HTTP-style status code.
    pub status: u16,
    /// The body's JSON wire spelling.
    pub body: serde_json::Value,
}

impl JsonResponse {
    /// Returns `true` for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Deserialises the body into a typed value (by reference).
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` when the body does not match `T`.
    pub fn parse<T: serde::de::DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        T::from_json_value(&self.body).map_err(serde_json::Error::from)
    }
}

impl From<Response> for JsonResponse {
    fn from(response: Response) -> JsonResponse {
        JsonResponse {
            status: response.status,
            body: response.body.into_json(),
        }
    }
}

/// How persistently a request is retried. Classes mirror how much a lost
/// request costs: an offload or sync must eventually land (the maintenance
/// pass depends on it), while an interactive query can fail fast and let
/// the app ask again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RequestClass {
    /// Registration and token refresh.
    Auth,
    /// The nightly GCA offload.
    Offload,
    /// Profile/place/route/contact syncs.
    Sync,
    /// Interactive queries (geolocation, analytics).
    Query,
}

impl RequestClass {
    /// Attempts before giving up (the per-class "timeout": one simulated
    /// send plus `max_attempts - 1` retries).
    fn max_attempts(self) -> u32 {
        match self {
            RequestClass::Auth => 3,
            RequestClass::Offload | RequestClass::Sync => 4,
            RequestClass::Query => 2,
        }
    }

    /// First backoff; doubles per retry up to [`RequestClass::max_backoff`].
    fn base_backoff(self) -> SimDuration {
        match self {
            RequestClass::Auth | RequestClass::Query => SimDuration::from_seconds(5),
            RequestClass::Sync => SimDuration::from_seconds(15),
            RequestClass::Offload => SimDuration::from_seconds(30),
        }
    }

    fn max_backoff(self) -> SimDuration {
        SimDuration::from_minutes(5)
    }
}

/// Transport-level failures worth retrying: 5xx (outage, injected errors,
/// synthetic timeouts) plus 429 (admission control shed the request — it
/// will be admitted once the token bucket refills) plus 421 (a federated
/// deployment moved this user's state to another instance; the federated
/// endpoint refreshes its topology before the retry is sent, so the retry
/// lands on the right instance). Other 4xx are the server telling us the
/// request itself is wrong — retrying cannot help.
fn retryable(status: u16) -> bool {
    status == STATUS_RATE_LIMITED || status == STATUS_MISDIRECTED || (500..=599).contains(&status)
}

/// Deterministic jitter in `[0, cap]` seconds, derived purely from the
/// request path, the attempt index, and the simulated send instant — no
/// wall clock, no shared RNG state, so concurrent clients stay replayable.
fn backoff_jitter(path: &str, attempt: u32, at: SimTime, cap: u64) -> SimDuration {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in path.bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= at.as_seconds().wrapping_mul(0x2545_f491_4f6c_dd1d);
    h ^= h >> 33;
    SimDuration::from_seconds(h % (cap + 1))
}

/// The durable part of a [`CloudClient`], serialized into a PMS
/// checkpoint so a rebooted device resumes with its auth and idempotency
/// state intact (losing the sequence counters would desynchronize the
/// server-side dedup watermarks).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ClientState {
    /// Registered user id.
    pub user: UserId,
    /// Current bearer token.
    pub token: String,
    /// When the token expires.
    pub token_expires: SimTime,
    /// Monotonic sync sequence (idempotency key for upserts/replacements).
    pub sync_seq: u64,
}

/// Bucket bounds (whole seconds) for the retry backoff histogram.
const BACKOFF_BOUNDS: [u64; 9] = [1, 2, 5, 10, 30, 60, 120, 300, 600];

/// Pre-resolved client metric handles; all no-ops until
/// [`CloudClient::set_obs`] binds a live registry, so the default client
/// costs nothing extra.
#[derive(Debug, Clone, Default)]
struct ClientMetrics {
    obs: Obs,
    wire_requests: Counter,
    retries: Counter,
    budget_denied: Counter,
    timeouts: Counter,
    rate_limited: Counter,
    backoff_seconds: Histogram,
}

impl ClientMetrics {
    fn resolve(obs: &Obs) -> ClientMetrics {
        let labels = [("user", obs.actor())];
        ClientMetrics {
            wire_requests: obs.counter("client_wire_requests_total", &labels),
            retries: obs.counter("client_retries_total", &labels),
            budget_denied: obs.counter("client_budget_denied_total", &labels),
            timeouts: obs.counter("client_timeouts_total", &labels),
            rate_limited: obs.counter("client_rate_limited_total", &labels),
            backoff_seconds: obs.histogram("client_backoff_seconds", &labels, &BACKOFF_BOUNDS),
            obs: obs.clone(),
        }
    }
}

/// A client bound to one registered device.
#[derive(Debug, Clone)]
pub struct CloudClient {
    endpoint: CloudEndpoint,
    user: UserId,
    token: String,
    token_expires: SimTime,
    /// Monotonic sequence stamped on profile/place/route syncs so the
    /// server can drop stale (reordered or duplicated) deliveries.
    sync_seq: u64,
    /// Remaining wire sends in the current maintenance pass, when capped.
    budget: Option<u32>,
    /// Requests actually put on the wire (including retries).
    wire_requests: u64,
    /// Retry attempts beyond each first send.
    retries: u64,
    /// 429 responses received from admission control.
    rate_limited: u64,
    /// When true (the default), a 429's `retry_after_s` hint schedules the
    /// retry to exactly when the server says the token bucket refills —
    /// no jitter needed, buckets are per-user so there is no cross-client
    /// contention to spread. When false, 429s fall back to the same blind
    /// exponential backoff as 5xx (the baseline for the rate-limit study).
    honor_retry_after: bool,
    /// Monotonic logical-operation counter: trace ids are
    /// `SpanSink::trace_id(actor, op_seq)`, a pure function of the
    /// workload. Transient — a restored client restarts at 0, which is
    /// fine because span collection is per-study, not per-checkpoint.
    op_seq: u64,
    metrics: ClientMetrics,
}

impl CloudClient {
    /// Registers a device with the cloud and returns a ready client
    /// (§2.2.1: one-time registration request retrieving an auth token).
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] when registration fails after retries.
    pub fn register(
        endpoint: impl Into<CloudEndpoint>,
        imei: &str,
        email: &str,
        now: SimTime,
    ) -> Result<CloudClient, PmsError> {
        let endpoint = endpoint.into();
        let mut client = CloudClient {
            endpoint,
            user: UserId(0),
            token: String::new(),
            token_expires: now,
            sync_seq: 0,
            budget: None,
            wire_requests: 0,
            retries: 0,
            rate_limited: 0,
            honor_retry_after: true,
            op_seq: 0,
            metrics: ClientMetrics::default(),
        };
        let request = Request::post(
            "/api/v1/registration",
            RegistrationBody {
                imei: imei.to_owned(),
                email: email.to_owned(),
            },
        );
        let response = client.send_with_retry(&request, now, RequestClass::Auth);
        let response = Self::check(&request, response)?;
        let (user, token, expires_at) = match response.body {
            Payload::Registered {
                user,
                token,
                expires_at,
            } => (user, token, expires_at),
            body => {
                #[derive(Deserialize)]
                struct Body {
                    user: UserId,
                    token: String,
                    expires_at: SimTime,
                }
                let body: Body = body.parse().map_err(|e| PmsError::Decode(e.to_string()))?;
                (body.user, body.token, body.expires_at)
            }
        };
        client.user = user;
        client.token = token;
        client.token_expires = expires_at;
        Ok(client)
    }

    /// Reconstructs a client from checkpointed state (device reboot): no
    /// registration round-trip, and the sequence counters continue where
    /// they left off.
    pub fn from_state(endpoint: impl Into<CloudEndpoint>, state: ClientState) -> CloudClient {
        CloudClient {
            endpoint: endpoint.into(),
            user: state.user,
            token: state.token,
            token_expires: state.token_expires,
            sync_seq: state.sync_seq,
            budget: None,
            wire_requests: 0,
            retries: 0,
            rate_limited: 0,
            honor_retry_after: true,
            op_seq: 0,
            metrics: ClientMetrics::default(),
        }
    }

    /// Binds retry/backoff/budget/timeout accounting (and trace events)
    /// to `obs`, carrying the totals recorded so far. The default client
    /// records nothing, so instrumentation is free until a study opts in.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.metrics = ClientMetrics::resolve(obs);
        self.metrics.wire_requests.set(self.wire_requests);
        self.metrics.retries.set(self.retries);
        self.metrics.rate_limited.set(self.rate_limited);
    }

    /// The durable state to checkpoint.
    pub fn state(&self) -> ClientState {
        ClientState {
            user: self.user,
            token: self.token.clone(),
            token_expires: self.token_expires,
            sync_seq: self.sync_seq,
        }
    }

    /// The registered user id.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Requests actually sent on the wire so far, retries included.
    pub fn wire_requests(&self) -> u64 {
        self.wire_requests
    }

    /// Retry attempts performed beyond first sends.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// 429 responses received from the cloud's admission controller.
    pub fn rate_limited(&self) -> u64 {
        self.rate_limited
    }

    /// Whether 429 `retry_after_s` hints steer the retry schedule
    /// (default: they do). Disable to fall back to blind exponential
    /// backoff — useful as the baseline in rate-limit experiments.
    pub fn set_honor_retry_after(&mut self, honor: bool) {
        self.honor_retry_after = honor;
    }

    /// Caps the number of wire sends until [`CloudClient::end_maintenance_pass`]:
    /// a maintenance pass on a bad link must not spin through unbounded
    /// retries. Once exhausted, calls fail immediately with a synthetic
    /// [`STATUS_BUDGET_EXHAUSTED`] cloud error and the work is retried at
    /// the next pass.
    pub fn begin_maintenance_pass(&mut self, budget: u32) {
        self.budget = Some(budget);
    }

    /// Lifts the maintenance request cap.
    pub fn end_maintenance_pass(&mut self) {
        self.budget = None;
    }

    /// Re-registers the device after its token was irrecoverably lost
    /// (e.g. it expired while the cloud was unreachable). Registration is
    /// idempotent per device identity, so the same user id comes back.
    /// The sync sequence continues — it identifies the client's stream,
    /// not the token.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] while the cloud stays unreachable.
    pub fn reregister(&mut self, imei: &str, email: &str, now: SimTime) -> Result<(), PmsError> {
        let fresh = CloudClient::register(self.endpoint.clone(), imei, email, now)?;
        self.op_seq += fresh.op_seq;
        self.wire_requests += fresh.wire_requests;
        self.retries += fresh.retries;
        self.rate_limited += fresh.rate_limited;
        self.metrics.wire_requests.add(fresh.wire_requests);
        self.metrics.retries.add(fresh.retries);
        self.metrics.rate_limited.add(fresh.rate_limited);
        self.user = fresh.user;
        self.token = fresh.token;
        self.token_expires = fresh.token_expires;
        Ok(())
    }

    /// When the current token expires.
    pub fn token_expires(&self) -> SimTime {
        self.token_expires
    }

    /// Refreshes the token when it is within `margin` of expiry
    /// ("refreshed periodically based on its expiry time", §2.2.1).
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] when the refresh is rejected.
    pub fn refresh_if_needed(
        &mut self,
        now: SimTime,
        margin: SimDuration,
    ) -> Result<bool, PmsError> {
        if now + margin < self.token_expires {
            return Ok(false);
        }
        let request =
            Request::post("/api/v1/token/refresh", Payload::Empty).with_token(&self.token);
        let response = self.send_with_retry(&request, now, RequestClass::Auth);
        let response = Self::check(&request, response)?;
        let (token, expires_at) = match response.body {
            Payload::TokenRefreshed { token, expires_at } => (token, expires_at),
            body => {
                #[derive(Deserialize)]
                struct Body {
                    token: String,
                    expires_at: SimTime,
                }
                let body: Body = body.parse().map_err(|e| PmsError::Decode(e.to_string()))?;
                (body.token, body.expires_at)
            }
        };
        self.token = token;
        self.token_expires = expires_at;
        Ok(true)
    }

    /// Offloads GCA place discovery to the cloud (§2.3.1) and returns the
    /// discovered places. `start` is the offset of `observations[0]` in
    /// the device's full GSM log — the idempotency key that lets the
    /// server skip already-absorbed prefixes when a retried or duplicated
    /// offload re-delivers them.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] / [`PmsError::Decode`] on failure.
    pub fn discover_places(
        &mut self,
        observations: &[GsmObservation],
        start: u64,
        now: SimTime,
    ) -> Result<Vec<DiscoveredPlace>, PmsError> {
        self.discover_request(
            DiscoverBody {
                observations: observations.to_vec(),
                batch: None,
                start: Some(start),
            },
            now,
        )
    }

    /// [`discover_places`](Self::discover_places) over the batched wire
    /// protocol: the suffix ships as one delta-compressed,
    /// dictionary-coded [`ObservationBatch`] instead of a plain array.
    /// The server decodes to the identical observation sequence, so the
    /// resulting cloud state (and reply) is byte-for-byte the same —
    /// only the wire spelling is smaller. `start` keeps its idempotency
    /// role unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] / [`PmsError::Decode`] on failure.
    pub fn discover_places_batched(
        &mut self,
        observations: &[GsmObservation],
        start: u64,
        now: SimTime,
    ) -> Result<Vec<DiscoveredPlace>, PmsError> {
        let batch = ObservationBatch::encode(observations);
        self.discover_request(
            DiscoverBody {
                observations: Vec::new(),
                batch: Some(batch),
                start: Some(start),
            },
            now,
        )
    }

    fn discover_request(
        &mut self,
        body: DiscoverBody,
        now: SimTime,
    ) -> Result<Vec<DiscoveredPlace>, PmsError> {
        let request = Request::post("/api/v1/places/discover", body).with_token(&self.token);
        let response = self.send_with_retry(&request, now, RequestClass::Offload);
        let response = Self::check(&request, response)?;
        match response.body {
            Payload::Discovered { places, .. } => Ok(places),
            body => {
                #[derive(Deserialize)]
                struct Body {
                    places: Vec<DiscoveredPlace>,
                }
                let body: Body = body.parse().map_err(|e| PmsError::Decode(e.to_string()))?;
                Ok(body.places)
            }
        }
    }

    /// Pushes the authoritative place list to the cloud. Stamped with the
    /// client's sync sequence so a reordered older snapshot can never
    /// clobber a newer one.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] on failure.
    pub fn sync_places(
        &mut self,
        places: &[DiscoveredPlace],
        now: SimTime,
    ) -> Result<(), PmsError> {
        let seq = self.next_seq();
        self.call_class(
            "/api/v1/places/sync",
            SyncPlacesBody {
                places: places.to_vec(),
                seq: Some(seq),
            },
            now,
            RequestClass::Sync,
        )?;
        Ok(())
    }

    /// Labels a place (§2.2.5 semantic labelling).
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] when the place is unknown server-side.
    pub fn label_place(
        &mut self,
        place: DiscoveredPlaceId,
        label: &str,
        now: SimTime,
    ) -> Result<(), PmsError> {
        self.call_class(
            "/api/v1/places/label",
            LabelBody {
                place,
                label: label.to_owned(),
            },
            now,
            RequestClass::Sync,
        )?;
        Ok(())
    }

    /// Syncs a day's mobility profile (§2.2.3). The sync sequence makes
    /// the upsert idempotent: duplicates and stale reorderings of the
    /// same day are acknowledged but not re-applied.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] on failure.
    pub fn sync_profile(
        &mut self,
        profile: &MobilityProfile,
        now: SimTime,
    ) -> Result<(), PmsError> {
        let seq = self.next_seq();
        self.call_class(
            "/api/v1/profiles/sync",
            SyncProfileBody {
                profile: profile.clone(),
                seq: Some(seq),
            },
            now,
            RequestClass::Sync,
        )?;
        Ok(())
    }

    /// Syncs the canonical route table.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] on failure.
    pub fn sync_routes(&mut self, routes: &[CanonicalRoute], now: SimTime) -> Result<(), PmsError> {
        let seq = self.next_seq();
        self.call_class(
            "/api/v1/routes/sync",
            SyncRoutesBody {
                routes: routes.to_vec(),
                seq: Some(seq),
            },
            now,
            RequestClass::Sync,
        )?;
        Ok(())
    }

    /// Syncs social contacts. `first_seq` is the stream offset of
    /// `contacts[0]` in the device's encounter stream; the server skips
    /// entries it already absorbed and the returned watermark tells the
    /// caller how far its buffer is acknowledged (and can be drained).
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] on failure.
    pub fn sync_contacts(
        &mut self,
        contacts: &[pmware_cloud::ContactEntry],
        first_seq: u64,
        now: SimTime,
    ) -> Result<u64, PmsError> {
        let response = self.call_class(
            "/api/v1/social/sync",
            SyncContactsBody {
                contacts: contacts.to_vec(),
                first_seq: Some(first_seq),
            },
            now,
            RequestClass::Sync,
        )?;
        match response.body {
            Payload::ContactsAck { acked_upto, .. } => Ok(acked_upto),
            body => {
                #[derive(Deserialize)]
                struct Body {
                    acked_upto: u64,
                }
                let body: Body = body.parse().map_err(|e| PmsError::Decode(e.to_string()))?;
                Ok(body.acked_upto)
            }
        }
    }

    /// Resolves a cell-set signature to approximate coordinates via the
    /// cloud's geolocation endpoint. Returns `None` when unknown.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] on transport-level failures (404 is
    /// mapped to `Ok(None)`).
    pub fn geolocate_signature(
        &mut self,
        cells: &[CellGlobalId],
        now: SimTime,
    ) -> Result<Option<GeoPoint>, PmsError> {
        let request = Request::post(
            "/api/v1/misc/geolocate_signature",
            GeolocateSignatureBody {
                cells: cells.to_vec(),
            },
        )
        .with_token(&self.token);
        let response = self.send_with_retry(&request, now, RequestClass::Query);
        if response.status == 404 {
            return Ok(None);
        }
        let response = Self::check(&request, response)?;
        let (latitude, longitude) = match response.body {
            Payload::Position {
                latitude,
                longitude,
            } => (latitude, longitude),
            body => {
                #[derive(Deserialize)]
                struct Body {
                    latitude: f64,
                    longitude: f64,
                }
                let body: Body = body.parse().map_err(|e| PmsError::Decode(e.to_string()))?;
                (body.latitude, body.longitude)
            }
        };
        GeoPoint::new(latitude, longitude)
            .map(Some)
            .map_err(|e| PmsError::Decode(e.to_string()))
    }

    /// Sends an arbitrary authenticated request — the escape hatch apps use
    /// for analytics queries (§2.3.2).
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] for non-2xx responses.
    pub fn call(
        &mut self,
        path: &str,
        body: serde_json::Value,
        now: SimTime,
    ) -> Result<JsonResponse, PmsError> {
        self.call_class(path, body, now, RequestClass::Query)
            .map(JsonResponse::from)
    }

    /// Sends an authenticated GET.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] for non-2xx responses.
    pub fn get(&mut self, path: &str, now: SimTime) -> Result<JsonResponse, PmsError> {
        let request = Request::get(path).with_token(&self.token);
        let response = self.send_with_retry(&request, now, RequestClass::Query);
        Self::check(&request, response).map(JsonResponse::from)
    }

    fn call_class(
        &mut self,
        path: &str,
        body: impl Into<Payload>,
        now: SimTime,
        class: RequestClass,
    ) -> Result<Response, PmsError> {
        let request = Request::post(path, body).with_token(&self.token);
        let response = self.send_with_retry(&request, now, class);
        Self::check(&request, response)
    }

    fn next_seq(&mut self) -> u64 {
        self.sync_seq += 1;
        self.sync_seq
    }

    /// One send consumes one unit of maintenance budget when a pass is
    /// active.
    fn take_budget(&mut self) -> bool {
        match &mut self.budget {
            None => true,
            Some(0) => false,
            Some(n) => {
                *n -= 1;
                true
            }
        }
    }

    /// The retrying send loop. The request travels to the endpoint as a
    /// typed value; a wire-boundary endpoint (the fault decorator) renders
    /// its JSON bytes lazily via [`Request::wire_bytes`], and because that
    /// cache lives on the request, every retry reuses the first encoding —
    /// a retried request is byte-for-byte identical to its first send, and
    /// the idempotency keys inside the body are what make retries safe.
    /// Retry waits advance a *virtual* send clock (`now` plus the
    /// accumulated backoff), so the whole schedule is a pure function of
    /// simulated time.
    ///
    /// When the bound [`Obs`] carries a span sink, every call here opens
    /// one root span (`op:<path>`) whose children are the individual
    /// attempts and backoff waits; each attempt's [`SpanCtx`] rides on
    /// the request, so server-side participants (fault injections,
    /// federation re-handshakes, failover replay) attach their own spans
    /// under it. All ids of one trace are allocated from this thread, in
    /// call order — the tree is schedule-independent.
    fn send_with_retry(
        &mut self,
        request: &Request,
        now: SimTime,
        class: RequestClass,
    ) -> Response {
        self.op_seq += 1;
        let span = self.metrics.obs.spans().cloned().map(|sink| {
            let trace = SpanSink::trace_id(self.metrics.obs.actor(), self.op_seq);
            let root = sink.alloc(trace);
            (sink, trace, root)
        });
        let op_name = format!("op:{}", request.path);
        let start_us = now.as_seconds().saturating_mul(1_000_000);
        let mut at = now;
        let mut backoff = class.base_backoff();
        let mut attempt = 0;
        loop {
            let at_us = at.as_seconds().saturating_mul(1_000_000);
            if !self.take_budget() {
                self.metrics.budget_denied.inc();
                self.metrics.obs.event(
                    at,
                    "client.budget_exhausted",
                    &[("path", FieldValue::from(request.path.as_str()))],
                );
                if let Some((sink, trace, root)) = &span {
                    sink.record(
                        *trace,
                        *root,
                        0,
                        &op_name,
                        start_us,
                        at_us,
                        &[
                            ("attempts", FieldValue::from(u64::from(attempt))),
                            (
                                "status",
                                FieldValue::from(u64::from(STATUS_BUDGET_EXHAUSTED)),
                            ),
                        ],
                    );
                }
                return Response::error(
                    STATUS_BUDGET_EXHAUSTED,
                    "maintenance request budget exhausted",
                );
            }
            self.wire_requests += 1;
            self.metrics.wire_requests.inc();
            let (response, end_us) = match &span {
                Some((sink, trace, root)) => {
                    let attempt_id = sink.alloc(*trace);
                    let tagged = request.clone().with_ctx(SpanCtx {
                        trace: *trace,
                        parent: attempt_id,
                    });
                    let response = self.endpoint.send(&tagged, at);
                    // The latency model's sub-second cost (queue + service
                    // µs) shows up only here; the client's sim-seconds
                    // retry clock never advances from it.
                    let end_us = at_us
                        + response
                            .latency_us()
                            .map_or(0, |(queue, service)| queue + service);
                    sink.record(
                        *trace,
                        attempt_id,
                        *root,
                        "attempt",
                        at_us,
                        end_us,
                        &[
                            ("attempt", FieldValue::from(u64::from(attempt))),
                            ("status", FieldValue::from(u64::from(response.status))),
                        ],
                    );
                    (response, end_us)
                }
                None => (self.endpoint.send(request, at), at_us),
            };
            if response.status == STATUS_TIMEOUT {
                self.metrics.timeouts.inc();
            }
            if response.status == STATUS_RATE_LIMITED {
                self.rate_limited += 1;
                self.metrics.rate_limited.inc();
            }
            if !retryable(response.status) || attempt + 1 >= class.max_attempts() {
                if let Some((sink, trace, root)) = &span {
                    sink.record(
                        *trace,
                        *root,
                        0,
                        &op_name,
                        start_us,
                        end_us,
                        &[
                            ("attempts", FieldValue::from(u64::from(attempt + 1))),
                            ("status", FieldValue::from(u64::from(response.status))),
                        ],
                    );
                }
                return response;
            }
            self.retries += 1;
            self.metrics.retries.inc();
            // A 429 carries the server's own refill horizon: waiting exactly
            // that long retries at the first admissible instant, with no
            // jitter (buckets are per-user, so there is no thundering herd
            // to spread). A guided wait does not advance the exponential
            // schedule either — the hint, not the attempt count, paces us.
            let hinted = if self.honor_retry_after {
                response.retry_after_s()
            } else {
                None
            };
            let wait = match hinted {
                Some(seconds) => SimDuration::from_seconds(seconds.max(1)),
                None => {
                    let jitter =
                        backoff_jitter(&request.path, attempt, at, backoff.as_seconds() / 2);
                    let wait = backoff + jitter;
                    backoff = SimDuration::from_seconds(
                        (backoff.as_seconds() * 2).min(class.max_backoff().as_seconds()),
                    );
                    wait
                }
            };
            self.metrics.backoff_seconds.observe(wait.as_seconds());
            self.metrics.obs.event(
                at,
                "client.retry",
                &[
                    ("path", FieldValue::from(request.path.as_str())),
                    ("attempt", FieldValue::from(u64::from(attempt))),
                    ("status", FieldValue::from(u64::from(response.status))),
                    ("wait_s", FieldValue::from(wait.as_seconds())),
                ],
            );
            if let Some((sink, trace, root)) = &span {
                let wake_us = (at + wait).as_seconds().saturating_mul(1_000_000);
                let backoff_id = sink.alloc(*trace);
                sink.record(
                    *trace,
                    backoff_id,
                    *root,
                    "backoff",
                    end_us,
                    wake_us,
                    &[("wait_s", FieldValue::from(wait.as_seconds()))],
                );
            }
            at += wait;
            attempt += 1;
        }
    }

    fn check(request: &Request, response: Response) -> Result<Response, PmsError> {
        if response.is_success() {
            Ok(response)
        } else {
            Err(PmsError::Cloud {
                path: request.path.clone(),
                status: response.status,
                message: response
                    .error_message()
                    .unwrap_or("unknown error")
                    .to_owned(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_cloud::{
        AdmissionConfig, CellDatabase, CloudInstance, FaultKind, FaultPlan, FaultyCloud,
        RateBudget, SharedCloud,
    };

    fn cloud() -> SharedCloud {
        SharedCloud::new(CloudInstance::new(CellDatabase::new(), 5))
    }

    #[test]
    fn register_and_basic_flow() {
        let cloud = cloud();
        let mut client =
            CloudClient::register(cloud.clone(), "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        assert_eq!(cloud.user_count(), 1);
        // Sync an empty place list.
        client.sync_places(&[], SimTime::EPOCH).unwrap();
        // Fetch them back through the raw GET.
        let resp = client.get("/api/v1/places", SimTime::EPOCH).unwrap();
        assert_eq!(resp.body["places"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn refresh_only_when_near_expiry() {
        let cloud = cloud();
        let mut client = CloudClient::register(cloud, "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        // Far from expiry: no refresh.
        let refreshed = client
            .refresh_if_needed(SimTime::EPOCH, SimDuration::from_hours(2))
            .unwrap();
        assert!(!refreshed);
        // Near expiry: refresh happens and extends the horizon.
        let near = SimTime::EPOCH + SimDuration::from_hours(23);
        let old_expiry = client.token_expires();
        let refreshed = client
            .refresh_if_needed(near, SimDuration::from_hours(2))
            .unwrap();
        assert!(refreshed);
        assert!(client.token_expires() > old_expiry);
    }

    #[test]
    fn expired_token_surfaces_cloud_error() {
        let cloud = cloud();
        let mut client = CloudClient::register(cloud, "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        let long_after = SimTime::EPOCH + SimDuration::from_days(3);
        let err = client.sync_places(&[], long_after).unwrap_err();
        match err {
            PmsError::Cloud { status, .. } => assert_eq!(status, 401),
            other => panic!("expected cloud error, got {other}"),
        }
    }

    #[test]
    fn label_unknown_place_is_cloud_404() {
        let cloud = cloud();
        let mut client = CloudClient::register(cloud, "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        let err = client
            .label_place(DiscoveredPlaceId(9), "Home", SimTime::EPOCH)
            .unwrap_err();
        match err {
            PmsError::Cloud { status, .. } => assert_eq!(status, 404),
            other => panic!("expected cloud error, got {other}"),
        }
    }

    #[test]
    fn geolocate_unknown_signature_is_none() {
        let cloud = cloud();
        let mut client = CloudClient::register(cloud, "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        let got = client.geolocate_signature(&[], SimTime::EPOCH).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn retries_ride_out_transient_drops() {
        // Drop the first two sync deliveries: attempts 1 and 2 time out,
        // attempt 3 lands. The caller never notices.
        let faulty = FaultyCloud::new(
            cloud(),
            FaultPlan::with_schedule(1, vec![(0, FaultKind::Drop), (1, FaultKind::Drop)])
                .only_path("/places/sync"),
        );
        let mut client =
            CloudClient::register(faulty.clone(), "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        client.sync_places(&[], SimTime::EPOCH).unwrap();
        assert_eq!(client.retries(), 2);
        assert_eq!(faulty.stats().drops, 2);
    }

    #[test]
    fn persistent_failure_surfaces_after_max_attempts() {
        let faulty = FaultyCloud::new(
            cloud(),
            FaultPlan::with_rate(1, 1.0)
                .kinds(&[FaultKind::Error])
                .only_path("/places/sync"),
        );
        let mut client =
            CloudClient::register(faulty.clone(), "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        let err = client.sync_places(&[], SimTime::EPOCH).unwrap_err();
        match err {
            PmsError::Cloud { status, .. } => {
                assert_eq!(status, pmware_cloud::STATUS_INJECTED_ERROR);
            }
            other => panic!("expected cloud error, got {other}"),
        }
        // Sync class: 4 attempts were made, no more.
        assert_eq!(faulty.stats().errors, 4);
    }

    #[test]
    fn maintenance_budget_stops_the_spend() {
        let faulty = FaultyCloud::new(
            cloud(),
            FaultPlan::with_rate(1, 1.0)
                .kinds(&[FaultKind::Drop])
                .only_path("/places/sync"),
        );
        let mut client =
            CloudClient::register(faulty.clone(), "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        client.begin_maintenance_pass(2);
        let err = client.sync_places(&[], SimTime::EPOCH).unwrap_err();
        match err {
            PmsError::Cloud { status, .. } => assert_eq!(status, STATUS_BUDGET_EXHAUSTED),
            other => panic!("expected budget exhaustion, got {other}"),
        }
        assert_eq!(
            faulty.stats().drops,
            2,
            "only the budgeted sends hit the wire"
        );
        // Further calls fail immediately without touching the wire.
        let before = client.wire_requests();
        assert!(client.sync_places(&[], SimTime::EPOCH).is_err());
        assert_eq!(client.wire_requests(), before);
        // The next pass gets a fresh budget.
        client.end_maintenance_pass();
        faulty.set_enabled(false);
        client.sync_places(&[], SimTime::EPOCH).unwrap();
    }

    #[test]
    fn client_state_round_trips_through_serde() {
        let cloud = cloud();
        let mut client =
            CloudClient::register(cloud.clone(), "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        client.sync_places(&[], SimTime::EPOCH).unwrap();
        let state = client.state();
        let json = serde_json::to_string(&state).unwrap();
        let back: ClientState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        // The restored client keeps talking with the same token and
        // continues the sequence stream.
        let mut restored = CloudClient::from_state(cloud, back);
        restored.sync_places(&[], SimTime::EPOCH).unwrap();
        assert_eq!(restored.state().sync_seq, state.sync_seq + 1);
    }

    #[test]
    fn expired_token_401_then_reregister_recovers() {
        let cloud = cloud();
        let mut client =
            CloudClient::register(cloud.clone(), "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        let user = client.user();
        client.sync_places(&[], SimTime::EPOCH).unwrap();
        // Long after expiry every authenticated call 401s — including the
        // refresh, which cannot resurrect a dead token.
        let late = SimTime::EPOCH + SimDuration::from_days(3);
        let err = client
            .refresh_if_needed(late, SimDuration::from_hours(2))
            .unwrap_err();
        match err {
            PmsError::Cloud { status, .. } => assert_eq!(status, 401),
            other => panic!("expected 401, got {other}"),
        }
        // Re-registration is idempotent per device identity: the same
        // user comes back and the sequence stream continues.
        client.reregister("imei-1", "a@x.com", late).unwrap();
        assert_eq!(client.user(), user);
        client.sync_places(&[], late).unwrap();
        assert_eq!(client.state().sync_seq, 2);
    }

    #[test]
    fn refresh_under_admission_pressure_converges() {
        let cloud = cloud();
        let mut client =
            CloudClient::register(cloud.clone(), "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        // One Auth token per 30 s; registration is public so the initial
        // register did not spend it.
        cloud.set_admission(Some(AdmissionConfig::uniform(
            11,
            RateBudget::new(1, SimDuration::from_seconds(30)),
        )));
        // An enormous margin forces a refresh on every call. The first
        // takes the only Auth token; the second is denied and converges
        // via the retry-after hint.
        let margin = SimDuration::from_days(30);
        assert!(client.refresh_if_needed(SimTime::EPOCH, margin).unwrap());
        let expires_before = client.token_expires();
        assert!(client.refresh_if_needed(SimTime::EPOCH, margin).unwrap());
        assert!(client.token_expires() >= expires_before);
        assert!(
            client.rate_limited() >= 1,
            "second refresh was throttled first"
        );
    }

    #[test]
    fn rate_limit_hint_guides_the_retry_to_the_refill_instant() {
        let cloud = cloud();
        let mut client =
            CloudClient::register(cloud.clone(), "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        // One token, refilling every 10 minutes: far beyond what blind
        // exponential backoff could ride out within the Sync attempt
        // budget, but trivial when the hint is honored.
        cloud.set_admission(Some(AdmissionConfig::uniform(
            7,
            RateBudget::new(1, SimDuration::from_minutes(10)),
        )));
        client.sync_places(&[], SimTime::EPOCH).unwrap();
        let before = client.wire_requests();
        client.sync_places(&[], SimTime::EPOCH).unwrap();
        // Exactly one 429 and one guided retry — no probing in between.
        assert_eq!(client.wire_requests() - before, 2);
        assert_eq!(client.rate_limited(), 1);
    }

    #[test]
    fn blind_backoff_exhausts_attempts_against_a_long_refill() {
        let cloud = cloud();
        let mut client =
            CloudClient::register(cloud.clone(), "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
        client.set_honor_retry_after(false);
        cloud.set_admission(Some(AdmissionConfig::uniform(
            7,
            RateBudget::new(1, SimDuration::from_minutes(10)),
        )));
        client.sync_places(&[], SimTime::EPOCH).unwrap();
        let err = client.sync_places(&[], SimTime::EPOCH).unwrap_err();
        match err {
            PmsError::Cloud { status, .. } => {
                assert_eq!(status, pmware_cloud::STATUS_RATE_LIMITED);
            }
            other => panic!("expected rate-limit error, got {other}"),
        }
        // All four Sync attempts burned against a bucket that never
        // refilled within the backoff horizon.
        assert_eq!(client.rate_limited(), 4);
    }

    /// One logical operation through two injected drops produces a full
    /// causal tree — root op span, three attempts, two backoff waits, and
    /// the server-side fault spans — and the export is byte-identical
    /// across runs of the same seed.
    #[test]
    fn spans_cover_retries_faults_and_are_deterministic() {
        let run = || {
            let obs = Obs::disabled().with_spans();
            let faulty = FaultyCloud::new(
                cloud(),
                FaultPlan::with_schedule(1, vec![(0, FaultKind::Drop), (1, FaultKind::Drop)])
                    .only_path("/places/sync"),
            );
            faulty.set_obs(&obs.for_actor("cloud"));
            let mut client =
                CloudClient::register(faulty.clone(), "imei-1", "a@x.com", SimTime::EPOCH).unwrap();
            client.set_obs(&obs.for_actor("p0001"));
            client.sync_places(&[], SimTime::EPOCH).unwrap();
            obs.spans_jsonl().unwrap()
        };
        let jsonl = run();
        assert!(
            jsonl.contains("\"name\":\"op:/api/v1/places/sync\""),
            "{jsonl}"
        );
        assert!(jsonl.contains("\"name\":\"attempt\""), "{jsonl}");
        assert!(jsonl.contains("\"name\":\"backoff\""), "{jsonl}");
        assert!(jsonl.contains("\"name\":\"fault:drop\""), "{jsonl}");
        assert_eq!(
            jsonl.lines().count(),
            8,
            "1 root + 3 attempts + 2 backoffs + 2 faults:\n{jsonl}"
        );
        assert_eq!(jsonl, run(), "same seed, same bytes");
    }

    /// Federation control-plane work joins the trace: a failover-displaced
    /// client's next call records a `rehandshake` child, and the WAL
    /// replay driven by the failover records `replay` children under the
    /// operation that originally sent each replayed request.
    #[test]
    fn federated_rehandshake_and_wal_replay_record_spans() {
        use pmware_cloud::topology::{BalancePolicy, TopologyRouter};
        let obs = Obs::disabled().with_spans();
        let router = TopologyRouter::new(BalancePolicy::RoundRobin);
        for i in 0..2 {
            router.add_instance(SharedCloud::new(CloudInstance::new(
                CellDatabase::new(),
                40 + i,
            )));
        }
        router.set_obs(&obs);
        let mut client =
            CloudClient::register(router.endpoint(), "imei-9", "f@x.com", SimTime::EPOCH).unwrap();
        client.set_obs(&obs.for_actor("p0009"));
        client.sync_places(&[], SimTime::EPOCH).unwrap();
        let home = router.instance_of("imei-9", "f@x.com").unwrap();
        router.kill_instance(home);
        let later = SimTime::EPOCH + SimDuration::from_hours(1);
        let report = router.fail_over(later);
        assert!(report.replayed >= 1, "{report:?}");
        // The displaced client's next call re-handshakes transparently.
        client.sync_places(&[], later).unwrap();
        let jsonl = obs.spans_jsonl().unwrap();
        assert!(jsonl.contains("\"name\":\"replay\""), "{jsonl}");
        assert!(jsonl.contains("\"name\":\"rehandshake\""), "{jsonl}");
        assert_eq!(client.retries(), 0, "the federation seam hid the move");
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_capped() {
        let a = backoff_jitter("/api/v1/places/sync", 1, SimTime::from_seconds(60), 15);
        let b = backoff_jitter("/api/v1/places/sync", 1, SimTime::from_seconds(60), 15);
        assert_eq!(a, b);
        for attempt in 0..8 {
            for t in [0u64, 60, 3600] {
                let j = backoff_jitter("/p", attempt, SimTime::from_seconds(t), 15);
                assert!(j.as_seconds() <= 15);
            }
        }
    }
}
