//! The inference engine (§2.2.2).
//!
//! *"This module is responsible for data collection from different location
//! interfaces and inferring high level location attributes (i.e. places,
//! routes) from the data."*
//!
//! The engine buffers every raw observation for offload, feeds each GSM
//! sample into a persistent [`IncrementalGca`] (so the local fallback is
//! O(new data), not O(history)), runs the online SensLoc detector over
//! WiFi scans, and — once place signatures exist — tracks arrivals and
//! departures with the debounced [`CellPlaceTracker`].

use pmware_algorithms::gca::{
    CellPlaceTracker, GcaConfig, GcaOutput, IncrementalGca, PlaceEvent, TrackerSnapshot,
};
use pmware_algorithms::sensloc::{SensLocConfig, SensLocDetector, WifiPlaceEvent};
use pmware_algorithms::signature::DiscoveredPlace;
use pmware_world::{GpsFix, GsmObservation, WifiScan};
use serde::{Deserialize, Serialize};

/// Inference parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceConfig {
    /// GCA parameters (used for the local fallback when the cloud is
    /// unreachable; the cloud uses its own copy).
    pub gca: GcaConfig,
    /// SensLoc parameters for opportunistic WiFi discovery.
    pub sensloc: SensLocConfig,
    /// Consecutive in-place samples to confirm an arrival.
    pub confirm_in: u32,
    /// Consecutive out-of-place samples to confirm a departure.
    pub confirm_out: u32,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            gca: GcaConfig::default(),
            sensloc: SensLocConfig::default(),
            confirm_in: 2,
            confirm_out: 4,
        }
    }
}

/// The engine.
#[derive(Debug)]
pub struct InferenceEngine {
    config: InferenceConfig,
    gsm_log: Vec<GsmObservation>,
    gps_log: Vec<GpsFix>,
    gca: IncrementalGca,
    wifi: SensLocDetector,
    tracker: Option<CellPlaceTracker>,
}

impl InferenceEngine {
    /// Creates an engine.
    pub fn new(config: InferenceConfig) -> Self {
        let wifi = SensLocDetector::new(config.sensloc.clone());
        let gca = IncrementalGca::new(config.gca.clone());
        InferenceEngine {
            config,
            gsm_log: Vec::new(),
            gps_log: Vec::new(),
            gca,
            wifi,
            tracker: None,
        }
    }

    /// Feeds one GSM observation; returns confirmed place events (empty
    /// until signatures have been discovered and the tracker rebuilt).
    pub fn on_gsm(&mut self, obs: GsmObservation) -> Vec<PlaceEvent> {
        self.gsm_log.push(obs);
        self.gca.absorb(std::slice::from_ref(&obs));
        match &mut self.tracker {
            Some(tracker) => tracker.update(&obs),
            None => Vec::new(),
        }
    }

    /// Feeds one WiFi scan into the online SensLoc detector.
    pub fn on_wifi(&mut self, scan: &WifiScan) -> Vec<WifiPlaceEvent> {
        self.wifi.update(scan)
    }

    /// Buffers one GPS fix (route tracing and arrival pinpointing).
    pub fn on_gps(&mut self, fix: GpsFix) {
        self.gps_log.push(fix);
    }

    /// The full GSM log (what gets offloaded to the cloud).
    pub fn gsm_log(&self) -> &[GsmObservation] {
        &self.gsm_log
    }

    /// The full GPS log.
    pub fn gps_log(&self) -> &[GpsFix] {
        &self.gps_log
    }

    /// Places found so far by the WiFi detector.
    pub fn wifi_places(&self) -> &[DiscoveredPlace] {
        self.wifi.places()
    }

    /// Local GCA fallback (§2.3.1 notes discovery is normally offloaded;
    /// this runs when the cloud is unreachable). The view comes from the
    /// persistent incremental engine, so the cost is proportional to the
    /// place/run counts — not to the length of the buffered log.
    pub fn local_discover(&self) -> GcaOutput {
        self.gca.places()
    }

    /// Rebuilds the online tracker over freshly discovered signatures.
    pub fn rebuild_tracker(&mut self, places: &[DiscoveredPlace]) {
        self.tracker = Some(CellPlaceTracker::new(
            places,
            self.config.confirm_in,
            self.config.confirm_out,
        ));
    }

    /// Whether the tracker currently places the user somewhere.
    pub fn tracked_place(&self) -> Option<pmware_algorithms::signature::DiscoveredPlaceId> {
        self.tracker.as_ref().and_then(|t| t.current_place())
    }

    /// Captures the engine's durable state for a device checkpoint. The
    /// incremental GCA engine is deliberately *not* serialized: its state
    /// is a pure function of the absorbed log, so restore replays the log
    /// instead of shipping the (much larger, map-keyed) graph.
    pub fn snapshot(&self) -> InferenceSnapshot {
        InferenceSnapshot {
            gsm_log: self.gsm_log.clone(),
            gps_log: self.gps_log.clone(),
            wifi: self.wifi.clone(),
            tracker: self.tracker.as_ref().map(CellPlaceTracker::snapshot),
        }
    }

    /// Rebuilds an engine from a snapshot. `known` must be the same place
    /// list the tracker was last rebuilt over (the registry's live places)
    /// — the cell→place index is reconstructed from it, then the
    /// snapshot's in-flight debounce state is restored on top.
    pub fn restore(
        config: InferenceConfig,
        snapshot: InferenceSnapshot,
        known: &[DiscoveredPlace],
    ) -> Self {
        let mut gca = IncrementalGca::new(config.gca.clone());
        gca.absorb(&snapshot.gsm_log);
        let tracker = snapshot.tracker.map(|state| {
            CellPlaceTracker::from_snapshot(known, config.confirm_in, config.confirm_out, state)
        });
        InferenceEngine {
            config,
            gsm_log: snapshot.gsm_log,
            gps_log: snapshot.gps_log,
            gca,
            wifi: snapshot.wifi,
            tracker,
        }
    }
}

/// The serializable state of an [`InferenceEngine`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceSnapshot {
    gsm_log: Vec<GsmObservation>,
    gps_log: Vec<GpsFix>,
    wifi: SensLocDetector,
    tracker: Option<TrackerSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_world::tower::NetworkLayer;
    use pmware_world::{CellGlobalId, CellId, Lac, Plmn, SimTime};

    fn cell(id: u32) -> CellGlobalId {
        CellGlobalId {
            plmn: Plmn { mcc: 404, mnc: 45 },
            lac: Lac(1),
            cell: CellId(id),
        }
    }

    fn obs(minute: u64, c: CellGlobalId) -> GsmObservation {
        GsmObservation {
            time: SimTime::from_seconds(minute * 60),
            cell: c,
            layer: NetworkLayer::G2,
            rssi_dbm: -70.0,
        }
    }

    #[test]
    fn no_events_before_signatures_exist() {
        let mut engine = InferenceEngine::new(InferenceConfig::default());
        for m in 0..30 {
            let events = engine.on_gsm(obs(m, if m % 2 == 0 { cell(1) } else { cell(2) }));
            assert!(events.is_empty());
        }
        assert_eq!(engine.gsm_log().len(), 30);
        assert_eq!(engine.tracked_place(), None);
    }

    #[test]
    fn local_discover_then_track() {
        let mut engine = InferenceEngine::new(InferenceConfig::default());
        // A 40-minute oscillating stay builds the log.
        for m in 0..40 {
            let _ = engine.on_gsm(obs(m, if m % 3 == 1 { cell(2) } else { cell(1) }));
        }
        let out = engine.local_discover();
        assert_eq!(out.places.len(), 1);
        engine.rebuild_tracker(&out.places);
        // Continue the stay: the tracker confirms an arrival.
        let mut arrivals = 0;
        for m in 40..45 {
            for e in engine.on_gsm(obs(m, cell(1))) {
                if matches!(e, PlaceEvent::Arrival { .. }) {
                    arrivals += 1;
                }
            }
        }
        assert_eq!(arrivals, 1);
        assert!(engine.tracked_place().is_some());
    }

    #[test]
    fn gps_log_accumulates() {
        let mut engine = InferenceEngine::new(InferenceConfig::default());
        engine.on_gps(GpsFix {
            time: SimTime::EPOCH,
            position: pmware_geo::GeoPoint::new(1.0, 2.0).unwrap(),
            accuracy: pmware_geo::Meters::new(5.0),
        });
        assert_eq!(engine.gps_log().len(), 1);
    }
}
