//! Day-specific mobility-profile assembly (§2.2.3).
//!
//! *"It takes the output of place inference module and subsequently builds
//! mobility profile for a given day \[…\] This module has the
//! responsibility to sync the profile on the cloud instance."*
//!
//! The builder receives arrival/departure/route/contact/motion callbacks
//! from the PMS event loop and cuts them into per-day [`MobilityProfile`]s,
//! splitting stays that cross midnight. Days are held open until they can
//! no longer change: a stay that began on day *N* and is still open pins
//! day *N* (its midnight-split entries do not exist yet), so
//! [`take_completed_before`](ProfileBuilder::take_completed_before) ships a
//! day only once every stay touching it has closed — shipping earlier and
//! re-syncing later would overwrite the cloud's copy with a fragment.

use std::collections::BTreeMap;

use pmware_algorithms::route::RouteId;
use pmware_algorithms::signature::DiscoveredPlaceId;
use pmware_cloud::{ContactEntry, MobilityProfile, PlaceEntry, RouteEntry};
use pmware_world::time::DAY;
use pmware_world::SimTime;
use serde::{Deserialize, Serialize};

/// Accumulates per-day profiles.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProfileBuilder {
    days: BTreeMap<u64, MobilityProfile>,
    open_place: Option<(DiscoveredPlaceId, SimTime)>,
    /// Days already handed out by `take_completed_before` (never recreate).
    shipped_below: u64,
}

impl ProfileBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ProfileBuilder::default()
    }

    fn profile_for(&mut self, day: u64) -> &mut MobilityProfile {
        self.days
            .entry(day)
            .or_insert_with(|| MobilityProfile::new(day))
    }

    /// Records an arrival at a place.
    pub fn on_arrival(&mut self, place: DiscoveredPlaceId, time: SimTime) {
        // Close any dangling open stay defensively.
        if self.open_place.is_some() {
            self.on_departure(time);
        }
        self.open_place = Some((place, time));
    }

    /// Records the departure from the currently-open place, splitting the
    /// stay at midnight boundaries. No-op when no stay is open.
    pub fn on_departure(&mut self, time: SimTime) {
        let Some((place, arrival)) = self.open_place.take() else {
            return;
        };
        let mut start = arrival;
        while start < time {
            let day = start.day();
            let day_end = SimTime::from_seconds((day + 1) * DAY);
            let end = time.min(day_end);
            self.profile_for(day).places.push(PlaceEntry {
                place,
                arrival: start,
                departure: end,
            });
            start = end;
        }
        if arrival == time {
            // Zero-length stay still counts as a touch on that day.
            self.profile_for(arrival.day()).places.push(PlaceEntry {
                place,
                arrival,
                departure: time,
            });
        }
    }

    /// The currently open stay, if any.
    pub fn open_place(&self) -> Option<(DiscoveredPlaceId, SimTime)> {
        self.open_place
    }

    /// Records a completed route traversal.
    pub fn on_route(&mut self, route: RouteId, start: SimTime, end: SimTime) {
        self.profile_for(start.day())
            .routes
            .push(RouteEntry { route, start, end });
    }

    /// Records a social encounter.
    pub fn on_contact(
        &mut self,
        contact: impl Into<String>,
        start: SimTime,
        end: SimTime,
        place: Option<DiscoveredPlaceId>,
    ) {
        self.profile_for(start.day()).contacts.push(ContactEntry {
            contact: contact.into(),
            start,
            end,
            place,
        });
    }

    /// Accounts one classified motion window toward the day's activity
    /// summary (the §6 activity-tracking extension).
    pub fn on_motion(&mut self, time: SimTime, window: pmware_world::SimDuration, moving: bool) {
        let activity = &mut self.profile_for(time.day()).activity;
        if moving {
            activity.moving_seconds += window.as_seconds();
        } else {
            activity.stationary_seconds += window.as_seconds();
        }
    }

    /// Takes every profile that is *final* for days strictly before `day`,
    /// in day order. A day is final once no open stay can still add
    /// entries to it; an open stay pins its arrival day and everything
    /// after. Taken days are never recreated — callers own them.
    pub fn take_completed_before(&mut self, day: u64) -> Vec<MobilityProfile> {
        let limit = match self.open_place {
            Some((_, arrival)) => day.min(arrival.day()),
            None => day,
        };
        let rest = self.days.split_off(&limit);
        let done = std::mem::replace(&mut self.days, rest);
        self.shipped_below = self.shipped_below.max(limit);
        done.into_values().collect()
    }

    /// Flushes everything (end of study): closes any open stay at `now`
    /// and returns all remaining profiles in day order.
    pub fn finish(&mut self, now: SimTime) -> Vec<MobilityProfile> {
        self.on_departure(now);
        std::mem::take(&mut self.days).into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(day: u64, hour: u64, minute: u64) -> SimTime {
        SimTime::from_day_time(day, hour, minute, 0)
    }

    #[test]
    fn simple_day_of_visits() {
        let mut b = ProfileBuilder::new();
        b.on_arrival(DiscoveredPlaceId(0), t(0, 0, 0));
        b.on_departure(t(0, 8, 30));
        b.on_route(RouteId(0), t(0, 8, 30), t(0, 9, 0));
        b.on_arrival(DiscoveredPlaceId(1), t(0, 9, 0));
        b.on_departure(t(0, 17, 0));
        let profiles = b.finish(t(0, 17, 0));
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.day, 0);
        assert_eq!(p.places.len(), 2);
        assert_eq!(p.routes.len(), 1);
        assert_eq!(p.places[0].place, DiscoveredPlaceId(0));
        assert_eq!(p.places[1].departure, t(0, 17, 0));
    }

    #[test]
    fn overnight_stay_is_split_at_midnight() {
        let mut b = ProfileBuilder::new();
        b.on_arrival(DiscoveredPlaceId(0), t(0, 20, 0));
        b.on_departure(t(1, 8, 0));
        let profiles = b.finish(t(1, 8, 0));
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].places.len(), 1);
        assert_eq!(profiles[0].places[0].departure, t(1, 0, 0));
        assert_eq!(profiles[1].places[0].arrival, t(1, 0, 0));
        assert_eq!(profiles[1].places[0].departure, t(1, 8, 0));
    }

    #[test]
    fn multi_day_stay_produces_one_entry_per_day() {
        let mut b = ProfileBuilder::new();
        b.on_arrival(DiscoveredPlaceId(0), t(0, 12, 0));
        b.on_departure(t(3, 12, 0));
        let profiles = b.finish(t(3, 12, 0));
        assert_eq!(profiles.len(), 4);
        for p in &profiles {
            assert_eq!(p.places.len(), 1);
        }
    }

    #[test]
    fn open_overnight_stay_pins_its_arrival_day() {
        let mut b = ProfileBuilder::new();
        // Day 0 visits, then an overnight stay starting at 20:00.
        b.on_arrival(DiscoveredPlaceId(1), t(0, 9, 0));
        b.on_departure(t(0, 17, 0));
        b.on_arrival(DiscoveredPlaceId(0), t(0, 20, 0));
        // It is now day 1, 03:00 (the maintenance pass): day 0 is NOT
        // final — the open stay will still add its 20:00–24:00 entry.
        assert!(b.take_completed_before(1).is_empty());
        // The stay departs at day 1, 08:00 → day 0 becomes final with
        // both entries intact.
        b.on_departure(t(1, 8, 0));
        b.on_arrival(DiscoveredPlaceId(1), t(1, 9, 0));
        let done = b.take_completed_before(2);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].day, 0);
        assert_eq!(done[0].places.len(), 2, "work + evening-home entries");
        // Day 1 ships later with the morning-home slice and the new work
        // stay.
        b.on_departure(t(1, 17, 0));
        let rest = b.finish(t(1, 17, 0));
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].day, 1);
        assert_eq!(rest[0].places.len(), 2, "morning-home slice + work");
    }

    #[test]
    fn shipped_days_are_never_recreated_by_late_events() {
        let mut b = ProfileBuilder::new();
        b.on_arrival(DiscoveredPlaceId(0), t(0, 9, 0));
        b.on_departure(t(0, 10, 0));
        let done = b.take_completed_before(1);
        assert_eq!(done.len(), 1);
        // Pathological late event for day 0 would create a fragment; the
        // builder accepts it (at-least-once upstream) but a normal flow
        // never produces one because open stays pin their days.
        assert!(b.take_completed_before(1).is_empty());
    }

    #[test]
    fn take_completed_before_returns_only_final_days() {
        let mut b = ProfileBuilder::new();
        b.on_arrival(DiscoveredPlaceId(0), t(0, 9, 0));
        b.on_departure(t(0, 17, 0));
        b.on_arrival(DiscoveredPlaceId(1), t(1, 9, 0));
        b.on_departure(t(1, 10, 0));
        // At day-1 processing with nothing open: day 0 is final.
        let done = b.take_completed_before(1);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].day, 0);
        let done = b.take_completed_before(1);
        assert!(done.is_empty());
        let rest = b.finish(t(1, 10, 0));
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].day, 1);
    }

    #[test]
    fn arrival_without_departure_is_closed_by_next_arrival() {
        let mut b = ProfileBuilder::new();
        b.on_arrival(DiscoveredPlaceId(0), t(0, 9, 0));
        // Missing departure event (tracker glitch): next arrival closes it.
        b.on_arrival(DiscoveredPlaceId(1), t(0, 12, 0));
        b.on_departure(t(0, 13, 0));
        let profiles = b.finish(t(0, 13, 0));
        assert_eq!(profiles[0].places.len(), 2);
        assert_eq!(profiles[0].places[0].departure, t(0, 12, 0));
    }

    #[test]
    fn contacts_and_motion_recorded() {
        let mut b = ProfileBuilder::new();
        b.on_contact(
            "peer-3",
            t(0, 10, 0),
            t(0, 11, 0),
            Some(DiscoveredPlaceId(1)),
        );
        b.on_motion(
            t(0, 10, 0),
            pmware_world::SimDuration::from_minutes(1),
            true,
        );
        b.on_motion(
            t(0, 10, 1),
            pmware_world::SimDuration::from_minutes(1),
            false,
        );
        let profiles = b.finish(t(0, 12, 0));
        assert_eq!(profiles[0].contacts.len(), 1);
        assert_eq!(profiles[0].contacts[0].contact, "peer-3");
        assert_eq!(profiles[0].activity.moving_seconds, 60);
        assert_eq!(profiles[0].activity.stationary_seconds, 60);
    }

    #[test]
    fn departure_without_arrival_is_noop() {
        let mut b = ProfileBuilder::new();
        b.on_departure(t(0, 5, 0));
        assert!(b.finish(t(0, 6, 0)).is_empty());
    }
}
