//! The PMWare Mobile Service orchestrator.
//!
//! *"There is only one instance of PMS running which can be used by
//! multiple connected third party applications, thereby eliminating sensing
//! and processing redundancy."* (§2.2)
//!
//! [`PmwareMobileService::run`] advances simulated time tick by tick:
//! the triggered-sensing scheduler decides what to sample, the sensors pay
//! energy, the inference engine turns observations into place events,
//! events flow to connected apps as intents (coarsened per the user's
//! privacy preferences), routes are extracted between stays, profiles are
//! cut per day, and a nightly maintenance pass offloads GCA to the cloud,
//! reconciles the place registry, and syncs everything (§2.2.2–§2.2.5).

use std::collections::{BTreeMap, HashMap};

use crossbeam::channel::Receiver;
use pmware_algorithms::gca::PlaceEvent;
use pmware_algorithms::route::{cell_route, gps_route, RouteObservation, RouteStore};
use pmware_algorithms::sensloc::WifiPlaceEvent;
use pmware_algorithms::signature::{DiscoveredPlace, DiscoveredPlaceId, PlaceSignature};
use pmware_cloud::CloudEndpoint;
use pmware_device::{Device, MovementDetector, PositionProvider};
use pmware_geo::GeoPoint;
use pmware_obs::{Counter, FieldValue, Histogram, Obs};
use pmware_world::{GsmObservation, MotionState, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use serde_json::json;

use crate::apps::ConnectedApps;
use crate::checkpoint::PmsCheckpoint;
use crate::cloud_client::CloudClient;
use crate::error::PmsError;
use crate::inference::{InferenceConfig, InferenceEngine};
use crate::intents::{actions, Intent, IntentFilter};
use crate::preferences::{coarsen_position, UserPreferences};
use crate::profile_builder::ProfileBuilder;
use crate::registry::{PlaceRegistry, PmPlaceId, ReconcileMode};
use crate::requirements::{AppRequirement, RouteAccuracy};
use crate::sensing::{SensingConfig, SensingScheduler};

/// Supplies the positions of other PMWare users' devices for Bluetooth
/// proximity scans (the simulation's stand-in for radios actually hearing
/// each other). The deployment harness implements this over the whole
/// agent population.
pub trait PeerProvider {
    /// Peers (opaque contact id, true position) present at `t`.
    fn peers_at(&self, t: SimTime) -> Vec<(String, GeoPoint)>;
}

/// PMS configuration.
#[derive(Debug, Clone)]
pub struct PmsConfig {
    /// Device IMEI for registration.
    pub imei: String,
    /// Account email for registration.
    pub email: String,
    /// Main loop tick (default one minute, the GSM period).
    pub tick: SimDuration,
    /// Scheduler periods.
    pub sensing: SensingConfig,
    /// Inference parameters.
    pub inference: InferenceConfig,
    /// Hour of day at which the nightly maintenance (GCA offload, syncs)
    /// runs.
    pub maintenance_hour: u64,
    /// Signature overlap for registry reconciliation.
    pub reconcile_overlap: f64,
    /// Refresh the token when within this margin of expiry.
    pub token_refresh_margin: SimDuration,
    /// Movement-detector window (samples).
    pub movement_window: usize,
    /// Wire-request cap per maintenance pass: on a bad link the pass
    /// stops spending after this many sends (retries included) and the
    /// unfinished work is retried at the next pass.
    pub maintenance_budget: u32,
    /// Days of GSM suffix per offload request. `0` (the default)
    /// coalesces the whole unacknowledged suffix — however many days an
    /// outage let pile up — into a single batched request; `k ≥ 1`
    /// splits the suffix at day boundaries into one request per `k`
    /// days (`1` is the per-day baseline the batched protocol replaces).
    pub offload_batch_days: u32,
}

impl PmsConfig {
    /// A configuration for one named participant.
    pub fn for_participant(n: u32) -> PmsConfig {
        PmsConfig {
            imei: format!("3504{n:011}"),
            email: format!("participant{n}@pmware.study"),
            tick: SimDuration::from_minutes(1),
            sensing: SensingConfig::default(),
            inference: InferenceConfig::default(),
            maintenance_hour: 3,
            reconcile_overlap: 0.18,
            token_refresh_margin: SimDuration::from_hours(2),
            movement_window: 3,
            maintenance_budget: 64,
            offload_batch_days: 0,
        }
    }
}

/// Counters accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmsCounters {
    /// Confirmed arrivals broadcast.
    pub arrivals: u64,
    /// Confirmed departures broadcast.
    pub departures: u64,
    /// Route traversals recorded.
    pub routes: u64,
    /// Social encounters recorded.
    pub encounters: u64,
    /// GCA offloads performed.
    pub gca_offloads: u64,
    /// GCA offloads that fell back to local computation.
    pub gca_local_fallbacks: u64,
    /// Day profiles synced to the cloud.
    pub profiles_synced: u64,
    /// Token refreshes performed.
    pub token_refreshes: u64,
}

/// Sensor-trigger labels, in the order the scheduler's decision lists
/// them.
const TRIGGER_LABELS: [&str; 5] = ["accel", "gsm", "wifi", "gps", "bluetooth"];

/// Bucket bounds for the GCA offload batch-size histogram (observations
/// shipped per offload request). At one GSM sample a minute, a single
/// day is ~1.4k observations, so a multi-day batched offload after an
/// outage lands in the tens of thousands — the upper buckets keep week-
/// and month-sized coalesced suffixes distinguishable instead of lumping
/// everything past 4k into the overflow bucket.
const GCA_BATCH_BOUNDS: [u64; 10] = [1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144];

/// Splits a time-ordered GSM suffix at day boundaries into chunks of at
/// most `batch_days` distinct days each, returning cumulative end
/// offsets (the last is always `suffix.len()`). `batch_days == 0`
/// coalesces everything into one chunk. An empty suffix still yields one
/// empty chunk: the nightly offload must round-trip regardless, because
/// the reply is what refreshes the authoritative place set.
fn offload_chunk_ends(suffix: &[GsmObservation], batch_days: u32) -> Vec<usize> {
    if batch_days == 0 || suffix.is_empty() {
        return vec![suffix.len()];
    }
    let mut ends = Vec::new();
    let mut days_in_chunk = 0u32;
    let mut current_day = None;
    for (i, obs) in suffix.iter().enumerate() {
        let day = obs.time.day();
        if current_day != Some(day) {
            current_day = Some(day);
            days_in_chunk += 1;
            if days_in_chunk > batch_days {
                ends.push(i);
                days_in_chunk = 1;
            }
        }
    }
    ends.push(suffix.len());
    ends
}

/// Pre-resolved PMS metric handles. The service always carries a private
/// registry (so [`PmwareMobileService::counters`] keeps working with no
/// opt-in); [`PmwareMobileService::set_obs`] rebinds the same handles to a
/// study-wide registry and carries the totals across.
#[derive(Debug)]
struct PmsMetrics {
    obs: Obs,
    arrivals: Counter,
    departures: Counter,
    routes: Counter,
    encounters: Counter,
    gca_offloads: Counter,
    gca_local_fallbacks: Counter,
    profiles_synced: Counter,
    token_refreshes: Counter,
    sensing_triggers: [Counter; TRIGGER_LABELS.len()],
    duty_cycle_changes: Counter,
    intent_broadcasts: Counter,
    gca_batch_observations: Histogram,
}

impl PmsMetrics {
    fn resolve(obs: Obs) -> PmsMetrics {
        let user = obs.actor().to_string();
        let labels = [("user", user.as_str())];
        PmsMetrics {
            arrivals: obs.counter("pms_arrivals_total", &labels),
            departures: obs.counter("pms_departures_total", &labels),
            routes: obs.counter("pms_routes_total", &labels),
            encounters: obs.counter("pms_encounters_total", &labels),
            gca_offloads: obs.counter("pms_gca_offloads_total", &labels),
            gca_local_fallbacks: obs.counter("pms_gca_local_fallbacks_total", &labels),
            profiles_synced: obs.counter("pms_profiles_synced_total", &labels),
            token_refreshes: obs.counter("pms_token_refreshes_total", &labels),
            sensing_triggers: std::array::from_fn(|i| {
                obs.counter(
                    "pms_sensing_triggers_total",
                    &[("interface", TRIGGER_LABELS[i]), ("user", user.as_str())],
                )
            }),
            duty_cycle_changes: obs.counter("pms_duty_cycle_changes_total", &labels),
            intent_broadcasts: obs.counter("pms_intent_broadcasts_total", &labels),
            gca_batch_observations: obs.histogram(
                "pms_gca_batch_observations",
                &labels,
                &GCA_BATCH_BOUNDS,
            ),
            obs,
        }
    }

    /// A snapshot of the durable (checkpointed) counters.
    fn counters(&self) -> PmsCounters {
        PmsCounters {
            arrivals: self.arrivals.get(),
            departures: self.departures.get(),
            routes: self.routes.get(),
            encounters: self.encounters.get(),
            gca_offloads: self.gca_offloads.get(),
            gca_local_fallbacks: self.gca_local_fallbacks.get(),
            profiles_synced: self.profiles_synced.get(),
            token_refreshes: self.token_refreshes.get(),
        }
    }

    /// Seeds the durable counters (restore from a checkpoint, or carrying
    /// totals across a registry rebind).
    fn seed(&self, counters: &PmsCounters) {
        self.arrivals.set(counters.arrivals);
        self.departures.set(counters.departures);
        self.routes.set(counters.routes);
        self.encounters.set(counters.encounters);
        self.gca_offloads.set(counters.gca_offloads);
        self.gca_local_fallbacks.set(counters.gca_local_fallbacks);
        self.profiles_synced.set(counters.profiles_synced);
        self.token_refreshes.set(counters.token_refreshes);
    }

    /// Carries the non-checkpointed extras from `old` (registry rebind
    /// only — these deliberately reset across a reboot, like any other
    /// process-lifetime diagnostic).
    fn carry_extras(&self, old: &PmsMetrics) {
        for (new, old) in self
            .sensing_triggers
            .iter()
            .zip(old.sensing_triggers.iter())
        {
            if old.get() > 0 {
                new.set(old.get());
            }
        }
        if old.duty_cycle_changes.get() > 0 {
            self.duty_cycle_changes.set(old.duty_cycle_changes.get());
        }
        if old.intent_broadcasts.get() > 0 {
            self.intent_broadcasts.set(old.intent_broadcasts.get());
        }
    }
}

/// End-of-run summary.
#[derive(Debug, Clone)]
pub struct PmsReport {
    /// Snapshot of the place registry.
    pub places: Vec<crate::registry::PmPlace>,
    /// Total battery energy drained (joules).
    pub energy_joules: f64,
    /// Energy by interface.
    pub energy_by_interface: Vec<(pmware_device::Interface, f64)>,
    /// Event counters.
    pub counters: PmsCounters,
    /// Intents delivered to connected apps.
    pub intents_delivered: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct OpenEncounter {
    pub(crate) start: SimTime,
    pub(crate) last_seen: SimTime,
    pub(crate) place: Option<PmPlaceId>,
}

/// The mobile service bound to one device.
pub struct PmwareMobileService<'w, P> {
    config: PmsConfig,
    device: Device<'w, P>,
    client: CloudClient,
    apps: ConnectedApps,
    prefs: UserPreferences,
    scheduler: SensingScheduler,
    movement: MovementDetector,
    engine: InferenceEngine,
    registry: PlaceRegistry,
    profiles: ProfileBuilder,
    routes: RouteStore,
    peer_provider: Option<Box<dyn PeerProvider + Send>>,
    /// Keyed in contact order (deterministic drain on finish/checkpoint).
    open_encounters: BTreeMap<String, OpenEncounter>,
    /// Encounters closed but not yet acknowledged by the cloud, in stream
    /// order. `pending_contacts[0]` sits at stream offset
    /// `contacts_seq_base`; a sync acknowledgement drains exactly the
    /// acked prefix, so a partial failure never re-sends what the cloud
    /// already absorbed.
    pending_contacts: Vec<pmware_cloud::ContactEntry>,
    /// Stream offset of the first pending contact (count acknowledged so
    /// far) — the idempotency key sent with every contact sync.
    contacts_seq_base: u64,
    /// Completed day profiles not yet accepted by the cloud (retried at
    /// every maintenance pass — an outage must not lose data).
    pending_profiles: Vec<pmware_cloud::MobilityProfile>,
    current_place: Option<PmPlaceId>,
    last_departure: Option<(PmPlaceId, SimTime)>,
    clock: SimTime,
    last_maintenance_day: Option<u64>,
    /// Number of GSM observations already shipped to the cloud for
    /// discovery; maintenance offloads only the suffix past this point
    /// (the paper's §2.3.1 "one time computation" per batch of new data).
    offloaded_upto: usize,
    metrics: PmsMetrics,
    /// Last motion state fed to the scheduler; a flip means the duty
    /// cycle changed. Not checkpointed (pure diagnostics).
    last_motion: Option<MotionState>,
}

impl<'w, P: PositionProvider> PmwareMobileService<'w, P> {
    /// Creates a PMS: registers the device with the cloud at `now`
    /// (§2.2.1) and starts the clock there.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] when registration fails.
    pub fn new(
        device: Device<'w, P>,
        cloud: impl Into<CloudEndpoint>,
        config: PmsConfig,
        now: SimTime,
    ) -> Result<Self, PmsError> {
        let client = CloudClient::register(cloud, &config.imei, &config.email, now)?;
        let imei = config.imei.clone();
        let scheduler = SensingScheduler::new(config.sensing.clone());
        let movement = MovementDetector::new(config.movement_window);
        let engine = InferenceEngine::new(config.inference.clone());
        Ok(PmwareMobileService {
            config,
            device,
            client,
            apps: ConnectedApps::new(),
            prefs: UserPreferences::new(),
            scheduler,
            movement,
            engine,
            registry: PlaceRegistry::new(),
            profiles: ProfileBuilder::new(),
            routes: RouteStore::new(0.5),
            peer_provider: None,
            open_encounters: BTreeMap::new(),
            pending_contacts: Vec::new(),
            contacts_seq_base: 0,
            pending_profiles: Vec::new(),
            current_place: None,
            last_departure: None,
            clock: now,
            last_maintenance_day: None,
            offloaded_upto: 0,
            metrics: PmsMetrics::resolve(Obs::new().for_actor(&imei)),
            last_motion: None,
        })
    }

    /// Serializes the durable service state — everything a device reboot
    /// must not lose. The device itself (battery, RNG) and connected apps
    /// are *not* part of the checkpoint: the device is handed back by
    /// [`shutdown`](Self::shutdown), and apps re-register on start like
    /// they do on a real phone.
    pub fn checkpoint(&self) -> PmsCheckpoint {
        PmsCheckpoint {
            client: self.client.state(),
            prefs: self.prefs.clone(),
            scheduler: self.scheduler.clone(),
            movement: self.movement.snapshot(),
            engine: self.engine.snapshot(),
            registry: self.registry.clone(),
            profiles: self.profiles.clone(),
            routes: self.routes.clone(),
            open_encounters: self.open_encounters.clone(),
            pending_contacts: self.pending_contacts.clone(),
            contacts_seq_base: self.contacts_seq_base,
            pending_profiles: self.pending_profiles.clone(),
            current_place: self.current_place,
            last_departure: self.last_departure,
            clock: self.clock,
            last_maintenance_day: self.last_maintenance_day,
            offloaded_upto: self.offloaded_upto as u64,
            counters: self.counters(),
        }
    }

    /// Stops the service and returns the device (simulated power-off).
    /// Pair with [`checkpoint`](Self::checkpoint) before the call and
    /// [`restore`](Self::restore) after to survive the reboot losslessly.
    pub fn shutdown(self) -> Device<'w, P> {
        self.device
    }

    /// Resumes a service from a checkpoint after a simulated reboot: no
    /// re-registration round-trip, the GCA engine is rebuilt by replaying
    /// the checkpointed observation log, and the online tracker resumes
    /// mid-stay. `config` must match the config the checkpoint was taken
    /// under. Connected apps must re-register; privacy preferences
    /// survive.
    pub fn restore(
        device: Device<'w, P>,
        cloud: impl Into<CloudEndpoint>,
        config: PmsConfig,
        checkpoint: PmsCheckpoint,
    ) -> Self {
        let client = CloudClient::from_state(cloud, checkpoint.client);
        // The tracker's cell→place index is rebuilt over the same live
        // place list maintenance last built it from.
        let known: Vec<DiscoveredPlace> = checkpoint
            .registry
            .active_places()
            .map(|p| {
                DiscoveredPlace::new(
                    DiscoveredPlaceId(p.id.0),
                    PlaceSignature::Cells(p.cells.clone()),
                    Vec::new(),
                )
            })
            .collect();
        let engine = InferenceEngine::restore(config.inference.clone(), checkpoint.engine, &known);
        let config_imei = config.imei.clone();
        PmwareMobileService {
            config,
            device,
            client,
            apps: ConnectedApps::new(),
            prefs: checkpoint.prefs,
            scheduler: checkpoint.scheduler,
            movement: MovementDetector::from_snapshot(checkpoint.movement),
            engine,
            registry: checkpoint.registry,
            profiles: checkpoint.profiles,
            routes: checkpoint.routes,
            peer_provider: None,
            open_encounters: checkpoint.open_encounters,
            pending_contacts: checkpoint.pending_contacts,
            contacts_seq_base: checkpoint.contacts_seq_base,
            pending_profiles: checkpoint.pending_profiles,
            current_place: checkpoint.current_place,
            last_departure: checkpoint.last_departure,
            clock: checkpoint.clock,
            last_maintenance_day: checkpoint.last_maintenance_day,
            offloaded_upto: checkpoint.offloaded_upto as usize,
            metrics: {
                let metrics = PmsMetrics::resolve(Obs::new().for_actor(&config_imei));
                metrics.seed(&checkpoint.counters);
                metrics
            },
            last_motion: None,
        }
    }

    /// Rebinds the service's metrics (and its device's and cloud
    /// client's) to `obs` — typically a study-wide registry — carrying all
    /// totals recorded so far. When `obs` has no registry of its own the
    /// private one is kept, so the legacy [`counters`](Self::counters)
    /// view never goes dark.
    pub fn set_obs(&mut self, obs: &Obs) {
        let bound = obs.clone().metrics_or(&self.metrics.obs);
        let fresh = PmsMetrics::resolve(bound.clone());
        fresh.seed(&self.metrics.counters());
        fresh.carry_extras(&self.metrics);
        self.metrics = fresh;
        self.device.set_obs(&bound);
        self.client.set_obs(&bound);
    }

    /// Registers a connected application (§2.4 steps 1–2).
    pub fn register_app(
        &mut self,
        name: impl Into<String>,
        requirement: AppRequirement,
        filter: IntentFilter,
    ) -> Receiver<Intent> {
        self.apps.register(name, requirement, filter)
    }

    /// User privacy preferences (per-app granularity caps, kill switch).
    pub fn preferences_mut(&mut self) -> &mut UserPreferences {
        &mut self.prefs
    }

    /// Installs the Bluetooth peer oracle for social discovery.
    pub fn set_peer_provider(&mut self, provider: Box<dyn PeerProvider + Send>) {
        self.peer_provider = Some(provider);
    }

    /// The live (non-retired) places PMWare currently knows.
    pub fn places(&self) -> Vec<&crate::registry::PmPlace> {
        self.registry.active_places().collect()
    }

    /// The place currently occupied, if the tracker is confident.
    pub fn current_place(&self) -> Option<PmPlaceId> {
        self.current_place
    }

    /// Labels a place (§2.2.5); synced to the cloud at the next
    /// maintenance pass. Returns whether the id exists.
    pub fn label_place(&mut self, id: PmPlaceId, label: impl Into<String>) -> bool {
        self.registry.set_label(id, label)
    }

    /// The cloud client, for analytics queries by apps or the harness.
    pub fn cloud_client_mut(&mut self) -> &mut CloudClient {
        &mut self.client
    }

    /// Battery state of the underlying device.
    pub fn battery(&self) -> &pmware_device::Battery {
        self.device.battery()
    }

    /// Canonical routes recorded so far.
    pub fn routes(&self) -> &RouteStore {
        &self.routes
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Event counters — a point-in-time view over the metrics registry.
    pub fn counters(&self) -> PmsCounters {
        self.metrics.counters()
    }

    /// Runs the main loop until `until`.
    ///
    /// # Errors
    ///
    /// Returns [`PmsError::Cloud`] only for registration-level failures;
    /// transient cloud errors during maintenance fall back to local
    /// computation and keep the loop alive (a phone keeps sensing when the
    /// network drops).
    pub fn run(&mut self, until: SimTime) -> Result<(), PmsError> {
        while self.clock < until {
            let t = self.clock;
            self.tick(t)?;
            self.clock = t + self.config.tick;
        }
        Ok(())
    }

    fn tick(&mut self, t: SimTime) -> Result<(), PmsError> {
        self.device.bill_baseline(t);

        // Token refresh (§2.2.1) — an expired token would break syncs. If
        // the token was lost entirely (it expired while the cloud was
        // unreachable), fall back to re-registration, which is idempotent
        // per device identity.
        match self
            .client
            .refresh_if_needed(t, self.config.token_refresh_margin)
        {
            Ok(true) => self.metrics.token_refreshes.inc(),
            Ok(false) => {}
            Err(_) => {
                let (imei, email) = (self.config.imei.clone(), self.config.email.clone());
                if self.client.reregister(&imei, &email, t).is_ok() {
                    self.metrics.token_refreshes.inc();
                }
            }
        }

        let demand = self.apps.demand_at_hour(t.hour_of_day());
        let motion = self.movement.state();
        if self.last_motion.is_some_and(|prev| prev != motion) {
            self.metrics.duty_cycle_changes.inc();
            self.metrics.obs.event(
                t,
                "pms.duty_cycle",
                &[(
                    "motion",
                    FieldValue::from(if motion.is_moving() {
                        "moving"
                    } else {
                        "stationary"
                    }),
                )],
            );
        }
        self.last_motion = Some(motion);
        let decision = self.scheduler.decide(t, demand, motion);
        let triggered = [
            decision.accel,
            decision.gsm,
            decision.wifi,
            decision.gps,
            decision.bluetooth,
        ];
        for (counter, fired) in self.metrics.sensing_triggers.iter().zip(triggered) {
            if fired {
                counter.inc();
            }
        }

        if decision.accel {
            let reading = self.device.read_accelerometer(t);
            let state = self.movement.update(reading);
            // §6 extension: daily activity summary in the mobility profile.
            self.profiles
                .on_motion(t, self.config.sensing.accel_period, state.is_moving());
        }

        if decision.gsm {
            if let Some(obs) = self.device.sample_gsm(t) {
                let events = self.engine.on_gsm(obs);
                for event in events {
                    self.handle_place_event(event, demand.route);
                }
            }
        }

        if decision.wifi {
            let scan = self.device.scan_wifi(t);
            let events = self.engine.on_wifi(scan);
            self.handle_wifi_events(&events);
        }

        if decision.gps {
            if let Some(fix) = self.device.fix_gps(t) {
                self.engine.on_gps(fix);
            }
        }

        if decision.bluetooth {
            self.bluetooth_pass(t);
        }

        // Nightly maintenance.
        let due = match self.last_maintenance_day {
            None => t.hour_of_day() >= self.config.maintenance_hour && t.day() > 0,
            Some(d) => t.day() > d && t.hour_of_day() >= self.config.maintenance_hour,
        };
        if due {
            self.maintenance(t);
            self.last_maintenance_day = Some(t.day());
        }
        Ok(())
    }

    fn handle_place_event(&mut self, event: PlaceEvent, route_mode: Option<RouteAccuracy>) {
        match event {
            PlaceEvent::Arrival { place, time } => {
                let stable = PmPlaceId(place.0);
                if self.registry.place(stable).is_none() {
                    return;
                }
                if self.current_place == Some(stable) {
                    return; // re-confirmation after a tracker rebuild
                }
                if self.current_place.is_some() {
                    // Missed departure: close it at the new arrival time.
                    self.profiles.on_departure(time);
                }
                // Close route tracking between the previous departure and
                // this arrival.
                if let Some((from, departed)) = self.last_departure.take() {
                    if from != stable || route_mode.is_some() {
                        self.record_route(from, stable, departed, time, route_mode);
                    }
                }
                self.current_place = Some(stable);
                self.registry.record_visit(stable);
                self.profiles.on_arrival(DiscoveredPlaceId(stable.0), time);
                self.metrics.arrivals.inc();
                self.metrics.obs.event(
                    time,
                    "pms.arrival",
                    &[("place", FieldValue::from(u64::from(stable.0)))],
                );
                self.broadcast_place_event(actions::PLACE_ARRIVAL, stable, time);
            }
            PlaceEvent::Departure { place, time } => {
                let stable = PmPlaceId(place.0);
                if self.current_place != Some(stable) {
                    return;
                }
                self.current_place = None;
                self.profiles.on_departure(time);
                self.last_departure = Some((stable, time));
                self.metrics.departures.inc();
                self.metrics.obs.event(
                    time,
                    "pms.departure",
                    &[("place", FieldValue::from(u64::from(stable.0)))],
                );
                self.broadcast_place_event(actions::PLACE_DEPARTURE, stable, time);
            }
        }
    }

    fn record_route(
        &mut self,
        from: PmPlaceId,
        to: PmPlaceId,
        start: SimTime,
        end: SimTime,
        mode: Option<RouteAccuracy>,
    ) {
        // High-accuracy mode prefers the GPS trace when fixes exist
        // (§2.2.2); otherwise the GSM cell sequence.
        let geometry = match mode {
            Some(RouteAccuracy::High) => gps_route(self.engine.gps_log(), start, end)
                .unwrap_or_else(|| cell_route(self.engine.gsm_log(), start, end)),
            _ => cell_route(self.engine.gsm_log(), start, end),
        };
        let observation = RouteObservation {
            from: DiscoveredPlaceId(from.0),
            to: DiscoveredPlaceId(to.0),
            start,
            end,
            geometry,
        };
        if let Some(route_id) = self.routes.record(observation) {
            self.metrics.routes.inc();
            self.profiles.on_route(route_id, start, end);
            let intent = Intent::new(
                actions::ROUTE_COMPLETED,
                end,
                json!({ "route": route_id, "from": from.0, "to": to.0 }),
            );
            self.metrics.intent_broadcasts.inc();
            self.apps.bus_mut().broadcast(&intent);
        }
    }

    fn handle_wifi_events(&mut self, events: &[WifiPlaceEvent]) {
        for event in events {
            if let WifiPlaceEvent::Departure { place, .. } = event {
                // Opportunistic augmentation (§4: "GSM data augmented with
                // opportunistic WiFi sensing"): attach the stay's AP
                // signature to the place the tracker had us at.
                let aps: Vec<_> = self
                    .engine
                    .wifi_places()
                    .iter()
                    .find(|p| p.id == *place)
                    .and_then(|p| match &p.signature {
                        PlaceSignature::WifiAps(aps) => Some(aps.iter().copied().collect()),
                        _ => None,
                    })
                    .unwrap_or_default();
                if let Some(current) = self.current_place {
                    self.registry.augment_with_wifi(current, aps);
                }
            }
        }
    }

    fn bluetooth_pass(&mut self, t: SimTime) {
        let Some(provider) = &self.peer_provider else {
            return;
        };
        let peers = provider.peers_at(t);
        let found = self.device.scan_bluetooth(t, &peers);
        let stale_after =
            SimDuration::from_seconds(self.config.sensing.bluetooth_period.as_seconds() * 2 + 60);
        for contact in found {
            let entry = self
                .open_encounters
                .entry(contact)
                .or_insert(OpenEncounter {
                    start: t,
                    last_seen: t,
                    place: self.current_place,
                });
            entry.last_seen = t;
            if entry.place.is_none() {
                entry.place = self.current_place;
            }
        }
        // Close encounters not seen recently.
        let mut closed: Vec<(String, OpenEncounter)> = Vec::new();
        self.open_encounters.retain(|contact, enc| {
            if t.since(enc.last_seen) > stale_after {
                closed.push((contact.clone(), enc.clone()));
                false
            } else {
                true
            }
        });
        for (contact, enc) in closed {
            self.finish_encounter(&contact, &enc);
        }
    }

    fn finish_encounter(&mut self, contact: &str, enc: &OpenEncounter) {
        self.metrics.encounters.inc();
        self.profiles.on_contact(
            contact,
            enc.start,
            enc.last_seen,
            enc.place.map(|p| DiscoveredPlaceId(p.0)),
        );
        self.pending_contacts.push(pmware_cloud::ContactEntry {
            contact: contact.to_owned(),
            start: enc.start,
            end: enc.last_seen,
            place: enc.place.map(|p| DiscoveredPlaceId(p.0)),
        });
        let intent = Intent::new(
            actions::SOCIAL_CONTACT,
            enc.last_seen,
            json!({
                "contact": contact,
                "place": enc.place.map(|p| p.0),
            }),
        );
        self.metrics.intent_broadcasts.inc();
        self.apps.bus_mut().broadcast(&intent);
    }

    fn broadcast_place_event(&mut self, action: &str, place: PmPlaceId, time: SimTime) {
        self.broadcast_place_event_with_history(action, place, time, &[]);
    }

    fn broadcast_place_event_with_history(
        &mut self,
        action: &str,
        place: PmPlaceId,
        time: SimTime,
        history: &[(u64, u64)],
    ) {
        let Some(info) = self.registry.place(place).cloned() else {
            return;
        };
        let requirements: HashMap<String, AppRequirement> = self
            .apps
            .iter()
            .map(|a| (a.id.0.clone(), a.requirement.clone()))
            .collect();
        let prefs = self.prefs.clone();
        self.metrics.intent_broadcasts.inc();
        self.apps.bus_mut().broadcast_with(action, |app_name| {
            let requirement = requirements.get(app_name)?;
            // Apps only hear place events inside their tracking window
            // (§2.4 step 1: "building-level granularity with a tracking
            // between 9 AM to 6 PM").
            if !requirement.active_at_hour(time.hour_of_day()) {
                return None;
            }
            let granularity = prefs.effective_granularity(app_name, requirement.granularity)?;
            let position = info.position.map(|p| coarsen_position(p, granularity));
            Some(Intent::new(
                action,
                time,
                json!({
                    "place": place.0,
                    "label": info.label,
                    "latitude": position.map(|p| p.latitude()),
                    "longitude": position.map(|p| p.longitude()),
                    "granularity": granularity.label(),
                    "visit_count": info.visit_count,
                    "history": history,
                }),
            ))
        });
    }

    /// Nightly maintenance: GCA offload (falling back to local discovery
    /// when the cloud errors), registry reconciliation, tracker rebuild,
    /// PLACE_NEW broadcasts, geolocation of new places, and profile/route
    /// syncs.
    fn maintenance(&mut self, t: SimTime) {
        self.metrics.gca_offloads.inc();
        let wire_before = self.client.wire_requests();
        // A lossy link must not let retries spin unboundedly: the whole
        // pass shares one wire budget, and work cut off by it is simply
        // retried at the next pass (all syncs are at-least-once).
        self.client
            .begin_maintenance_pass(self.config.maintenance_budget);
        // Nightly incremental discovery, as the paper describes (§2.3.1):
        // each offload ships only the observations gathered since the last
        // *acknowledged* one, stamped with its stream offset so the cloud
        // absorbs a re-delivered suffix exactly once. The cloud folds the
        // suffix into its persistent per-user engine and replies with the
        // full accumulated place set, so every reply is authoritative —
        // there is no longer a periodic full-log compaction (and no
        // suffix-replacement data loss between compactions).
        let places: Vec<DiscoveredPlace> = match self.offload_suffix(t) {
            Ok(places) => places,
            Err(_) => {
                self.metrics.gca_local_fallbacks.inc();
                self.metrics.obs.event(t, "pms.gca_local_fallback", &[]);
                // The engine's incremental view covers the *entire*
                // local history, so the fallback is just as
                // authoritative as a cloud reply — and O(places), not
                // O(log).
                self.engine.local_discover().places
            }
        };
        let recon = self.registry.reconcile_with_mode(
            &places,
            t,
            self.config.reconcile_overlap,
            ReconcileMode::Authoritative,
        );
        // The online tracker recognises every *live* place by its
        // accumulated signature, keyed directly by stable id.
        let known: Vec<DiscoveredPlace> = self
            .registry
            .active_places()
            .map(|p| {
                DiscoveredPlace::new(
                    DiscoveredPlaceId(p.id.0),
                    PlaceSignature::Cells(p.cells.clone()),
                    Vec::new(),
                )
            })
            .collect();
        self.engine.rebuild_tracker(&known);

        // Geolocate every live place still missing a position — not just
        // this pass's creations. A place whose geolocation failed (outage,
        // budget cut, unknown signature at the time) would otherwise stay
        // position-less forever; retrying each pass heals it as soon as
        // the link recovers.
        let positionless: Vec<PmPlaceId> = self
            .registry
            .active_places()
            .filter(|p| p.position.is_none())
            .map(|p| p.id)
            .collect();
        for id in positionless {
            let cells: Vec<_> = self
                .registry
                .place(id)
                .map(|p| p.cells.iter().copied().collect())
                .unwrap_or_default();
            if let Ok(Some(position)) = self.client.geolocate_signature(&cells, t) {
                self.registry.set_position(id, position);
            }
        }

        // Announce brand-new places. The PLACE_NEW intent carries the
        // place's detected visit history (what Figure 4c's detail view
        // shows) so that apps like the life logger can render stay times
        // without having witnessed the visits live.
        for id in recon.created {
            let history: Vec<(u64, u64)> = self
                .registry
                .place(id)
                .map(|p| {
                    p.gca_visits
                        .iter()
                        .map(|v| (v.arrival.as_seconds(), v.departure.as_seconds()))
                        .collect()
                })
                .unwrap_or_default();
            self.broadcast_place_event_with_history(actions::PLACE_NEW, id, t, &history);
        }

        // Sync finished day profiles, keeping any the cloud rejects for the
        // next pass (outage resilience: syncing is at-least-once).
        self.pending_profiles
            .extend(self.profiles.take_completed_before(t.day()));
        let mut still_pending = Vec::new();
        for profile in self.pending_profiles.drain(..) {
            if self.client.sync_profile(&profile, t).is_ok() {
                self.metrics.profiles_synced.inc();
            } else {
                still_pending.push(profile);
            }
        }
        self.pending_profiles = still_pending;

        // Sync the authoritative place snapshot (including labels) and the
        // route table.
        let snapshot: Vec<DiscoveredPlace> = self
            .registry
            .active_places()
            .map(|p| {
                let mut d = DiscoveredPlace::new(
                    DiscoveredPlaceId(p.id.0),
                    PlaceSignature::Cells(p.cells.clone()),
                    Vec::new(),
                );
                d.label = p.label.clone();
                d
            })
            .collect();
        let _ = self.client.sync_places(&snapshot, t);
        let _ = self.client.sync_routes(self.routes.routes(), t);
        self.sync_pending_contacts(t);
        self.client.end_maintenance_pass();
        self.metrics.obs.span(
            t,
            t,
            "pms.maintenance",
            &[(
                "wire_requests",
                FieldValue::from(self.client.wire_requests() - wire_before),
            )],
        );
    }

    /// Ships the unacknowledged GSM suffix through the batched discover
    /// protocol, one delta-compressed request per
    /// [`PmsConfig::offload_batch_days`]-day chunk (one request total at
    /// the coalescing default). The watermark advances per acknowledged
    /// chunk, so a pass cut short by an outage or the wire budget resumes
    /// exactly where the cloud's acknowledgements stopped. Every reply
    /// carries the full accumulated place set; the last one wins.
    fn offload_suffix(&mut self, t: SimTime) -> Result<Vec<DiscoveredPlace>, PmsError> {
        let base = self.offloaded_upto;
        let ends = offload_chunk_ends(
            &self.engine.gsm_log()[base..],
            self.config.offload_batch_days,
        );
        let mut places = Vec::new();
        for end in ends.into_iter().map(|e| base + e) {
            let chunk = &self.engine.gsm_log()[self.offloaded_upto..end];
            self.metrics
                .gca_batch_observations
                .observe(chunk.len() as u64);
            places = self
                .client
                .discover_places_batched(chunk, self.offloaded_upto as u64, t)?;
            // Advance the watermark only once the cloud has the data:
            // after a failure the next offload re-sends everything past
            // the last acknowledged chunk.
            self.offloaded_upto = end;
        }
        Ok(places)
    }

    /// Ships the unacknowledged contact buffer, tagged with its stream
    /// offset, and drains exactly the prefix the cloud acknowledges. A
    /// failed sync keeps the buffer intact; a duplicated or re-sent buffer
    /// is absorbed once server-side (the offset is the idempotency key),
    /// so partial failures never duplicate social encounters.
    fn sync_pending_contacts(&mut self, t: SimTime) {
        if self.pending_contacts.is_empty() {
            return;
        }
        if let Ok(acked_upto) =
            self.client
                .sync_contacts(&self.pending_contacts, self.contacts_seq_base, t)
        {
            let acked = acked_upto.saturating_sub(self.contacts_seq_base) as usize;
            self.pending_contacts
                .drain(..acked.min(self.pending_contacts.len()));
            self.contacts_seq_base = acked_upto.max(self.contacts_seq_base);
        }
    }

    /// Ends the study at `now`: closes open stays/encounters, syncs the
    /// remaining profiles, and returns the final report.
    pub fn finish(mut self, now: SimTime) -> PmsReport {
        let open = std::mem::take(&mut self.open_encounters);
        for (contact, enc) in open {
            self.finish_encounter(&contact, &enc);
        }
        let remaining: Vec<_> = self
            .pending_profiles
            .drain(..)
            .chain(self.profiles.finish(now))
            .collect();
        for profile in remaining {
            if self.client.sync_profile(&profile, now).is_ok() {
                self.metrics.profiles_synced.inc();
            }
        }
        self.sync_pending_contacts(now);
        let battery = self.device.battery();
        PmsReport {
            places: self.registry.active_places().cloned().collect(),
            energy_joules: battery.drained_joules(),
            energy_by_interface: battery.breakdown().collect(),
            counters: self.counters(),
            intents_delivered: 0, // replaced below
        }
        .with_intents(self.apps.bus_mut().delivered_count())
    }
}

impl PmsReport {
    fn with_intents(mut self, delivered: u64) -> Self {
        self.intents_delivered = delivered;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_world::tower::NetworkLayer;
    use pmware_world::{CellGlobalId, CellId, Lac, Plmn};

    fn obs_on_day(day: u64) -> GsmObservation {
        GsmObservation {
            time: SimTime::from_seconds(day * 86_400 + 3_600),
            cell: CellGlobalId {
                plmn: Plmn { mcc: 404, mnc: 45 },
                lac: Lac(1),
                cell: CellId(1),
            },
            layer: NetworkLayer::G2,
            rssi_dbm: -70.0,
        }
    }

    #[test]
    fn zero_batch_days_coalesces_everything() {
        let suffix: Vec<_> = (0..5).flat_map(|d| vec![obs_on_day(d); 3]).collect();
        assert_eq!(offload_chunk_ends(&suffix, 0), vec![15]);
        assert_eq!(offload_chunk_ends(&[], 0), vec![0]);
        assert_eq!(offload_chunk_ends(&[], 3), vec![0]);
    }

    #[test]
    fn per_day_chunking_splits_at_day_boundaries() {
        let mut suffix = vec![obs_on_day(0); 2];
        suffix.extend(vec![obs_on_day(1); 3]);
        suffix.extend(vec![obs_on_day(2); 1]);
        assert_eq!(offload_chunk_ends(&suffix, 1), vec![2, 5, 6]);
        assert_eq!(offload_chunk_ends(&suffix, 2), vec![5, 6]);
        assert_eq!(offload_chunk_ends(&suffix, 3), vec![6]);
        assert_eq!(offload_chunk_ends(&suffix, 9), vec![6]);
    }
}
