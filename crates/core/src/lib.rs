//! PMWare Mobile Service (PMS) — the middleware itself.
//!
//! This crate is the paper's primary contribution: a single service on the
//! (simulated) phone that takes over place and route sensing for every
//! connected application (§2.2). Its pieces map one-to-one onto Figure 3:
//!
//! * [`requirements`] — place-granularity classes (room / building / area,
//!   Figure 2) and what each application asks for;
//! * [`apps`] — the **connected applications module**: registration,
//!   per-app intent filters, and the aggregate sensing demand;
//! * [`preferences`] — **user preferences**: per-app granularity
//!   permissions, payload coarsening, and the global kill switch;
//! * [`intents`] — the message-passing interface (Android-intent-like
//!   broadcasts) connecting PMS to third-party applications;
//! * [`sensing`] — the **triggered-sensing scheduler**: GSM continuously,
//!   WiFi/GPS/Bluetooth on demand, gated by the accelerometer movement
//!   detector;
//! * [`inference`] — the **inference engine** running the discovery
//!   algorithms over live sensor streams;
//! * [`registry`] — the unified place table (signatures, labels, positions);
//! * [`profile_builder`] — day-specific mobility-profile assembly;
//! * [`cloud_client`] — the REST client for the cloud instance (PCI);
//! * [`pms`] — [`pms::PmwareMobileService`], the
//!   orchestrator that runs the whole pipeline over simulated time.
//!
//! # Examples
//!
//! See `examples/quickstart.rs` at the workspace root for the end-to-end
//! flow: build a world, register an app, run PMS for a simulated week, and
//! read the discovered places and battery cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod checkpoint;
pub mod cloud_client;
pub mod error;
pub mod inference;
pub mod intents;
pub mod pms;
pub mod preferences;
pub mod profile_builder;
pub mod registry;
pub mod requirements;
pub mod sensing;

pub use apps::{AppId, AppRegistration, ConnectedApps};
pub use checkpoint::PmsCheckpoint;
pub use cloud_client::{ClientState, CloudClient, JsonResponse};
pub use error::PmsError;
pub use intents::{Intent, IntentBus, IntentFilter};
pub use pms::{PmsConfig, PmsReport, PmwareMobileService};
pub use preferences::UserPreferences;
pub use requirements::{AppRequirement, Granularity, RouteAccuracy};

// The identifier interner lives in `pmware-world` (below every consumer in
// the dependency graph) but is part of the middleware's public surface.
pub use pmware_world::intern::{Interner, Symbol};
