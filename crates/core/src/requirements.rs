//! Place-accuracy requirements (Figure 2).
//!
//! *"PMWare categorizes the requirements of place-centric applications into
//! three different categories (i.e. area-level, building-level, and
//! room-level) and accordingly, samples location interfaces to minimize
//! overall battery consumption."* (§1)
//!
//! [`app_characterization`] regenerates the Figure 2 taxonomy: which class
//! of application needs which granularity, and therefore which location
//! interfaces PMWare samples for it.

use pmware_device::Interface;
use serde::{Deserialize, Serialize};

/// The three place-granularity classes of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// Area-level (~a shopping street): GSM alone suffices.
    Area,
    /// Building-level: GPS in conjunction with GSM (§2.4 step 3).
    Building,
    /// Room-level: WiFi fingerprints (plus continuous GSM).
    Room,
}

impl Granularity {
    /// All granularities, coarsest first.
    pub const ALL: [Granularity; 3] = [Granularity::Area, Granularity::Building, Granularity::Room];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Granularity::Area => "area",
            Granularity::Building => "building",
            Granularity::Room => "room",
        }
    }

    /// The location interfaces PMWare samples (beyond always-on GSM) to
    /// satisfy this granularity.
    pub fn triggered_interfaces(self) -> &'static [Interface] {
        match self {
            Granularity::Area => &[],
            Granularity::Building => &[Interface::Gps],
            Granularity::Room => &[Interface::WifiScan],
        }
    }

    /// The approximate spatial coarseness (metres) a payload at this
    /// granularity reveals — used by the privacy filter.
    pub fn coarseness_m(self) -> f64 {
        match self {
            Granularity::Area => 1_000.0,
            Granularity::Building => 100.0,
            Granularity::Room => 10.0,
        }
    }
}

/// Route tracking accuracy (§2.2.2): *"PMWare has two modes of route
/// tracking, low accuracy mode and high accuracy mode."*
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteAccuracy {
    /// GSM-only cell sequences.
    Low,
    /// WiFi departure detection + GPS trace.
    High,
}

/// What one connected application asks of PMWare (§2.4 step 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRequirement {
    /// Requested place granularity.
    pub granularity: Granularity,
    /// Tracking window as hours of day `[start, end)`; `None` = always.
    pub tracking_window: Option<(u64, u64)>,
    /// Route tracking mode, if the app wants routes at all.
    pub route_accuracy: Option<RouteAccuracy>,
    /// Whether the app wants social-contact events.
    pub social_contacts: bool,
}

impl AppRequirement {
    /// A place-events-only requirement at the given granularity.
    pub fn places(granularity: Granularity) -> Self {
        AppRequirement {
            granularity,
            tracking_window: None,
            route_accuracy: None,
            social_contacts: false,
        }
    }

    /// Restricts tracking to `[start, end)` hours of day.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` or `end > 24`.
    pub fn with_window(mut self, start: u64, end: u64) -> Self {
        assert!(start < end && end <= 24, "invalid window {start}..{end}");
        self.tracking_window = Some((start, end));
        self
    }

    /// Adds route tracking.
    pub fn with_routes(mut self, accuracy: RouteAccuracy) -> Self {
        self.route_accuracy = Some(accuracy);
        self
    }

    /// Adds social-contact discovery.
    pub fn with_social(mut self) -> Self {
        self.social_contacts = true;
        self
    }

    /// Whether this app is tracking at hour-of-day `hour`.
    pub fn active_at_hour(&self, hour: u64) -> bool {
        match self.tracking_window {
            Some((start, end)) => hour >= start && hour < end,
            None => true,
        }
    }
}

/// One row of the Figure 2 characterization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharacterizationRow {
    /// Application class.
    pub application: &'static str,
    /// Example products the paper names (§1).
    pub examples: &'static str,
    /// Required granularity.
    pub granularity: Granularity,
}

/// Regenerates the Figure 2 taxonomy of place-aware applications.
pub fn app_characterization() -> Vec<CharacterizationRow> {
    vec![
        CharacterizationRow {
            application: "activity tracking",
            examples: "Moves, fitness loggers",
            granularity: Granularity::Room,
        },
        CharacterizationRow {
            application: "indoor navigation / content sharing",
            examples: "museum guides, device pairing",
            granularity: Granularity::Room,
        },
        CharacterizationRow {
            application: "geo-reminders / to-do",
            examples: "Place-Its, geo-notes",
            granularity: Granularity::Building,
        },
        CharacterizationRow {
            application: "check-ins and meetups",
            examples: "Foursquare, Facebook Places",
            granularity: Granularity::Building,
        },
        CharacterizationRow {
            application: "life logging / visit diaries",
            examples: "Moves, Google Now",
            granularity: Granularity::Building,
        },
        CharacterizationRow {
            application: "contextual advertisements",
            examples: "Groupon, PlaceADs",
            granularity: Granularity::Area,
        },
        CharacterizationRow {
            application: "participatory sensing / exposure",
            examples: "PEIR",
            granularity: Granularity::Area,
        },
        CharacterizationRow {
            application: "traffic / ride sharing",
            examples: "route recommenders",
            granularity: Granularity::Area,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_orders_coarse_to_fine() {
        assert!(Granularity::Area < Granularity::Building);
        assert!(Granularity::Building < Granularity::Room);
        // max() picks the finest requirement.
        let finest = [Granularity::Area, Granularity::Room, Granularity::Building]
            .into_iter()
            .max()
            .unwrap();
        assert_eq!(finest, Granularity::Room);
    }

    #[test]
    fn interfaces_per_granularity() {
        assert!(Granularity::Area.triggered_interfaces().is_empty());
        assert_eq!(
            Granularity::Building.triggered_interfaces(),
            &[Interface::Gps]
        );
        assert_eq!(
            Granularity::Room.triggered_interfaces(),
            &[Interface::WifiScan]
        );
    }

    #[test]
    fn coarseness_decreases_with_finer_granularity() {
        assert!(Granularity::Area.coarseness_m() > Granularity::Building.coarseness_m());
        assert!(Granularity::Building.coarseness_m() > Granularity::Room.coarseness_m());
    }

    #[test]
    fn requirement_builder() {
        let r = AppRequirement::places(Granularity::Building)
            .with_window(9, 18)
            .with_routes(RouteAccuracy::High)
            .with_social();
        assert_eq!(r.granularity, Granularity::Building);
        assert!(r.active_at_hour(9));
        assert!(r.active_at_hour(17));
        assert!(!r.active_at_hour(18));
        assert!(!r.active_at_hour(3));
        assert_eq!(r.route_accuracy, Some(RouteAccuracy::High));
        assert!(r.social_contacts);
    }

    #[test]
    fn no_window_means_always_active() {
        let r = AppRequirement::places(Granularity::Area);
        for h in 0..24 {
            assert!(r.active_at_hour(h));
        }
    }

    #[test]
    #[should_panic(expected = "invalid window")]
    fn bad_window_rejected() {
        let _ = AppRequirement::places(Granularity::Area).with_window(18, 9);
    }

    #[test]
    fn characterization_covers_all_granularities() {
        let rows = app_characterization();
        assert!(rows.len() >= 6);
        for g in Granularity::ALL {
            assert!(
                rows.iter().any(|r| r.granularity == g),
                "missing granularity {g:?} in Figure 2 table"
            );
        }
        // Contextual ads are area-level (the paper's §1 example).
        let ads = rows
            .iter()
            .find(|r| r.application.contains("advertisements"))
            .unwrap();
        assert_eq!(ads.granularity, Granularity::Area);
        // Activity tracking is room-level (the paper's §1 example).
        let activity = rows
            .iter()
            .find(|r| r.application.contains("activity"))
            .unwrap();
        assert_eq!(activity.granularity, Granularity::Room);
    }
}
