//! The connected-applications module (§2.2.4).
//!
//! *"This module manages all the connected applications and their
//! requirements. \[…\] requirements of the connected applications influence
//! the decision of sensing different location interfaces in PMWare."*
//!
//! [`ConnectedApps`] owns the intent bus and the per-app requirement table;
//! its aggregate *demand* at any hour is what the triggered-sensing
//! scheduler acts on.

use crossbeam::channel::Receiver;
use serde::{Deserialize, Serialize};

use crate::intents::{Intent, IntentBus, IntentFilter};
use crate::requirements::{AppRequirement, Granularity, RouteAccuracy};

/// Identifier of a connected application (its registration name).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AppId(pub String);

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "app:{}", self.0)
    }
}

/// One registered application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRegistration {
    /// Application name.
    pub id: AppId,
    /// What it asked PMWare for.
    pub requirement: AppRequirement,
    /// Which broadcasts it listens to.
    pub filter: IntentFilter,
}

/// The aggregate sensing demand of all connected apps at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Demand {
    /// Finest granularity any active app needs (None: no app active).
    pub granularity: Option<Granularity>,
    /// Most accurate route mode any active app needs.
    pub route: Option<RouteAccuracy>,
    /// Whether any active app wants social contacts.
    pub social: bool,
}

/// Registry of connected applications, owning the broadcast bus.
#[derive(Debug, Default)]
pub struct ConnectedApps {
    apps: Vec<AppRegistration>,
    bus: IntentBus,
}

impl ConnectedApps {
    /// An empty registry.
    pub fn new() -> Self {
        ConnectedApps::default()
    }

    /// Registers an application (§2.4 steps 1–2) and returns the channel
    /// its intents arrive on. Re-registering a name replaces the previous
    /// registration.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        requirement: AppRequirement,
        filter: IntentFilter,
    ) -> Receiver<Intent> {
        let name = name.into();
        self.apps.retain(|a| a.id.0 != name);
        self.bus.unregister(&name);
        let rx = self.bus.register(name.clone(), filter.clone());
        self.apps.push(AppRegistration {
            id: AppId(name),
            requirement,
            filter,
        });
        rx
    }

    /// Unregisters an application; returns whether it existed.
    pub fn unregister(&mut self, name: &str) -> bool {
        let before = self.apps.len();
        self.apps.retain(|a| a.id.0 != name);
        self.bus.unregister(name);
        self.apps.len() != before
    }

    /// Registered applications.
    pub fn iter(&self) -> impl Iterator<Item = &AppRegistration> {
        self.apps.iter()
    }

    /// Number of registered applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Returns `true` with no registered applications.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// The broadcast bus (PMS broadcasts through this).
    pub fn bus_mut(&mut self) -> &mut IntentBus {
        &mut self.bus
    }

    /// Aggregate demand at hour-of-day `hour`.
    pub fn demand_at_hour(&self, hour: u64) -> Demand {
        let mut demand = Demand::default();
        for app in &self.apps {
            if !app.requirement.active_at_hour(hour) {
                continue;
            }
            demand.granularity = Some(match demand.granularity {
                Some(g) => g.max(app.requirement.granularity),
                None => app.requirement.granularity,
            });
            demand.route = match (demand.route, app.requirement.route_accuracy) {
                (Some(RouteAccuracy::High), _) | (_, Some(RouteAccuracy::High)) => {
                    Some(RouteAccuracy::High)
                }
                (Some(RouteAccuracy::Low), _) | (_, Some(RouteAccuracy::Low)) => {
                    Some(RouteAccuracy::Low)
                }
                _ => None,
            };
            demand.social |= app.requirement.social_contacts;
        }
        demand
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intents::actions;

    #[test]
    fn demand_is_max_over_active_apps() {
        let mut apps = ConnectedApps::new();
        let _rx1 = apps.register(
            "ads",
            AppRequirement::places(Granularity::Area),
            IntentFilter::all(),
        );
        let _rx2 = apps.register(
            "todo",
            AppRequirement::places(Granularity::Building).with_window(9, 18),
            IntentFilter::all(),
        );
        let _rx3 = apps.register(
            "tracker",
            AppRequirement::places(Granularity::Room)
                .with_window(6, 8)
                .with_routes(RouteAccuracy::High),
            IntentFilter::all(),
        );
        // 7am: ads (area) + tracker (room, high routes).
        let d = apps.demand_at_hour(7);
        assert_eq!(d.granularity, Some(Granularity::Room));
        assert_eq!(d.route, Some(RouteAccuracy::High));
        // 10am: ads + todo → building, no routes.
        let d = apps.demand_at_hour(10);
        assert_eq!(d.granularity, Some(Granularity::Building));
        assert_eq!(d.route, None);
        // 11pm: only ads.
        let d = apps.demand_at_hour(23);
        assert_eq!(d.granularity, Some(Granularity::Area));
        assert!(!d.social);
    }

    #[test]
    fn no_apps_no_demand() {
        let apps = ConnectedApps::new();
        let d = apps.demand_at_hour(12);
        assert_eq!(d.granularity, None);
        assert_eq!(d.route, None);
        assert!(!d.social);
    }

    #[test]
    fn social_demand_flagged() {
        let mut apps = ConnectedApps::new();
        let _rx = apps.register(
            "meetups",
            AppRequirement::places(Granularity::Building).with_social(),
            IntentFilter::for_actions([actions::SOCIAL_CONTACT]),
        );
        assert!(apps.demand_at_hour(12).social);
    }

    #[test]
    fn reregistration_replaces() {
        let mut apps = ConnectedApps::new();
        let _a = apps.register(
            "x",
            AppRequirement::places(Granularity::Room),
            IntentFilter::all(),
        );
        let _b = apps.register(
            "x",
            AppRequirement::places(Granularity::Area),
            IntentFilter::all(),
        );
        assert_eq!(apps.len(), 1);
        assert_eq!(apps.demand_at_hour(0).granularity, Some(Granularity::Area));
    }

    #[test]
    fn unregister_removes_demand() {
        let mut apps = ConnectedApps::new();
        let _rx = apps.register(
            "x",
            AppRequirement::places(Granularity::Room),
            IntentFilter::all(),
        );
        assert!(apps.unregister("x"));
        assert!(apps.is_empty());
        assert_eq!(apps.demand_at_hour(0).granularity, None);
        assert!(!apps.unregister("x"));
    }
}
