//! PMS checkpoint/restore (crash recovery).
//!
//! A phone reboots: the process dies mid-day with stays open, encounters
//! in flight, and a half-acknowledged sync buffer. [`PmsCheckpoint`] is
//! the durable state the service writes to "flash" so the next boot
//! resumes with no data loss — restored runs are bit-identical to
//! uninterrupted ones (verified by the chaos-matrix suite).
//!
//! What the checkpoint holds, and what it deliberately leaves out:
//!
//! * **Client state** — auth token, expiry, and the monotonic sync
//!   sequence. Losing the sequence would desynchronize the server-side
//!   idempotency watermarks, so it is durable.
//! * **Inference state** — the raw observation logs, the WiFi detector,
//!   and the online tracker's in-flight debounce counters. The
//!   incremental GCA engine is *not* serialized: its state is a pure
//!   function of the absorbed log (its cell-keyed graph would not survive
//!   JSON anyway), so restore replays the log through a fresh engine.
//! * **Sync buffers and watermarks** — pending profiles/contacts, the
//!   contact stream offset, and the offload watermark, so at-least-once
//!   delivery resumes exactly where it stopped.
//! * **Not** the device (battery and RNG continue in the `Device` value
//!   handed back by `shutdown`) and **not** connected apps (intent
//!   channels cannot outlive the process; apps re-register on boot, and
//!   the user's privacy preferences survive in the checkpoint).
//!
//! The format is plain JSON via [`to_json`](PmsCheckpoint::to_json) /
//! [`from_json`](PmsCheckpoint::from_json) — human-inspectable and
//! stable under the vendored serde.

use std::collections::BTreeMap;

use pmware_algorithms::route::RouteStore;
use pmware_cloud::{ContactEntry, MobilityProfile};
use pmware_device::MovementSnapshot;
use pmware_world::SimTime;
use serde::{Deserialize, Serialize};

use crate::cloud_client::ClientState;
use crate::inference::InferenceSnapshot;
use crate::pms::{OpenEncounter, PmsCounters};
use crate::preferences::UserPreferences;
use crate::profile_builder::ProfileBuilder;
use crate::registry::{PlaceRegistry, PmPlaceId};
use crate::sensing::SensingScheduler;

/// The durable state of a [`PmwareMobileService`](crate::pms::PmwareMobileService).
///
/// Produce with `checkpoint()`, persist with [`to_json`](Self::to_json),
/// resume with `restore()`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PmsCheckpoint {
    pub(crate) client: ClientState,
    pub(crate) prefs: UserPreferences,
    pub(crate) scheduler: SensingScheduler,
    pub(crate) movement: MovementSnapshot,
    pub(crate) engine: InferenceSnapshot,
    pub(crate) registry: PlaceRegistry,
    pub(crate) profiles: ProfileBuilder,
    pub(crate) routes: RouteStore,
    pub(crate) open_encounters: BTreeMap<String, OpenEncounter>,
    pub(crate) pending_contacts: Vec<ContactEntry>,
    pub(crate) contacts_seq_base: u64,
    pub(crate) pending_profiles: Vec<MobilityProfile>,
    pub(crate) current_place: Option<PmPlaceId>,
    pub(crate) last_departure: Option<(PmPlaceId, SimTime)>,
    pub(crate) clock: SimTime,
    pub(crate) last_maintenance_day: Option<u64>,
    pub(crate) offloaded_upto: u64,
    pub(crate) counters: PmsCounters,
}

impl PmsCheckpoint {
    /// Serializes the checkpoint to JSON (the on-flash format).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serializes")
    }

    /// Parses a checkpoint back from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns the decode error when the JSON is malformed or does not
    /// match the checkpoint schema.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// The simulated instant the checkpoint was taken.
    pub fn taken_at(&self) -> SimTime {
        self.clock
    }
}
