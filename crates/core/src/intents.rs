//! The message-passing interface between PMS and connected applications.
//!
//! §2.2.4: *"different third party applications can communicate with PMWare
//! using message passing interfaces provided by mobile operating system
//! e.g. intents and broadcasts in Android OS."* The simulation's analogue
//! is an in-process broadcast bus with Android-like actions and JSON
//! extras; receivers are crossbeam channels so that applications can run on
//! other threads.

use crossbeam::channel::{unbounded, Receiver, Sender};
use pmware_world::SimTime;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Well-known intent actions broadcast by PMS.
pub mod actions {
    /// User arrived at a place. Extras: `place`, `label`, `latitude`,
    /// `longitude`, `granularity`.
    pub const PLACE_ARRIVAL: &str = "pmware.place.ARRIVAL";
    /// User departed a place. Same extras as arrival.
    pub const PLACE_DEPARTURE: &str = "pmware.place.DEPARTURE";
    /// A never-before-seen place was discovered. Same extras.
    pub const PLACE_NEW: &str = "pmware.place.NEW";
    /// A route traversal completed. Extras: `route`, `from`, `to`.
    pub const ROUTE_COMPLETED: &str = "pmware.route.COMPLETED";
    /// A social contact was detected at the current place. Extras:
    /// `contact`, `place`.
    pub const SOCIAL_CONTACT: &str = "pmware.social.CONTACT";
}

/// A broadcast message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Intent {
    /// Action string, e.g. [`actions::PLACE_ARRIVAL`].
    pub action: String,
    /// When the underlying event happened.
    pub time: SimTime,
    /// JSON payload.
    pub extras: Value,
}

impl Intent {
    /// Creates an intent.
    pub fn new(action: impl Into<String>, time: SimTime, extras: Value) -> Intent {
        Intent {
            action: action.into(),
            time,
            extras,
        }
    }
}

/// What a receiver subscribes to: a set of exact action strings
/// (the analogue of an Android intent filter, §2.4 step 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntentFilter {
    actions: Vec<String>,
}

impl IntentFilter {
    /// Matches the listed actions.
    pub fn for_actions<I, S>(actions: I) -> IntentFilter
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        IntentFilter {
            actions: actions.into_iter().map(Into::into).collect(),
        }
    }

    /// Matches every action.
    pub fn all() -> IntentFilter {
        IntentFilter {
            actions: Vec::new(),
        }
    }

    /// Whether `action` passes this filter.
    pub fn matches(&self, action: &str) -> bool {
        self.actions.is_empty() || self.actions.iter().any(|a| a == action)
    }
}

/// The broadcast bus.
///
/// # Examples
///
/// ```
/// use pmware_core::intents::{actions, Intent, IntentBus, IntentFilter};
/// use pmware_world::SimTime;
/// use serde_json::json;
///
/// let mut bus = IntentBus::new();
/// let rx = bus.register(
///     "todo-app",
///     IntentFilter::for_actions([actions::PLACE_ARRIVAL]),
/// );
/// bus.broadcast(&Intent::new(
///     actions::PLACE_ARRIVAL,
///     SimTime::EPOCH,
///     json!({"place": 0}),
/// ));
/// assert_eq!(rx.try_recv().unwrap().extras["place"], 0);
/// ```
#[derive(Debug)]
pub struct IntentBus {
    receivers: Vec<Registration>,
    delivered: u64,
}

#[derive(Debug)]
struct Registration {
    name: String,
    filter: IntentFilter,
    tx: Sender<Intent>,
}

impl IntentBus {
    /// An empty bus.
    pub fn new() -> IntentBus {
        IntentBus {
            receivers: Vec::new(),
            delivered: 0,
        }
    }

    /// Registers a named receiver; returns its channel.
    pub fn register(&mut self, name: impl Into<String>, filter: IntentFilter) -> Receiver<Intent> {
        let (tx, rx) = unbounded();
        self.receivers.push(Registration {
            name: name.into(),
            filter,
            tx,
        });
        rx
    }

    /// Removes a receiver by name; returns whether one was removed.
    pub fn unregister(&mut self, name: &str) -> bool {
        let before = self.receivers.len();
        self.receivers.retain(|r| r.name != name);
        self.receivers.len() != before
    }

    /// Number of registered receivers.
    pub fn receiver_count(&self) -> usize {
        self.receivers.len()
    }

    /// Total intents delivered (copies count individually).
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Broadcasts an intent to every matching, still-connected receiver.
    /// Disconnected receivers are dropped.
    pub fn broadcast(&mut self, intent: &Intent) {
        let mut dead: Vec<usize> = Vec::new();
        for (idx, reg) in self.receivers.iter().enumerate() {
            if !reg.filter.matches(&intent.action) {
                continue;
            }
            match reg.tx.send(intent.clone()) {
                Ok(()) => self.delivered += 1,
                Err(_) => dead.push(idx),
            }
        }
        for idx in dead.into_iter().rev() {
            self.receivers.swap_remove(idx);
        }
    }

    /// Broadcasts a per-receiver customised intent: `f(name)` produces the
    /// payload for each receiver (or `None` to skip it). This is how PMS
    /// applies per-app granularity permissions to one underlying event.
    pub fn broadcast_with<F>(&mut self, action: &str, mut f: F)
    where
        F: FnMut(&str) -> Option<Intent>,
    {
        let mut dead: Vec<usize> = Vec::new();
        for (idx, reg) in self.receivers.iter().enumerate() {
            if !reg.filter.matches(action) {
                continue;
            }
            let Some(intent) = f(&reg.name) else { continue };
            match reg.tx.send(intent) {
                Ok(()) => self.delivered += 1,
                Err(_) => dead.push(idx),
            }
        }
        for idx in dead.into_iter().rev() {
            self.receivers.swap_remove(idx);
        }
    }
}

impl Default for IntentBus {
    fn default() -> Self {
        IntentBus::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn intent(action: &str) -> Intent {
        Intent::new(action, SimTime::EPOCH, json!({}))
    }

    #[test]
    fn filter_matching() {
        let f = IntentFilter::for_actions([actions::PLACE_ARRIVAL, actions::PLACE_NEW]);
        assert!(f.matches(actions::PLACE_ARRIVAL));
        assert!(f.matches(actions::PLACE_NEW));
        assert!(!f.matches(actions::PLACE_DEPARTURE));
        assert!(IntentFilter::all().matches("anything.at.ALL"));
    }

    #[test]
    fn broadcast_reaches_only_matching_receivers() {
        let mut bus = IntentBus::new();
        let arrivals = bus.register("a", IntentFilter::for_actions([actions::PLACE_ARRIVAL]));
        let everything = bus.register("b", IntentFilter::all());
        bus.broadcast(&intent(actions::PLACE_ARRIVAL));
        bus.broadcast(&intent(actions::ROUTE_COMPLETED));
        assert_eq!(arrivals.try_iter().count(), 1);
        assert_eq!(everything.try_iter().count(), 2);
        assert_eq!(bus.delivered_count(), 3);
    }

    #[test]
    fn unregister_removes_receiver() {
        let mut bus = IntentBus::new();
        let rx = bus.register("a", IntentFilter::all());
        assert_eq!(bus.receiver_count(), 1);
        assert!(bus.unregister("a"));
        assert!(!bus.unregister("a"));
        assert_eq!(bus.receiver_count(), 0);
        bus.broadcast(&intent(actions::PLACE_NEW));
        assert_eq!(rx.try_iter().count(), 0);
    }

    #[test]
    fn dropped_receiver_is_pruned_on_broadcast() {
        let mut bus = IntentBus::new();
        let rx = bus.register("a", IntentFilter::all());
        drop(rx);
        bus.broadcast(&intent(actions::PLACE_NEW));
        assert_eq!(bus.receiver_count(), 0);
    }

    #[test]
    fn broadcast_with_customises_per_receiver() {
        let mut bus = IntentBus::new();
        let fine = bus.register("fine-app", IntentFilter::all());
        let coarse = bus.register("coarse-app", IntentFilter::all());
        let skipped = bus.register("blocked-app", IntentFilter::all());
        bus.broadcast_with(actions::PLACE_ARRIVAL, |name| match name {
            "blocked-app" => None,
            name => Some(Intent::new(
                actions::PLACE_ARRIVAL,
                SimTime::EPOCH,
                json!({"granularity": if name == "fine-app" { "room" } else { "area" }}),
            )),
        });
        assert_eq!(fine.try_recv().unwrap().extras["granularity"], "room");
        assert_eq!(coarse.try_recv().unwrap().extras["granularity"], "area");
        assert_eq!(skipped.try_iter().count(), 0);
    }

    #[test]
    fn cross_thread_delivery() {
        let mut bus = IntentBus::new();
        let rx = bus.register("worker", IntentFilter::all());
        let handle = std::thread::spawn(move || rx.recv().unwrap().action);
        bus.broadcast(&intent(actions::SOCIAL_CONTACT));
        assert_eq!(handle.join().unwrap(), actions::SOCIAL_CONTACT);
    }
}
