//! User preferences: the privacy layer (§2.2.1).
//!
//! *"User can configure the place granularity permission for every
//! connected application to preserve her privacy. For instance, a mobile
//! advertisement application want to access place information at building
//! level granularity but user may choose to set permission for only
//! area-level granularity. This module also provides a single control to
//! switch off all place-centric applications."*

use std::collections::HashMap;

use pmware_geo::GeoPoint;
use serde::{Deserialize, Serialize};

use crate::requirements::Granularity;

/// Per-user privacy preferences.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UserPreferences {
    /// Per-app granularity cap; apps not listed get what they ask for.
    caps: HashMap<String, Granularity>,
    /// The global kill switch: when set, no place information flows to any
    /// connected application.
    sharing_disabled: bool,
}

impl UserPreferences {
    /// Default preferences: nothing capped, sharing on.
    pub fn new() -> Self {
        UserPreferences::default()
    }

    /// Caps `app` at `granularity`.
    pub fn set_cap(&mut self, app: impl Into<String>, granularity: Granularity) {
        self.caps.insert(app.into(), granularity);
    }

    /// Removes an app's cap.
    pub fn clear_cap(&mut self, app: &str) {
        self.caps.remove(app);
    }

    /// The cap for an app, if any.
    pub fn cap(&self, app: &str) -> Option<Granularity> {
        self.caps.get(app).copied()
    }

    /// Switches all place sharing off/on (the single control of §2.2.1).
    pub fn set_sharing_disabled(&mut self, disabled: bool) {
        self.sharing_disabled = disabled;
    }

    /// Whether the kill switch is engaged.
    pub fn sharing_disabled(&self) -> bool {
        self.sharing_disabled
    }

    /// The granularity `app` actually receives when it asked for
    /// `requested`: the coarser of request and cap, or `None` when the
    /// kill switch is on.
    pub fn effective_granularity(&self, app: &str, requested: Granularity) -> Option<Granularity> {
        if self.sharing_disabled {
            return None;
        }
        Some(match self.caps.get(app) {
            Some(cap) => requested.min(*cap),
            None => requested,
        })
    }
}

/// Coarsens a position to a granularity's precision by snapping it to a
/// grid of that cell size — the payload an app with a coarser permission
/// sees.
pub fn coarsen_position(position: GeoPoint, granularity: Granularity) -> GeoPoint {
    let cell_m = granularity.coarseness_m();
    // ~111_320 m per degree of latitude.
    let lat_step = cell_m / 111_320.0;
    let lat = (position.latitude() / lat_step).round() * lat_step;
    // Scale longitude by the *snapped* latitude so that every point in a
    // cell uses the same step (using the raw latitude would let two nearby
    // points snap to different grids).
    let lng_step = cell_m / (111_320.0 * lat.to_radians().cos().max(0.01));
    let lng = (position.longitude() / lng_step).round() * lng_step;
    GeoPoint::new(lat.clamp(-90.0, 90.0), lng.clamp(-180.0, 180.0))
        .expect("snapped coordinates stay in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_geo::Meters;

    #[test]
    fn cap_coarsens_but_never_refines() {
        let mut prefs = UserPreferences::new();
        prefs.set_cap("ads", Granularity::Area);
        // Request finer than cap → capped.
        assert_eq!(
            prefs.effective_granularity("ads", Granularity::Building),
            Some(Granularity::Area)
        );
        // Request coarser than cap → request wins.
        prefs.set_cap("logger", Granularity::Room);
        assert_eq!(
            prefs.effective_granularity("logger", Granularity::Area),
            Some(Granularity::Area)
        );
        // Uncapped app gets what it asks.
        assert_eq!(
            prefs.effective_granularity("other", Granularity::Room),
            Some(Granularity::Room)
        );
    }

    #[test]
    fn kill_switch_blocks_everything() {
        let mut prefs = UserPreferences::new();
        prefs.set_sharing_disabled(true);
        assert!(prefs.sharing_disabled());
        assert_eq!(prefs.effective_granularity("x", Granularity::Area), None);
        prefs.set_sharing_disabled(false);
        assert!(prefs
            .effective_granularity("x", Granularity::Area)
            .is_some());
    }

    #[test]
    fn clear_cap_restores_requests() {
        let mut prefs = UserPreferences::new();
        prefs.set_cap("ads", Granularity::Area);
        assert_eq!(prefs.cap("ads"), Some(Granularity::Area));
        prefs.clear_cap("ads");
        assert_eq!(prefs.cap("ads"), None);
        assert_eq!(
            prefs.effective_granularity("ads", Granularity::Room),
            Some(Granularity::Room)
        );
    }

    #[test]
    fn coarsening_displaces_proportionally() {
        let p = GeoPoint::new(12.971_234, 77.594_567).unwrap();
        let room = coarsen_position(p, Granularity::Room);
        let building = coarsen_position(p, Granularity::Building);
        let area = coarsen_position(p, Granularity::Area);
        let d_room = p.equirectangular_distance(room).value();
        let d_building = p.equirectangular_distance(building).value();
        let d_area = p.equirectangular_distance(area).value();
        // Displacement is bounded by half the cell diagonal.
        assert!(d_room <= 10.0, "room displaced {d_room}");
        assert!(d_building <= 100.0, "building displaced {d_building}");
        assert!(d_area <= 1_000.0, "area displaced {d_area}");
    }

    #[test]
    fn coarsening_is_stable_within_a_cell() {
        // Two points a few metres apart snap to the same area-level cell.
        let a = GeoPoint::new(12.9712, 77.5946).unwrap();
        let b = a.destination(45.0, Meters::new(20.0));
        assert_eq!(
            coarsen_position(a, Granularity::Area),
            coarsen_position(b, Granularity::Area)
        );
    }

    #[test]
    fn serde_round_trip() {
        let mut prefs = UserPreferences::new();
        prefs.set_cap("ads", Granularity::Area);
        prefs.set_sharing_disabled(true);
        let json = serde_json::to_string(&prefs).unwrap();
        let back: UserPreferences = serde_json::from_str(&json).unwrap();
        assert_eq!(back, prefs);
    }
}
