//! PMS error type.

use std::fmt;

/// Errors surfaced by the PMWare mobile service.
#[derive(Debug, Clone, PartialEq)]
pub enum PmsError {
    /// The cloud rejected or failed a request.
    Cloud {
        /// Endpoint path.
        path: String,
        /// HTTP-style status.
        status: u16,
        /// Server-provided message, if any.
        message: String,
    },
    /// The device is not registered with the cloud yet.
    NotRegistered,
    /// A connected application id was not found.
    UnknownApp(String),
    /// A response body could not be decoded.
    Decode(String),
}

impl fmt::Display for PmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmsError::Cloud {
                path,
                status,
                message,
            } => {
                write!(
                    f,
                    "cloud request {path} failed with status {status}: {message}"
                )
            }
            PmsError::NotRegistered => write!(f, "device is not registered with the cloud"),
            PmsError::UnknownApp(name) => write!(f, "unknown connected application {name}"),
            PmsError::Decode(msg) => write!(f, "could not decode response: {msg}"),
        }
    }
}

impl std::error::Error for PmsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PmsError::Cloud {
            path: "/api/v1/places".into(),
            status: 401,
            message: "expired".into(),
        };
        let s = e.to_string();
        assert!(s.contains("401") && s.contains("/api/v1/places"));
        assert!(PmsError::NotRegistered
            .to_string()
            .contains("not registered"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PmsError>();
    }
}
