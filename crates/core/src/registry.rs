//! The unified place table.
//!
//! GCA recomputations on the cloud return fresh `DiscoveredPlace` lists
//! whose ids are run-local; the registry gives places a *stable* identity
//! across recomputations by matching signatures, and fuses in WiFi
//! evidence (opportunistic SensLoc stays) and semantic labels (§2.2.5).

use std::collections::{BTreeSet, HashMap};

use pmware_algorithms::signature::{
    DiscoveredPlace, DiscoveredPlaceId, DiscoveredVisit, PlaceSignature,
};
use pmware_geo::GeoPoint;
use pmware_world::{Bssid, CellGlobalId, SimTime};
use serde::{Deserialize, Serialize};

/// Stable identifier of a place in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PmPlaceId(pub u32);

impl std::fmt::Display for PmPlaceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pm-place:{}", self.0)
    }
}

/// A place as PMWare knows it: fused signatures, label, position estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PmPlace {
    /// Stable id.
    pub id: PmPlaceId,
    /// GSM cell signature (from GCA).
    pub cells: BTreeSet<CellGlobalId>,
    /// WiFi signature (from opportunistic SensLoc stays).
    pub wifi_aps: BTreeSet<Bssid>,
    /// User-provided semantic label.
    pub label: Option<String>,
    /// Approximate position (from the cloud geolocation endpoint).
    pub position: Option<GeoPoint>,
    /// Visits confirmed by the online tracker.
    pub visit_count: u32,
    /// First time the place was discovered.
    pub first_seen: SimTime,
    /// The accumulated visit history from GCA recomputations.
    pub gca_visits: Vec<DiscoveredVisit>,
    /// Set when an authoritative (full-log) recomputation no longer finds
    /// this place: its visits were superseded by a better clustering. A
    /// later match revives it.
    pub retired: bool,
}

/// How a GCA output relates to the registry's accumulated knowledge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconcileMode {
    /// The run covered only new observations (nightly): matched places
    /// *extend* their visit histories; unmatched existing places are left
    /// alone.
    Incremental,
    /// The run re-covered the full log (weekly compaction): matched places
    /// *replace* their visit histories with the complete re-clustering,
    /// and existing places the run no longer finds are retired.
    Authoritative,
}

/// Result of reconciling a GCA recomputation.
#[derive(Debug, Clone, PartialEq)]
pub struct Reconciliation {
    /// Stable ids created by this reconciliation (brand-new places).
    pub created: Vec<PmPlaceId>,
    /// Mapping from the run-local GCA ids to stable ids.
    pub mapping: HashMap<DiscoveredPlaceId, PmPlaceId>,
}

/// The registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlaceRegistry {
    places: Vec<PmPlace>,
    gca_map: HashMap<DiscoveredPlaceId, PmPlaceId>,
}

/// Signature-match score between two cell sets: the Jaccard coefficient,
/// upgraded to the containment coefficient when one set is (almost) a
/// subset of the other. Plain Jaccard alone is unstable here because
/// accumulated signatures grow over time — a quiet day may observe only
/// one cell of a known place, and `1/|big|` would fail any threshold even
/// though the evidence is perfectly consistent.
fn cell_overlap(a: &BTreeSet<CellGlobalId>, b: &BTreeSet<CellGlobalId>) -> f64 {
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        return 0.0;
    }
    let jaccard = inter as f64 / union as f64;
    let containment = inter as f64 / a.len().min(b.len()) as f64;
    if containment >= 0.8 {
        jaccard.max(containment)
    } else {
        jaccard
    }
}

impl PlaceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PlaceRegistry::default()
    }

    /// All places ever known, including retired ones (stable-id indexed).
    pub fn places(&self) -> &[PmPlace] {
        &self.places
    }

    /// The live (non-retired) places.
    pub fn active_places(&self) -> impl Iterator<Item = &PmPlace> {
        self.places.iter().filter(|p| !p.retired)
    }

    /// A place by stable id.
    pub fn place(&self, id: PmPlaceId) -> Option<&PmPlace> {
        self.places.get(id.0 as usize)
    }

    /// Mutable access by stable id.
    pub fn place_mut(&mut self, id: PmPlaceId) -> Option<&mut PmPlace> {
        self.places.get_mut(id.0 as usize)
    }

    /// Number of known places.
    pub fn len(&self) -> usize {
        self.places.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.places.is_empty()
    }

    /// The stable id for a GCA run-local id from the latest reconciliation.
    pub fn resolve(&self, gca_id: DiscoveredPlaceId) -> Option<PmPlaceId> {
        self.gca_map.get(&gca_id).copied()
    }

    /// Reconciles a fresh GCA output with the registry: places whose cell
    /// signature overlaps an existing place (containment coefficient ≥
    /// `min_overlap`) keep its stable id (the signature absorbs the new
    /// evidence); the rest become new places.
    ///
    /// # Panics
    ///
    /// Panics if `min_overlap` is outside `[0, 1]`.
    pub fn reconcile(
        &mut self,
        discovered: &[DiscoveredPlace],
        now: SimTime,
        min_overlap: f64,
    ) -> Reconciliation {
        self.reconcile_with_mode(discovered, now, min_overlap, ReconcileMode::Incremental)
    }

    /// [`reconcile`](Self::reconcile) with an explicit mode; authoritative
    /// runs replace visit histories and retire places the run no longer
    /// finds.
    ///
    /// # Panics
    ///
    /// Panics if `min_overlap` is outside `[0, 1]`.
    pub fn reconcile_with_mode(
        &mut self,
        discovered: &[DiscoveredPlace],
        now: SimTime,
        min_overlap: f64,
        mode: ReconcileMode,
    ) -> Reconciliation {
        assert!(
            (0.0..=1.0).contains(&min_overlap),
            "min_overlap must be a fraction, got {min_overlap}"
        );
        let mut created = Vec::new();
        let mut mapping = HashMap::new();
        let mut matched: Vec<bool> = vec![false; self.places.len()];
        self.gca_map.clear();

        for place in discovered {
            let PlaceSignature::Cells(cells) = &place.signature else {
                // Only GCA outputs enter through reconcile.
                continue;
            };
            // Best existing match by signature overlap.
            let mut best: Option<(usize, f64)> = None;
            for (idx, existing) in self.places.iter().enumerate() {
                let overlap = cell_overlap(&existing.cells, cells);
                if overlap >= min_overlap && best.is_none_or(|(_, b)| overlap > b) {
                    best = Some((idx, overlap));
                }
            }
            let stable = match best {
                Some((idx, _)) => {
                    // Fold the new evidence in: the signature grows to the
                    // union of everything ever observed; visits extend
                    // (incremental) or are replaced by the re-clustering
                    // (authoritative). A retired place seen again revives.
                    self.places[idx].cells.extend(cells.iter().copied());
                    match mode {
                        ReconcileMode::Incremental => self.places[idx]
                            .gca_visits
                            .extend(place.visits.iter().copied()),
                        ReconcileMode::Authoritative => {
                            self.places[idx].gca_visits = place.visits.clone()
                        }
                    }
                    self.places[idx].retired = false;
                    // Places created earlier in this same run sit past the
                    // pre-run snapshot; they are trivially "matched".
                    if idx < matched.len() {
                        matched[idx] = true;
                    }
                    self.places[idx].id
                }
                None => {
                    let id = PmPlaceId(self.places.len() as u32);
                    self.places.push(PmPlace {
                        id,
                        cells: cells.clone(),
                        wifi_aps: BTreeSet::new(),
                        label: None,
                        position: None,
                        visit_count: 0,
                        first_seen: now,
                        gca_visits: place.visits.clone(),
                        retired: false,
                    });
                    created.push(id);
                    id
                }
            };
            mapping.insert(place.id, stable);
            self.gca_map.insert(place.id, stable);
        }

        if mode == ReconcileMode::Authoritative {
            for (idx, was_matched) in matched.iter().enumerate() {
                if !was_matched {
                    self.places[idx].retired = true;
                }
            }
        }
        Reconciliation { created, mapping }
    }

    /// Attaches WiFi evidence to the place active at a given moment —
    /// the "opportunistic WiFi sensing" augmentation of §4.
    pub fn augment_with_wifi(&mut self, id: PmPlaceId, aps: impl IntoIterator<Item = Bssid>) {
        if let Some(place) = self.place_mut(id) {
            place.wifi_aps.extend(aps);
        }
    }

    /// Sets a place's semantic label.
    pub fn set_label(&mut self, id: PmPlaceId, label: impl Into<String>) -> bool {
        match self.place_mut(id) {
            Some(place) => {
                place.label = Some(label.into());
                true
            }
            None => false,
        }
    }

    /// Sets a place's estimated position.
    pub fn set_position(&mut self, id: PmPlaceId, position: GeoPoint) {
        if let Some(place) = self.place_mut(id) {
            place.position = Some(position);
        }
    }

    /// Bumps the visit counter; returns the new count (0 if unknown id).
    pub fn record_visit(&mut self, id: PmPlaceId) -> u32 {
        match self.place_mut(id) {
            Some(place) => {
                place.visit_count += 1;
                place.visit_count
            }
            None => 0,
        }
    }

    /// Places the user has labelled (the §4 "tagged" set).
    pub fn labelled(&self) -> impl Iterator<Item = &PmPlace> {
        self.places.iter().filter(|p| p.label.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_algorithms::signature::DiscoveredVisit;
    use pmware_world::{CellId, Lac, Plmn};

    fn cell(id: u32) -> CellGlobalId {
        CellGlobalId {
            plmn: Plmn { mcc: 404, mnc: 45 },
            lac: Lac(1),
            cell: CellId(id),
        }
    }

    fn gca_place(id: u32, cells: &[u32]) -> DiscoveredPlace {
        DiscoveredPlace::new(
            DiscoveredPlaceId(id),
            PlaceSignature::Cells(cells.iter().map(|&c| cell(c)).collect()),
            vec![DiscoveredVisit {
                arrival: SimTime::from_seconds(0),
                departure: SimTime::from_seconds(600),
            }],
        )
    }

    #[test]
    fn first_reconcile_creates_everything() {
        let mut reg = PlaceRegistry::new();
        let out = reg.reconcile(
            &[gca_place(0, &[1, 2]), gca_place(1, &[5, 6])],
            SimTime::EPOCH,
            0.4,
        );
        assert_eq!(out.created.len(), 2);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.resolve(DiscoveredPlaceId(0)), Some(PmPlaceId(0)));
        assert_eq!(reg.resolve(DiscoveredPlaceId(1)), Some(PmPlaceId(1)));
    }

    #[test]
    fn recompute_keeps_stable_ids() {
        let mut reg = PlaceRegistry::new();
        reg.reconcile(&[gca_place(0, &[1, 2, 3])], SimTime::EPOCH, 0.4);
        // The next day's GCA run relabels the same physical place as id 7
        // with a slightly different signature.
        let out = reg.reconcile(
            &[gca_place(7, &[1, 2, 4])],
            SimTime::from_day_time(1, 0, 0, 0),
            0.4,
        );
        assert!(out.created.is_empty(), "same place must not duplicate");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.resolve(DiscoveredPlaceId(7)), Some(PmPlaceId(0)));
        // The signature was refreshed.
        assert!(reg.place(PmPlaceId(0)).unwrap().cells.contains(&cell(4)));
    }

    #[test]
    fn disjoint_signature_creates_new_place() {
        let mut reg = PlaceRegistry::new();
        reg.reconcile(&[gca_place(0, &[1, 2])], SimTime::EPOCH, 0.4);
        let out = reg.reconcile(
            &[gca_place(0, &[1, 2]), gca_place(1, &[8, 9])],
            SimTime::EPOCH,
            0.4,
        );
        assert_eq!(out.created, vec![PmPlaceId(1)]);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn wifi_augmentation_and_labels() {
        let mut reg = PlaceRegistry::new();
        reg.reconcile(&[gca_place(0, &[1, 2])], SimTime::EPOCH, 0.4);
        let id = PmPlaceId(0);
        reg.augment_with_wifi(id, [Bssid(10), Bssid(11)]);
        reg.augment_with_wifi(id, [Bssid(11), Bssid(12)]);
        assert_eq!(reg.place(id).unwrap().wifi_aps.len(), 3);
        assert!(reg.set_label(id, "Office"));
        assert!(!reg.set_label(PmPlaceId(9), "Nope"));
        assert_eq!(reg.labelled().count(), 1);
    }

    #[test]
    fn visits_and_position() {
        let mut reg = PlaceRegistry::new();
        reg.reconcile(&[gca_place(0, &[1])], SimTime::EPOCH, 0.4);
        let id = PmPlaceId(0);
        assert_eq!(reg.record_visit(id), 1);
        assert_eq!(reg.record_visit(id), 2);
        assert_eq!(reg.record_visit(PmPlaceId(5)), 0);
        let pos = GeoPoint::new(1.0, 2.0).unwrap();
        reg.set_position(id, pos);
        assert_eq!(reg.place(id).unwrap().position, Some(pos));
    }

    #[test]
    fn non_cell_signatures_are_skipped() {
        let mut reg = PlaceRegistry::new();
        let wifi_place = DiscoveredPlace::new(
            DiscoveredPlaceId(0),
            PlaceSignature::WifiAps([Bssid(1)].into_iter().collect()),
            vec![],
        );
        let out = reg.reconcile(&[wifi_place], SimTime::EPOCH, 0.4);
        assert!(out.created.is_empty());
        assert!(reg.is_empty());
    }

    #[test]
    #[should_panic(expected = "min_overlap")]
    fn bad_overlap_rejected() {
        let mut reg = PlaceRegistry::new();
        let _ = reg.reconcile(&[], SimTime::EPOCH, 7.0);
    }
}
