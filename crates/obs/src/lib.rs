//! Observability for the PMWare reproduction.
//!
//! The paper's evaluation is entirely observational — energy per sensing
//! interface (Fig. 1), sensing-trigger counts, place-detection behaviour,
//! and cloud request overhead. This crate gives every layer of the
//! reproduction one way to report those quantities:
//!
//! * [`metrics`] — a unified registry of counters, gauges, and
//!   fixed-bucket histograms. Counters are sharded over a small array of
//!   atomics so concurrent participants never contend on one cache line;
//!   snapshots sum the shards, which makes them independent of thread
//!   interleaving.
//! * [`trace`] — a sim-time structured tracing bus: events and spans keyed
//!   by [`SimTime`](pmware_world::SimTime), grouped per actor in bounded
//!   ring buffers, exported as deterministic JSONL.
//! * [`profiling`] — wall-clock timers, compiled in only under the
//!   `wallclock` cargo feature and meant for bench binaries. Simulation
//!   logic never reads real time.
//!
//! # Zero perturbation
//!
//! Instrumentation must never change what the simulation does. The whole
//! crate is built around that constraint:
//!
//! * every handle ([`Counter`], [`Gauge`], [`Histogram`]) is an
//!   `Option<Arc<…>>`; the disabled form is a `None` and every operation
//!   on it is an inlined no-op branch,
//! * no API draws randomness, reads the wall clock (outside `wallclock`),
//!   or performs I/O on the hot path,
//! * all recorded values are integers — energy is recorded in
//!   microjoules — so snapshot totals do not depend on floating-point
//!   accumulation order,
//! * snapshots and trace exports render through key-sorted maps, so the
//!   same facts always produce the same bytes.
//!
//! # Example
//!
//! ```
//! use pmware_obs::Obs;
//! use pmware_world::SimTime;
//!
//! let obs = Obs::with_trace(1024);
//! let samples = obs.counter("device_samples_total", &[("interface", "gsm")]);
//! samples.inc();
//! obs.event(SimTime::from_seconds(60), "pms.arrival", &[("place", "p1".into())]);
//!
//! let snapshot = obs.metrics_json().unwrap();
//! assert!(snapshot.contains("device_samples_total"));
//! let trace = obs.trace_jsonl().unwrap();
//! assert!(trace.contains("pms.arrival"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod profiling;
pub mod span;
pub mod trace;

use std::sync::Arc;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, SloReport,
    SnapshotValue,
};
pub use span::{SpanRecord, SpanSink};
pub use trace::{FieldValue, TraceBus};

use pmware_world::SimTime;

/// A cloneable handle bundling a metrics registry, a trace bus, and the
/// actor name instrumentation is attributed to.
///
/// Components store one of these and resolve metric handles through it.
/// The [`disabled`](Obs::disabled) form carries neither registry nor bus;
/// every operation through it is a no-op, which is what makes
/// instrumentation free to leave in place.
#[derive(Clone)]
pub struct Obs {
    metrics: Option<Arc<MetricsRegistry>>,
    trace: Option<Arc<TraceBus>>,
    spans: Option<Arc<SpanSink>>,
    actor: Arc<str>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::disabled()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("metrics", &self.metrics.is_some())
            .field("trace", &self.trace.is_some())
            .field("spans", &self.spans.is_some())
            .field("actor", &self.actor)
            .finish()
    }
}

impl Obs {
    /// A fully disabled handle: no registry, no bus, every call a no-op.
    pub fn disabled() -> Obs {
        Obs {
            metrics: None,
            trace: None,
            spans: None,
            actor: Arc::from("main"),
        }
    }

    /// A handle with a fresh metrics registry and no trace bus.
    pub fn new() -> Obs {
        Obs {
            metrics: Some(Arc::new(MetricsRegistry::new())),
            trace: None,
            spans: None,
            actor: Arc::from("main"),
        }
    }

    /// A handle with a fresh registry and a trace bus bounded to
    /// `capacity` records per actor.
    pub fn with_trace(capacity: usize) -> Obs {
        Obs {
            metrics: Some(Arc::new(MetricsRegistry::new())),
            trace: Some(Arc::new(TraceBus::new(capacity))),
            spans: None,
            actor: Arc::from("main"),
        }
    }

    /// This handle with a fresh [`SpanSink`] attached: components on the
    /// request path start recording causal request spans through it.
    pub fn with_spans(mut self) -> Obs {
        self.spans = Some(Arc::new(SpanSink::new()));
        self
    }

    /// A clone of this handle attributed to `actor`. The registry, bus,
    /// and span sink are shared; only the attribution changes.
    pub fn for_actor(&self, actor: &str) -> Obs {
        Obs {
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            spans: self.spans.clone(),
            actor: Arc::from(actor),
        }
    }

    /// This handle with the metrics registry of `fallback` substituted in
    /// when it has none of its own. Components with durable counters use
    /// this to keep a private always-on registry behind a caller-supplied
    /// handle that may be metrics-less.
    pub fn metrics_or(mut self, fallback: &Obs) -> Obs {
        if self.metrics.is_none() {
            self.metrics = fallback.metrics.clone();
        }
        self
    }

    /// The actor this handle attributes instrumentation to.
    pub fn actor(&self) -> &str {
        &self.actor
    }

    /// The shared registry, if metrics are enabled.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// The shared trace bus, if tracing is enabled.
    pub fn trace(&self) -> Option<&Arc<TraceBus>> {
        self.trace.as_ref()
    }

    /// The shared span sink, if request spans are enabled.
    pub fn spans(&self) -> Option<&Arc<SpanSink>> {
        self.spans.as_ref()
    }

    /// Whether metrics, tracing, or spans are live.
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_some() || self.trace.is_some() || self.spans.is_some()
    }

    /// Resolves a counter; a no-op handle when metrics are disabled.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.metrics {
            Some(r) => r.counter(name, labels),
            None => Counter::noop(),
        }
    }

    /// Resolves a gauge; a no-op handle when metrics are disabled.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.metrics {
            Some(r) => r.gauge(name, labels),
            None => Gauge::noop(),
        }
    }

    /// Resolves a histogram with the given bucket upper bounds; a no-op
    /// handle when metrics are disabled.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        match &self.metrics {
            Some(r) => r.histogram(name, labels, bounds),
            None => Histogram::noop(),
        }
    }

    /// Records a trace event for this handle's actor. No-op when tracing
    /// is disabled.
    #[inline]
    pub fn event(&self, at: SimTime, name: &str, fields: &[(&str, FieldValue)]) {
        if let Some(bus) = &self.trace {
            bus.event(&self.actor, at, name, fields);
        }
    }

    /// Records a sim-time span (an operation that began at `start` and
    /// finished at `end` in simulated time) for this handle's actor.
    #[inline]
    pub fn span(&self, start: SimTime, end: SimTime, name: &str, fields: &[(&str, FieldValue)]) {
        if let Some(bus) = &self.trace {
            bus.span(&self.actor, start, end, name, fields);
        }
    }

    /// A deterministic JSON rendering of the current metrics snapshot, or
    /// `None` when metrics are disabled. Trace-ring overflow counts are
    /// synced into the snapshot first (`obs_trace_dropped_total{actor}`),
    /// so a truncated trace is never silent.
    pub fn metrics_json(&self) -> Option<String> {
        let registry = self.metrics.as_ref()?;
        if let Some(bus) = &self.trace {
            for (actor, dropped) in bus.dropped_counts() {
                registry
                    .counter("obs_trace_dropped_total", &[("actor", &actor)])
                    .set(dropped);
            }
        }
        Some(registry.snapshot().to_json())
    }

    /// A deterministic JSONL rendering of the trace buffers, or `None`
    /// when tracing is disabled.
    pub fn trace_jsonl(&self) -> Option<String> {
        self.trace.as_ref().map(|b| b.export_jsonl())
    }

    /// A deterministic JSONL rendering of the recorded request spans, or
    /// `None` when spans are disabled.
    pub fn spans_jsonl(&self) -> Option<String> {
        self.spans.as_ref().map(|s| s.export_jsonl())
    }

    /// A Chrome-trace-format (`chrome://tracing`) rendering of the
    /// recorded request spans, or `None` when spans are disabled.
    pub fn spans_chrome(&self) -> Option<String> {
        self.spans.as_ref().map(|s| s.export_chrome())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        let c = obs.counter("x", &[]);
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        obs.event(SimTime::EPOCH, "e", &[]);
        assert!(obs.metrics_json().is_none());
        assert!(obs.trace_jsonl().is_none());
        assert!(!obs.is_enabled());
    }

    #[test]
    fn for_actor_shares_registry() {
        let obs = Obs::new();
        let a = obs.for_actor("a");
        let b = obs.for_actor("b");
        a.counter("hits", &[]).inc();
        b.counter("hits", &[]).add(2);
        // Same unlabelled counter from both actors: one cell.
        assert_eq!(obs.counter("hits", &[]).get(), 3);
        assert_eq!(a.actor(), "a");
    }

    #[test]
    fn metrics_or_substitutes_only_when_missing() {
        let private = Obs::new();
        private.counter("kept", &[]).inc();

        // Trace-only handle adopts the private registry.
        let trace_only = Obs {
            metrics: None,
            ..Obs::with_trace(16)
        };
        let merged = trace_only.metrics_or(&private);
        assert!(merged.metrics().is_some());
        assert_eq!(merged.counter("kept", &[]).get(), 1);

        // A handle with its own registry keeps it.
        let own = Obs::new().metrics_or(&private);
        assert_eq!(own.counter("kept", &[]).get(), 0);
    }

    /// Ring overflow must be visible in the metrics snapshot, not only as
    /// a trailing meta line deep in the trace JSONL.
    #[test]
    fn trace_drops_surface_in_metrics() {
        let obs = Obs::with_trace(2);
        let a = obs.for_actor("a");
        for i in 0..5 {
            a.event(SimTime::from_seconds(i), "e", &[]);
        }
        // Another actor stays under capacity and must not appear.
        obs.for_actor("quiet").event(SimTime::EPOCH, "e", &[]);
        let json = obs.metrics_json().expect("metrics live");
        assert!(
            json.contains("obs_trace_dropped_total{actor=\\\"a\\\"}"),
            "drops are silent: {json}"
        );
        assert_eq!(
            obs.metrics()
                .unwrap()
                .counter("obs_trace_dropped_total", &[("actor", "a")])
                .get(),
            3
        );
        assert!(!json.contains("obs_trace_dropped_total{actor=\\\"quiet\\\"}"));
    }

    #[test]
    fn spans_flow_through_the_handle() {
        let obs = Obs::disabled().with_spans();
        assert!(obs.is_enabled());
        let sink = obs.spans().expect("sink attached").clone();
        let trace = SpanSink::trace_id(obs.actor(), 1);
        let id = sink.alloc(trace);
        sink.record(trace, id, 0, "op:/x", 0, 42, &[]);
        let jsonl = obs.spans_jsonl().expect("spans live");
        assert!(jsonl.contains("\"name\":\"op:/x\""));
        assert!(obs.spans_chrome().unwrap().contains("\"traceEvents\""));
        // for_actor shares the sink.
        assert_eq!(obs.for_actor("b").spans().unwrap().len(), 1);
        assert!(Obs::disabled().spans_jsonl().is_none());
    }
}
