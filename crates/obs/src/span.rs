//! Causal request spans: per-trace parent/child trees in sim-micros.
//!
//! The trace bus ([`crate::trace`]) answers "what happened, per actor";
//! spans answer "what did *this logical operation* cost, end to end" —
//! one tree per client operation, covering every retry attempt, backoff
//! wait, injected fault, federation re-handshake, and failover replay
//! that the operation rode through. Times are **absolute simulated
//! microseconds** (`SimTime` seconds × 1 000 000 plus the sub-second
//! queue/service cost the latency model assigns), never wall time.
//!
//! # Determinism
//!
//! A trace id is an FNV-1a hash of the owning actor name and a per-actor
//! operation sequence number — a pure function of the workload, not of
//! scheduling. Span ids are allocated per trace, in call order; every
//! span of one trace is recorded from the single thread driving that
//! client, so ids are schedule-independent too. Both exports walk spans
//! sorted by `(trace, id)`: same seed, same bytes, at any thread count.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use serde_json::{Number, Value};

use crate::trace::FieldValue;

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace this span belongs to (see [`SpanSink::trace_id`]).
    pub trace: u64,
    /// Per-trace span id, allocated by [`SpanSink::alloc`] (1-based).
    pub id: u64,
    /// Parent span id within the trace; `0` marks a root span.
    pub parent: u64,
    /// Operation name, e.g. `op:/api/v1/places/sync` or `fault:delay`.
    pub name: String,
    /// Absolute simulated start, microseconds.
    pub start_us: u64,
    /// Absolute simulated end, microseconds (`>= start_us`).
    pub end_us: u64,
    /// Structured annotations (status codes, attempt numbers, …).
    pub fields: Vec<(String, FieldValue)>,
}

#[derive(Debug, Default)]
struct TraceSpans {
    next_id: u64,
    spans: Vec<SpanRecord>,
}

/// The span collector: per-trace id allocation plus deterministic
/// exports. Shared behind an `Arc` by every component that annotates a
/// request's causal path.
#[derive(Default)]
pub struct SpanSink {
    traces: Mutex<BTreeMap<u64, TraceSpans>>,
}

impl std::fmt::Debug for SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanSink")
            .field("traces", &self.traces.lock().len())
            .finish()
    }
}

impl SpanSink {
    /// An empty sink.
    pub fn new() -> SpanSink {
        SpanSink::default()
    }

    /// The deterministic trace id for operation number `seq` of `user`:
    /// FNV-1a over the user string then the sequence number. Never zero
    /// (zero is the "no trace attached" sentinel in request contexts).
    pub fn trace_id(user: &str, seq: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in user.as_bytes() {
            h = (h ^ u64::from(*byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        for byte in seq.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= h >> 33;
        if h == 0 {
            1
        } else {
            h
        }
    }

    /// Allocates the next span id of `trace` (1-based). Parents allocate
    /// before their children, so a parent's id is known while its
    /// children are still running.
    pub fn alloc(&self, trace: u64) -> u64 {
        let mut traces = self.traces.lock();
        let entry = traces.entry(trace).or_default();
        entry.next_id += 1;
        entry.next_id
    }

    /// Records one finished span.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        trace: u64,
        id: u64,
        parent: u64,
        name: &str,
        start_us: u64,
        end_us: u64,
        fields: &[(&str, FieldValue)],
    ) {
        let mut traces = self.traces.lock();
        traces.entry(trace).or_default().spans.push(SpanRecord {
            trace,
            id,
            parent,
            name: name.to_string(),
            start_us,
            end_us,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Total spans recorded so far.
    pub fn len(&self) -> usize {
        self.traces.lock().values().map(|t| t.spans.len()).sum()
    }

    /// Whether no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every span, sorted by `(trace, id)`.
    pub fn sorted_spans(&self) -> Vec<SpanRecord> {
        let traces = self.traces.lock();
        let mut out: Vec<SpanRecord> = traces
            .values()
            .flat_map(|t| t.spans.iter().cloned())
            .collect();
        out.sort_by_key(|s| (s.trace, s.id));
        out
    }

    /// Deterministic JSONL export: one key-sorted JSON object per span,
    /// spans sorted by `(trace, id)`. Same facts ⇒ same bytes.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.sorted_spans() {
            let mut obj = BTreeMap::new();
            obj.insert(
                "end_us".to_string(),
                Value::Number(Number::PosInt(span.end_us)),
            );
            let mut fields = BTreeMap::new();
            for (k, v) in &span.fields {
                fields.insert(k.clone(), v.to_value());
            }
            obj.insert("fields".to_string(), Value::Object(fields));
            obj.insert("id".to_string(), Value::Number(Number::PosInt(span.id)));
            obj.insert("name".to_string(), Value::String(span.name.clone()));
            obj.insert(
                "parent".to_string(),
                Value::Number(Number::PosInt(span.parent)),
            );
            obj.insert(
                "start_us".to_string(),
                Value::Number(Number::PosInt(span.start_us)),
            );
            obj.insert(
                "trace".to_string(),
                Value::Number(Number::PosInt(span.trace)),
            );
            out.push_str(&Value::Object(obj).to_string());
            out.push('\n');
        }
        out
    }

    /// Chrome-trace-format export (`chrome://tracing` / Perfetto): one
    /// complete (`"ph":"X"`) event per span, `pid` = trace id, `tid` =
    /// parent span id (siblings share a row), timestamps in simulated
    /// microseconds. Event order matches [`SpanSink::export_jsonl`].
    pub fn export_chrome(&self) -> String {
        let mut events = Vec::new();
        for span in self.sorted_spans() {
            let mut obj = BTreeMap::new();
            let mut args = BTreeMap::new();
            for (k, v) in &span.fields {
                args.insert(k.clone(), v.to_value());
            }
            args.insert("id".to_string(), Value::Number(Number::PosInt(span.id)));
            obj.insert("args".to_string(), Value::Object(args));
            obj.insert(
                "dur".to_string(),
                Value::Number(Number::PosInt(span.end_us.saturating_sub(span.start_us))),
            );
            obj.insert("name".to_string(), Value::String(span.name.clone()));
            obj.insert("ph".to_string(), Value::String("X".to_string()));
            obj.insert("pid".to_string(), Value::Number(Number::PosInt(span.trace)));
            obj.insert(
                "tid".to_string(),
                Value::Number(Number::PosInt(span.parent)),
            );
            obj.insert(
                "ts".to_string(),
                Value::Number(Number::PosInt(span.start_us)),
            );
            events.push(Value::Object(obj));
        }
        let mut root = BTreeMap::new();
        root.insert(
            "displayTimeUnit".to_string(),
            Value::String("ms".to_string()),
        );
        root.insert("traceEvents".to_string(), Value::Array(events));
        Value::Object(root).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_stable_and_distinct() {
        let a = SpanSink::trace_id("p0001", 1);
        assert_eq!(a, SpanSink::trace_id("p0001", 1), "pure function");
        assert_ne!(a, SpanSink::trace_id("p0001", 2));
        assert_ne!(a, SpanSink::trace_id("p0002", 1));
        assert_ne!(a, 0, "zero is the no-trace sentinel");
    }

    #[test]
    fn alloc_is_per_trace_and_one_based() {
        let sink = SpanSink::new();
        assert_eq!(sink.alloc(7), 1);
        assert_eq!(sink.alloc(7), 2);
        assert_eq!(sink.alloc(9), 1, "each trace allocates independently");
    }

    #[test]
    fn export_sorts_by_trace_then_id() {
        let sink = SpanSink::new();
        // Recorded out of order on purpose: children finish before roots.
        let t = 5;
        let root = sink.alloc(t);
        let child = sink.alloc(t);
        sink.record(t, child, root, "attempt", 1_000_000, 1_004_000, &[]);
        sink.record(t, root, 0, "op:/x", 1_000_000, 1_004_000, &[]);
        sink.record(
            2,
            sink.alloc(2),
            0,
            "op:/y",
            0,
            10,
            &[("status", 200u64.into())],
        );
        let jsonl = sink.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"trace\":2"), "{jsonl}");
        assert!(lines[1].contains("\"id\":1") && lines[1].contains("\"name\":\"op:/x\""));
        assert!(lines[2].contains("\"id\":2") && lines[2].contains("\"parent\":1"));
    }

    #[test]
    fn same_facts_same_bytes() {
        let build = |other_first: bool| {
            let sink = SpanSink::new();
            let records: &[(u64, &str)] = &[(3, "a"), (8, "b")];
            let order: Vec<usize> = if other_first { vec![1, 0] } else { vec![0, 1] };
            // Pre-allocate ids in fixed per-trace order, record in either.
            let ids: Vec<u64> = records.iter().map(|(t, _)| sink.alloc(*t)).collect();
            for i in order {
                let (t, name) = records[i];
                sink.record(t, ids[i], 0, name, 100, 200, &[]);
            }
            (sink.export_jsonl(), sink.export_chrome())
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn chrome_trace_shape() {
        let sink = SpanSink::new();
        let t = SpanSink::trace_id("p0000", 1);
        let id = sink.alloc(t);
        sink.record(t, id, 0, "op:/api/v1/health", 2_000_000, 2_000_450, &[]);
        let chrome = sink.export_chrome();
        assert!(
            chrome.starts_with("{\"displayTimeUnit\":\"ms\""),
            "{chrome}"
        );
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"dur\":450"));
        assert!(chrome.contains("\"ts\":2000000"));
    }
}
