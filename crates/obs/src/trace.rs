//! The sim-time structured tracing bus.
//!
//! Events and spans are keyed by [`SimTime`] — the clock the simulation
//! itself runs on — never by wall time, so a trace taken on a fast
//! machine is byte-identical to one taken on a slow machine. Records are
//! grouped per *actor* (a participant `p0007`, the `cloud`, the
//! `transport` shim) in bounded ring buffers. One actor is only ever
//! written by one thread (each participant runs on a single worker; the
//! shared layers either do not trace per-request or are driven
//! single-threaded), so per-actor record order is deterministic, and the
//! JSONL export walks actors in sorted order — same facts, same bytes,
//! regardless of thread count.

use std::collections::{BTreeMap, VecDeque};

use parking_lot::Mutex;
use pmware_world::SimTime;
use serde_json::{Number, Value};

/// A trace field value: integers or short strings. No floats — field
/// rendering must be byte-stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A string.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    pub(crate) fn to_value(&self) -> Value {
        match self {
            FieldValue::U64(v) => Value::Number(Number::PosInt(*v)),
            FieldValue::I64(v) => Value::Number(Number::from_i64(*v)),
            FieldValue::Str(s) => Value::String(s.clone()),
        }
    }
}

#[derive(Debug)]
struct TraceRecord {
    /// Per-actor sequence number, monotonically increasing even when the
    /// ring drops old records.
    seq: u64,
    /// Sim-time of the event (span start, for spans).
    at: u64,
    /// Sim-time span end; `None` for point events.
    end: Option<u64>,
    name: String,
    fields: Vec<(String, FieldValue)>,
}

#[derive(Debug, Default)]
struct ActorRing {
    records: VecDeque<TraceRecord>,
    next_seq: u64,
    dropped: u64,
}

/// The bus: per-actor bounded rings of sim-time records.
pub struct TraceBus {
    actors: Mutex<BTreeMap<String, ActorRing>>,
    capacity: usize,
}

impl std::fmt::Debug for TraceBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBus")
            .field("actors", &self.actors.lock().len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl TraceBus {
    /// A bus keeping at most `capacity` records per actor (oldest records
    /// are dropped first; the drop count is reported in the export).
    pub fn new(capacity: usize) -> Self {
        TraceBus {
            actors: Mutex::new(BTreeMap::new()),
            capacity: capacity.max(1),
        }
    }

    /// Records a point event.
    pub fn event(&self, actor: &str, at: SimTime, name: &str, fields: &[(&str, FieldValue)]) {
        self.push(actor, at, None, name, fields);
    }

    /// Records a span: an operation covering `[start, end]` in sim time.
    pub fn span(
        &self,
        actor: &str,
        start: SimTime,
        end: SimTime,
        name: &str,
        fields: &[(&str, FieldValue)],
    ) {
        self.push(actor, start, Some(end), name, fields);
    }

    fn push(
        &self,
        actor: &str,
        at: SimTime,
        end: Option<SimTime>,
        name: &str,
        fields: &[(&str, FieldValue)],
    ) {
        let mut actors = self.actors.lock();
        let ring = actors.entry(actor.to_string()).or_default();
        if ring.records.len() == self.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.records.push_back(TraceRecord {
            seq,
            at: at.as_seconds(),
            end: end.map(|t| t.as_seconds()),
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Per-actor ring-overflow drop counts, sorted by actor, for actors
    /// that dropped at least one record. The metrics snapshot surfaces
    /// these as `obs_trace_dropped_total{actor}` so a truncated trace is
    /// visible without reading the JSONL's trailing meta lines.
    pub fn dropped_counts(&self) -> Vec<(String, u64)> {
        self.actors
            .lock()
            .iter()
            .filter(|(_, ring)| ring.dropped > 0)
            .map(|(actor, ring)| (actor.clone(), ring.dropped))
            .collect()
    }

    /// Total records currently buffered, across actors.
    pub fn len(&self) -> usize {
        self.actors.lock().values().map(|r| r.records.len()).sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deterministic JSONL export: one JSON object per line, actors in
    /// sorted order, records in per-actor sequence order. Each line has
    /// key-sorted fields `actor`, `at`, (`end`,) `kind`, `name`, `seq`,
    /// and a nested `fields` object. Actors whose ring overflowed get a
    /// trailing `kind:"meta"` line carrying the drop count.
    pub fn export_jsonl(&self) -> String {
        let actors = self.actors.lock();
        let mut out = String::new();
        for (actor, ring) in actors.iter() {
            for record in &ring.records {
                let mut obj = BTreeMap::new();
                obj.insert("actor".to_string(), Value::String(actor.clone()));
                obj.insert("at".to_string(), Value::Number(Number::PosInt(record.at)));
                let kind = match record.end {
                    Some(end) => {
                        obj.insert("end".to_string(), Value::Number(Number::PosInt(end)));
                        "span"
                    }
                    None => "event",
                };
                obj.insert("kind".to_string(), Value::String(kind.to_string()));
                obj.insert("name".to_string(), Value::String(record.name.clone()));
                obj.insert("seq".to_string(), Value::Number(Number::PosInt(record.seq)));
                let mut fields = BTreeMap::new();
                for (k, v) in &record.fields {
                    fields.insert(k.clone(), v.to_value());
                }
                obj.insert("fields".to_string(), Value::Object(fields));
                out.push_str(&Value::Object(obj).to_string());
                out.push('\n');
            }
            if ring.dropped > 0 {
                let mut obj = BTreeMap::new();
                obj.insert("actor".to_string(), Value::String(actor.clone()));
                obj.insert("kind".to_string(), Value::String("meta".to_string()));
                obj.insert("name".to_string(), Value::String("dropped".to_string()));
                obj.insert(
                    "dropped".to_string(),
                    Value::Number(Number::PosInt(ring.dropped)),
                );
                out.push_str(&Value::Object(obj).to_string());
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_seconds(s)
    }

    #[test]
    fn export_is_sorted_by_actor_and_sequence() {
        let bus = TraceBus::new(16);
        bus.event("p0002", t(10), "b", &[]);
        bus.event("p0001", t(20), "a", &[("n", 1u64.into())]);
        bus.event("p0001", t(30), "c", &[]);
        let jsonl = bus.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"actor\":\"p0001\"") && lines[0].contains("\"name\":\"a\""));
        assert!(lines[1].contains("\"actor\":\"p0001\"") && lines[1].contains("\"name\":\"c\""));
        assert!(lines[2].contains("\"actor\":\"p0002\""));
    }

    #[test]
    fn ring_is_bounded_and_reports_drops() {
        let bus = TraceBus::new(2);
        for i in 0..5u64 {
            bus.event("a", t(i), "e", &[]);
        }
        assert_eq!(bus.len(), 2);
        let jsonl = bus.export_jsonl();
        assert!(jsonl.contains("\"dropped\":3"), "{jsonl}");
        // The surviving records keep their original sequence numbers.
        assert!(jsonl.contains("\"seq\":3") && jsonl.contains("\"seq\":4"));
    }

    #[test]
    fn spans_carry_both_endpoints() {
        let bus = TraceBus::new(16);
        bus.span(
            "m",
            t(100),
            t(160),
            "maintenance",
            &[("budget", 12u64.into())],
        );
        let jsonl = bus.export_jsonl();
        assert!(jsonl.contains("\"at\":100"));
        assert!(jsonl.contains("\"end\":160"));
        assert!(jsonl.contains("\"kind\":\"span\""));
    }

    #[test]
    fn same_facts_same_bytes() {
        let make = |order: &[(&str, u64)]| {
            let bus = TraceBus::new(8);
            for (actor, at) in order {
                bus.event(actor, t(*at), "e", &[]);
            }
            bus.export_jsonl()
        };
        // Different interleavings of *different* actors export identically
        // as long as each actor's own order is fixed.
        let a = make(&[("x", 1), ("y", 2), ("x", 3)]);
        let b_bus = TraceBus::new(8);
        b_bus.event("y", t(2), "e", &[]);
        b_bus.event("x", t(1), "e", &[]);
        b_bus.event("x", t(3), "e", &[]);
        assert_eq!(a, b_bus.export_jsonl());
    }
}
