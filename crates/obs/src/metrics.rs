//! The unified metrics registry: counters, gauges, fixed-bucket
//! histograms, and deterministic point-in-time snapshots.
//!
//! # Determinism
//!
//! Counter cells are sharded over a fixed array of atomics; each thread
//! picks one shard (assigned round-robin from a process-wide counter, no
//! thread-id hashing, no randomness) and a snapshot sums all shards.
//! Addition over `u64` is associative and commutative, so the snapshot is
//! independent of which threads incremented what, and a run with
//! `--threads 8` snapshots byte-identically to the same run with
//! `--threads 1`. Histograms store only integer bucket counts and an
//! integer sum, for the same reason — no float accumulation whose result
//! depends on merge order.
//!
//! # Label cardinality
//!
//! Labels are baked into the registry key at resolution time. Callers are
//! expected to keep cardinality bounded and deterministic: participant
//! indices (`user="p0007"`), interface names, endpoint names, fault
//! kinds. Nothing derived from racy state (server-side user-id
//! assignment, thread ids) may appear in a label — see DESIGN.md § 5e.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde_json::{Number, Value};

/// Shards per counter cell. Small enough to stay cheap to sum, large
/// enough that a handful of worker threads rarely share a shard.
const COUNTER_SHARDS: usize = 8;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD_INDEX: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// The shard this thread writes counters to, assigned on first use.
fn shard_index() -> usize {
    SHARD_INDEX.with(|cell| {
        let v = cell.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            cell.set(v);
            v
        }
    })
}

#[derive(Debug)]
struct CounterCell {
    shards: [AtomicU64; COUNTER_SHARDS],
}

impl CounterCell {
    fn new() -> Self {
        CounterCell {
            shards: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn sum(&self) -> u64 {
        self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

/// A monotonically increasing counter handle.
///
/// Cloning is cheap; clones share the same cell. The no-op form (from a
/// disabled [`Obs`](crate::Obs)) makes every operation an inlined branch
/// on `None`.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<CounterCell>>);

impl Counter {
    /// A handle that records nothing and reads zero.
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.shards[shard_index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across shards (zero for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.sum())
    }

    /// Overwrites the total. Meant for re-seeding a handle from durable
    /// state (checkpoint restore, re-binding to a new registry); not safe
    /// to race with concurrent `add`s.
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.0 {
            for (i, shard) in cell.shards.iter().enumerate() {
                shard.store(if i == 0 { value } else { 0 }, Ordering::Relaxed);
            }
        }
    }
}

/// A gauge: a value that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A handle that records nothing and reads zero.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value (zero for a no-op handle).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCell {
    /// Inclusive upper bounds; `buckets` has one extra slot for overflow.
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCell {
    fn new(bounds: &[u64]) -> Self {
        HistogramCell {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram over integer values.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl Histogram {
    /// A handle that records nothing.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(cell) = &self.0 {
            let idx = cell.bounds.partition_point(|&b| b < value);
            cell.buckets[idx].fetch_add(1, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// The number of observations so far.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// The sum of observed values so far.
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
enum MetricEntry {
    Counter(Arc<CounterCell>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCell>),
}

/// The registry: a name+labels → metric map shared by every layer.
///
/// Resolution (`counter`/`gauge`/`histogram`) takes a lock and is meant
/// to happen once, at component construction; the returned handles are
/// lock-free. Resolving the same name and labels twice yields handles on
/// the same cell. Resolving a name as two different metric types is a
/// programming error and panics.
pub struct MetricsRegistry {
    entries: Mutex<BTreeMap<String, MetricEntry>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("len", &self.entries.lock().len())
            .finish()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders the canonical key `name{k1="v1",k2="v2"}` with labels sorted
/// by key. The snapshot's map order (and therefore its JSON byte order)
/// follows from this rendering.
fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut key = String::with_capacity(name.len() + 16 * sorted.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '"' => key.push_str("\\\""),
                '\\' => key.push_str("\\\\"),
                other => key.push(other),
            }
        }
        key.push('"');
    }
    key.push('}');
    key
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// Resolves (creating if needed) the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = metric_key(name, labels);
        let mut entries = self.entries.lock();
        let entry = entries
            .entry(key.clone())
            .or_insert_with(|| MetricEntry::Counter(Arc::new(CounterCell::new())));
        match entry {
            MetricEntry::Counter(cell) => Counter(Some(cell.clone())),
            _ => panic!("metric {key} already registered with a different type"),
        }
    }

    /// Resolves (creating if needed) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = metric_key(name, labels);
        let mut entries = self.entries.lock();
        let entry = entries
            .entry(key.clone())
            .or_insert_with(|| MetricEntry::Gauge(Arc::new(AtomicI64::new(0))));
        match entry {
            MetricEntry::Gauge(cell) => Gauge(Some(cell.clone())),
            _ => panic!("metric {key} already registered with a different type"),
        }
    }

    /// Resolves (creating if needed) the histogram `name{labels}` with the
    /// given inclusive bucket upper bounds (an overflow bucket is added).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        let key = metric_key(name, labels);
        let mut entries = self.entries.lock();
        let entry = entries
            .entry(key.clone())
            .or_insert_with(|| MetricEntry::Histogram(Arc::new(HistogramCell::new(bounds))));
        match entry {
            MetricEntry::Histogram(cell) => {
                assert_eq!(
                    cell.bounds, bounds,
                    "metric {key} already registered with different bucket bounds"
                );
                Histogram(Some(cell.clone()))
            }
            _ => panic!("metric {key} already registered with a different type"),
        }
    }

    /// A point-in-time snapshot of every registered metric.
    ///
    /// Taken between simulation phases (not while writers race) the
    /// snapshot is exact; taken concurrently it is a consistent-enough
    /// relaxed read of each cell.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock();
        let mut out = BTreeMap::new();
        for (key, entry) in entries.iter() {
            let value = match entry {
                MetricEntry::Counter(cell) => SnapshotValue::Counter(cell.sum()),
                MetricEntry::Gauge(cell) => SnapshotValue::Gauge(cell.load(Ordering::Relaxed)),
                MetricEntry::Histogram(cell) => SnapshotValue::Histogram(HistogramSnapshot {
                    bounds: cell.bounds.clone(),
                    buckets: cell
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                    count: cell.count.load(Ordering::Relaxed),
                    sum: cell.sum.load(Ordering::Relaxed),
                }),
            };
            out.insert(key.clone(), value);
        }
        MetricsSnapshot { entries: out }
    }
}

/// A frozen histogram, as captured by [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; one extra overflow bucket at the end.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Exact bucket-resolution quantile: the inclusive upper bound of the
    /// bucket holding the rank-⌈q·count⌉ observation (observations within
    /// a bucket are indistinguishable, so the bound *is* the tightest
    /// value the histogram can certify the quantile to be ≤). Overflow
    /// observations report [`u64::MAX`]; an empty histogram has no
    /// quantiles at all and answers `None`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    /// Observations certifiably ≤ `target`: the sum of buckets whose
    /// upper bound is ≤ `target`. Bucket-conservative — an observation in
    /// a bucket straddling the target counts as a miss.
    pub fn count_within(&self, target: u64) -> u64 {
        self.bounds
            .iter()
            .zip(&self.buckets)
            .take_while(|(&bound, _)| bound <= target)
            .map(|(_, &bucket)| bucket)
            .sum()
    }

    /// SLO attainment against a latency target (same unit as the
    /// observations, canonically microseconds).
    pub fn slo_report(&self, target_us: u64) -> SloReport {
        let p50_us = self.quantile(0.50).unwrap_or(0);
        let p99_us = self.quantile(0.99).unwrap_or(0);
        SloReport {
            target_us,
            count: self.count,
            within: self.count_within(target_us),
            p50_us,
            p99_us,
            p999_us: self.quantile(0.999).unwrap_or(0),
            attained: p99_us <= target_us,
        }
    }
}

/// A latency histogram summarized against an SLO target — the shape the
/// `slo_report` surfaces render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloReport {
    /// The target the report was evaluated against.
    pub target_us: u64,
    /// Total observations.
    pub count: u64,
    /// Observations certifiably within the target (bucket-conservative).
    pub within: u64,
    /// Median, at bucket resolution (0 when empty).
    pub p50_us: u64,
    /// 99th percentile, at bucket resolution (0 when empty).
    pub p99_us: u64,
    /// 99.9th percentile, at bucket resolution (0 when empty).
    pub p999_us: u64,
    /// Whether the p99 meets the target (vacuously true when empty).
    pub attained: bool,
}

impl SloReport {
    /// Attained fraction in `[0, 1]` (1.0 when empty).
    pub fn attainment(&self) -> f64 {
        if self.count == 0 {
            1.0
        } else {
            self.within as f64 / self.count as f64
        }
    }
}

/// One frozen metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotValue {
    /// A counter total.
    Counter(u64),
    /// A gauge value.
    Gauge(i64),
    /// A histogram.
    Histogram(HistogramSnapshot),
}

/// A point-in-time capture of the whole registry, key-sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, SnapshotValue>,
}

impl MetricsSnapshot {
    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a metric by its canonical key, e.g.
    /// `device_samples_total{interface="gsm",user="p0003"}`.
    pub fn get(&self, key: &str) -> Option<&SnapshotValue> {
        self.entries.get(key)
    }

    /// The counter total under `key`, or zero if absent or not a counter.
    pub fn counter_value(&self, key: &str) -> u64 {
        match self.entries.get(key) {
            Some(SnapshotValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Sums every counter whose canonical key starts with `prefix`.
    pub fn counter_sum_with_prefix(&self, prefix: &str) -> u64 {
        self.entries
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| match v {
                SnapshotValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// Iterates `(key, value)` in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SnapshotValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sums every histogram whose canonical key starts with `prefix`
    /// into one snapshot — e.g. all `cloud_request_latency_us{…}` label
    /// combinations into an all-endpoints latency distribution. `None`
    /// when no histogram matches.
    ///
    /// # Panics
    ///
    /// Panics when matching histograms carry different bucket bounds —
    /// a prefix that mixes families is a caller bug, not data.
    pub fn merged_histogram(&self, prefix: &str) -> Option<HistogramSnapshot> {
        let mut merged: Option<HistogramSnapshot> = None;
        for (key, value) in self.iter() {
            if !key.starts_with(prefix) {
                continue;
            }
            let SnapshotValue::Histogram(h) = value else {
                continue;
            };
            match &mut merged {
                None => merged = Some(h.clone()),
                Some(m) => {
                    assert_eq!(
                        m.bounds, h.bounds,
                        "histogram prefix {prefix:?} mixes bucket bounds"
                    );
                    for (slot, bucket) in m.buckets.iter_mut().zip(&h.buckets) {
                        *slot += bucket;
                    }
                    m.count += h.count;
                    m.sum += h.sum;
                }
            }
        }
        merged
    }

    /// Deterministic JSON: one key-sorted object whose values are either
    /// `{"type":"counter","value":n}`, `{"type":"gauge","value":n}`, or
    /// `{"type":"histogram","bounds":[…],"buckets":[…],"count":n,"sum":n}`.
    /// Same facts ⇒ same bytes, regardless of thread count.
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();
        for (key, value) in &self.entries {
            let rendered = match value {
                SnapshotValue::Counter(v) => {
                    let mut obj = BTreeMap::new();
                    obj.insert("type".to_string(), Value::String("counter".to_string()));
                    obj.insert("value".to_string(), Value::Number(Number::PosInt(*v)));
                    Value::Object(obj)
                }
                SnapshotValue::Gauge(v) => {
                    let mut obj = BTreeMap::new();
                    obj.insert("type".to_string(), Value::String("gauge".to_string()));
                    obj.insert("value".to_string(), Value::Number(Number::from_i64(*v)));
                    Value::Object(obj)
                }
                SnapshotValue::Histogram(h) => {
                    let mut obj = BTreeMap::new();
                    obj.insert("type".to_string(), Value::String("histogram".to_string()));
                    obj.insert(
                        "bounds".to_string(),
                        Value::Array(
                            h.bounds
                                .iter()
                                .map(|&b| Value::Number(Number::PosInt(b)))
                                .collect(),
                        ),
                    );
                    obj.insert(
                        "buckets".to_string(),
                        Value::Array(
                            h.buckets
                                .iter()
                                .map(|&b| Value::Number(Number::PosInt(b)))
                                .collect(),
                        ),
                    );
                    obj.insert("count".to_string(), Value::Number(Number::PosInt(h.count)));
                    obj.insert("sum".to_string(), Value::Number(Number::PosInt(h.sum)));
                    Value::Object(obj)
                }
            };
            root.insert(key.clone(), rendered);
        }
        Value::Object(root).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = registry.clone();
            handles.push(std::thread::spawn(move || {
                let c = r.counter("work_total", &[("stage", "a")]);
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            registry.counter("work_total", &[("stage", "a")]).get(),
            4000
        );
    }

    #[test]
    fn merged_histogram_sums_label_combinations() {
        let registry = MetricsRegistry::new();
        let bounds = [10, 100, 1000];
        registry
            .histogram("latency_us", &[("endpoint", "a")], &bounds)
            .observe(5);
        registry
            .histogram("latency_us", &[("endpoint", "b")], &bounds)
            .observe(50);
        registry
            .histogram("latency_us", &[("endpoint", "b")], &bounds)
            .observe(5000);
        registry.counter("latency_us_shed", &[]).inc();
        let merged = registry
            .snapshot()
            .merged_histogram("latency_us{")
            .expect("histograms present");
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 5055);
        assert_eq!(merged.buckets, vec![1, 1, 0, 1]);
        assert_eq!(merged.quantile(0.5), Some(100));
        assert!(registry.snapshot().merged_histogram("nope").is_none());
    }

    #[test]
    fn snapshot_is_merge_order_independent() {
        // Two registries fed the same facts from different "thread"
        // interleavings snapshot to the same bytes.
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("x", &[]).add(7);
        a.counter("y", &[("u", "p1")]).add(2);
        b.counter("y", &[("u", "p1")]).add(2);
        b.counter("x", &[]).add(3);
        b.counter("x", &[]).add(4);
        assert_eq!(a.snapshot().to_json(), b.snapshot().to_json());
    }

    #[test]
    fn label_order_is_canonical() {
        let r = MetricsRegistry::new();
        r.counter("m", &[("b", "2"), ("a", "1")]).inc();
        let handle = r.counter("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(handle.get(), 1, "label order must not create a second cell");
        assert!(r.snapshot().get("m{a=\"1\",b=\"2\"}").is_some());
    }

    #[test]
    fn histogram_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat", &[], &[10, 100, 1000]);
        for v in [1, 10, 11, 99, 5000] {
            h.observe(v);
        }
        let snap = r.snapshot();
        match snap.get("lat") {
            Some(SnapshotValue::Histogram(hs)) => {
                assert_eq!(hs.buckets, vec![2, 2, 0, 1]);
                assert_eq!(hs.count, 5);
                assert_eq!(hs.sum, 1 + 10 + 11 + 99 + 5000);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn counter_set_reseeds() {
        let r = MetricsRegistry::new();
        let c = r.counter("durable", &[]);
        c.add(5);
        c.set(42);
        assert_eq!(c.get(), 42);
        c.inc();
        assert_eq!(c.get(), 43);
    }

    #[test]
    fn prefix_sum() {
        let r = MetricsRegistry::new();
        r.counter("req_total", &[("e", "a")]).add(1);
        r.counter("req_total", &[("e", "b")]).add(2);
        r.counter("other", &[]).add(99);
        assert_eq!(r.snapshot().counter_sum_with_prefix("req_total"), 3);
    }

    /// Pins the histogram snapshot JSON shape — bucket bounds must be in
    /// the export, or the counts are uninterpretable without reading the
    /// registering call site.
    #[test]
    fn histogram_json_carries_bounds() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat_us", &[("endpoint", "sync")], &[100, 1_000]);
        h.observe(50);
        h.observe(700);
        h.observe(9_999);
        assert_eq!(
            r.snapshot().to_json(),
            "{\"lat_us{endpoint=\\\"sync\\\"}\":{\"bounds\":[100,1000],\
             \"buckets\":[1,1,1],\"count\":3,\"sum\":10749,\"type\":\"histogram\"}}"
        );
    }

    fn snap(bounds: &[u64], values: &[u64]) -> HistogramSnapshot {
        let r = MetricsRegistry::new();
        let h = r.histogram("q", &[], bounds);
        for &v in values {
            h.observe(v);
        }
        match r.snapshot().get("q") {
            Some(SnapshotValue::Histogram(hs)) => hs.clone(),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let hs = snap(&[10, 100], &[]);
        assert_eq!(hs.quantile(0.5), None);
        assert_eq!(hs.quantile(0.99), None);
        let report = hs.slo_report(50);
        assert_eq!(report.p99_us, 0);
        assert!(report.attained, "an empty histogram misses no target");
        assert_eq!(report.attainment(), 1.0);
    }

    #[test]
    fn quantile_single_bucket() {
        // Every observation in one bucket: every quantile is its bound.
        let hs = snap(&[10, 100, 1000], &[20, 30, 40, 50]);
        assert_eq!(hs.quantile(0.0), Some(100));
        assert_eq!(hs.quantile(0.5), Some(100));
        assert_eq!(hs.quantile(0.99), Some(100));
        assert_eq!(hs.quantile(0.999), Some(100));
        assert_eq!(hs.quantile(1.0), Some(100));
    }

    #[test]
    fn quantile_overflow_bucket_is_max() {
        let hs = snap(&[10], &[5, 5, 99]);
        assert_eq!(hs.quantile(0.5), Some(10), "rank 2 of 3 is in bucket 0");
        assert_eq!(hs.quantile(0.99), Some(u64::MAX), "rank 3 overflowed");
        assert!(!hs.slo_report(10).attained);
    }

    #[test]
    fn quantile_pins_p50_p99_p999() {
        // 1000 observations: 900 in ≤100, 90 in ≤1000, 9 in ≤10_000, 1
        // overflow. Ranks: p50→500 (≤100), p99→990 (≤1000), p999→999
        // (≤10_000).
        let mut values = Vec::new();
        values.extend(std::iter::repeat_n(50u64, 900));
        values.extend(std::iter::repeat_n(500u64, 90));
        values.extend(std::iter::repeat_n(5_000u64, 9));
        values.push(99_999);
        let hs = snap(&[100, 1_000, 10_000], &values);
        assert_eq!(hs.quantile(0.50), Some(100));
        assert_eq!(hs.quantile(0.99), Some(1_000));
        assert_eq!(hs.quantile(0.999), Some(10_000));
        assert_eq!(hs.quantile(1.0), Some(u64::MAX));
        let report = hs.slo_report(1_000);
        assert_eq!(report.within, 990);
        assert!(report.attained);
        assert!(!hs.slo_report(100).attained);
    }

    #[test]
    fn count_within_is_bucket_conservative() {
        let hs = snap(&[10, 100], &[5, 50]);
        // A target between bounds certifies only the ≤10 bucket.
        assert_eq!(hs.count_within(99), 1);
        assert_eq!(hs.count_within(100), 2);
        assert_eq!(hs.count_within(9), 0);
    }
}

#[cfg(test)]
mod quantile_properties {
    use super::*;
    use proptest::prelude::*;

    /// The bucket bound the naive oracle puts `value` in.
    fn bound_of(bounds: &[u64], value: u64) -> u64 {
        bounds
            .iter()
            .copied()
            .find(|&b| value <= b)
            .unwrap_or(u64::MAX)
    }

    proptest! {
        /// The histogram quantile must equal the bucket bound of the
        /// naive sorted-vec quantile at the same rank, for any values and
        /// any (sorted, deduplicated) bounds.
        #[test]
        fn quantile_matches_sorted_vec_oracle(
            mut bounds in prop::collection::vec(1u64..10_000, 1..6),
            values in prop::collection::vec(0u64..20_000, 1..200),
            q in 0.0f64..=1.0,
        ) {
            bounds.sort_unstable();
            bounds.dedup();
            let r = MetricsRegistry::new();
            let h = r.histogram("p", &[], &bounds);
            for &v in &values {
                h.observe(v);
            }
            let hs = match r.snapshot().get("p") {
                Some(SnapshotValue::Histogram(hs)) => hs.clone(),
                _ => unreachable!(),
            };
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let oracle = sorted[rank - 1];
            prop_assert_eq!(hs.quantile(q), Some(bound_of(&bounds, oracle)));
            // And count_within agrees with the oracle exactly at bounds.
            for &b in &bounds {
                let naive = sorted.iter().filter(|&&v| v <= b).count() as u64;
                prop_assert_eq!(hs.count_within(b), naive);
            }
        }
    }
}
