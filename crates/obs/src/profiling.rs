//! Wall-clock profiling hooks, for bench binaries only.
//!
//! Simulation logic runs on [`SimTime`](pmware_world::SimTime) and must
//! never read the real clock — wall time differs between machines and
//! runs, and anything derived from it would break the byte-identical
//! determinism suites. Benches, on the other hand, exist to measure wall
//! time. This module squares that: [`WallTimer`] reads
//! [`std::time::Instant`] only when the crate is built with the
//! `wallclock` cargo feature; without it the same API compiles to a
//! do-nothing stub, so instrumented call sites cost nothing and, more
//! importantly, *observe* nothing in simulation builds.

use crate::metrics::Histogram;

/// Nanosecond bucket bounds suitable for endpoint-latency histograms:
/// powers of four from 256 ns to ~1 s.
pub const NANO_BOUNDS: [u64; 12] = [
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
    1_073_741_824,
];

/// A wall-clock stopwatch. Real under the `wallclock` feature, inert
/// otherwise.
#[cfg(feature = "wallclock")]
#[derive(Debug, Clone, Copy)]
pub struct WallTimer {
    start: std::time::Instant,
}

#[cfg(feature = "wallclock")]
impl WallTimer {
    /// Starts timing now.
    pub fn start() -> WallTimer {
        WallTimer {
            start: std::time::Instant::now(),
        }
    }

    /// Nanoseconds elapsed since `start`, saturating at `u64::MAX`.
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records the elapsed nanoseconds into `histogram`.
    pub fn record(self, histogram: &Histogram) {
        histogram.observe(self.elapsed_nanos());
    }
}

/// A wall-clock stopwatch. Real under the `wallclock` feature, inert
/// otherwise.
#[cfg(not(feature = "wallclock"))]
#[derive(Debug, Clone, Copy)]
pub struct WallTimer;

#[cfg(not(feature = "wallclock"))]
impl WallTimer {
    /// Starts nothing; the stub records no time.
    pub fn start() -> WallTimer {
        WallTimer
    }

    /// Always zero in the stub.
    pub fn elapsed_nanos(&self) -> u64 {
        0
    }

    /// Records nothing in the stub.
    pub fn record(self, _histogram: &Histogram) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_api_is_always_callable() {
        let timer = WallTimer::start();
        let h = Histogram::noop();
        let _ = timer.elapsed_nanos();
        timer.record(&h);
    }

    #[cfg(feature = "wallclock")]
    #[test]
    fn real_timer_advances() {
        let timer = WallTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(timer.elapsed_nanos() > 0);
    }
}
