//! Property-based tests for the device substrate.

use pmware_device::energy::{BatterySpec, EnergyModel, Interface};
use pmware_device::{Battery, EventQueue, MovementDetector};
use pmware_world::{MotionState, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn battery_accounting_is_exact(
        drains in prop::collection::vec((0u8..5, 0.0..100.0f64), 0..50),
        baseline in 0.0..1_000.0f64,
    ) {
        let mut battery = Battery::new(BatterySpec::HTC_EXPLORER);
        let interfaces = [
            Interface::Gps,
            Interface::WifiScan,
            Interface::Gsm,
            Interface::Accelerometer,
            Interface::Bluetooth,
        ];
        let mut expected = 0.0;
        for (which, joules) in &drains {
            battery.drain(interfaces[*which as usize % 5], *joules);
            expected += joules;
        }
        battery.drain_baseline(baseline);
        expected += baseline;
        prop_assert!((battery.drained_joules() - expected).abs() < 1e-6);
        let by_parts: f64 = battery.breakdown().map(|(_, j)| j).sum::<f64>()
            + battery.baseline_joules();
        prop_assert!((by_parts - expected).abs() < 1e-6);
        let frac = battery.remaining_fraction();
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn energy_duration_is_monotone_in_period(
        period_a in 1u64..10_000,
        period_b in 1u64..10_000,
    ) {
        prop_assume!(period_a < period_b);
        let model = EnergyModel::htc_explorer();
        for interface in Interface::ALL {
            let fast = model.battery_duration_hours(
                interface,
                SimDuration::from_seconds(period_a),
            );
            let slow = model.battery_duration_hours(
                interface,
                SimDuration::from_seconds(period_b),
            );
            prop_assert!(slow >= fast, "{interface:?}: {slow} < {fast}");
        }
    }

    #[test]
    fn combined_plan_never_outlasts_cheapest_member(
        periods in prop::collection::vec(30u64..3_600, 1..5),
    ) {
        let model = EnergyModel::htc_explorer();
        let plan: Vec<(Interface, SimDuration)> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                (Interface::ALL[i % Interface::ALL.len()], SimDuration::from_seconds(p))
            })
            .collect();
        let combined = model.combined_duration_hours(&plan);
        for (interface, period) in &plan {
            let alone = model.battery_duration_hours(*interface, *period);
            prop_assert!(combined <= alone + 1e-9);
        }
    }

    #[test]
    fn event_queue_pops_in_time_order(
        events in prop::collection::vec((0u64..100_000, 0u32..1_000), 0..200),
    ) {
        let mut q = EventQueue::new();
        for (t, tag) in &events {
            q.schedule(SimTime::from_seconds(*t), *tag);
        }
        prop_assert_eq!(q.len(), events.len());
        let mut last = SimTime::EPOCH;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, events.len());
    }

    #[test]
    fn event_queue_is_fifo_within_an_instant(
        n in 1usize..100,
        t in 0u64..1_000,
    ) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_seconds(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn movement_detector_converges_to_majority(
        window in 1usize..10,
        noise in prop::collection::vec(any::<bool>(), 0..30),
    ) {
        let mut d = MovementDetector::new(window);
        for flip in noise {
            d.update(if flip { MotionState::Moving } else { MotionState::Stationary });
        }
        // A long run of a single state always wins in the end.
        for _ in 0..window * 2 {
            d.update(MotionState::Moving);
        }
        prop_assert_eq!(d.state(), MotionState::Moving);
        for _ in 0..window * 2 {
            d.update(MotionState::Stationary);
        }
        prop_assert_eq!(d.state(), MotionState::Stationary);
    }
}
