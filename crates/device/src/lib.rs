//! Simulated mobile device for the PMWare reproduction.
//!
//! The paper measured location interfaces on an HTC A310E Explorer with a
//! 1230 mAh battery (Figure 1). This crate stands in for that phone:
//!
//! * [`energy`] — a per-interface energy model calibrated so that sensing
//!   GSM every minute yields ~11× the battery life of sensing GPS every
//!   minute, the headline ratio of Figure 1;
//! * [`battery`] — capacity and drain accounting, per interface;
//! * [`events`] — a tiny discrete-event queue for schedulers;
//! * [`phone`] — [`phone::Device`]: sensors (GSM modem, WiFi
//!   scanner, GPS, accelerometer, Bluetooth) bound to a position source and
//!   a radio environment, every sample billed to the battery;
//! * [`motion`] — the accelerometer-based movement detector used to trigger
//!   WiFi scanning (§2.2.2).
//!
//! # Examples
//!
//! ```
//! use pmware_device::energy::{EnergyModel, Interface};
//! use pmware_world::SimDuration;
//!
//! let model = EnergyModel::htc_explorer();
//! let gps = model.battery_duration_hours(Interface::Gps, SimDuration::from_minutes(1));
//! let gsm = model.battery_duration_hours(Interface::Gsm, SimDuration::from_minutes(1));
//! let ratio = gsm / gps;
//! assert!(ratio > 10.0 && ratio < 12.5, "paper reports ~11x, got {ratio:.1}x");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod energy;
pub mod events;
pub mod motion;
pub mod phone;

pub use battery::Battery;
pub use energy::{EnergyModel, Interface};
pub use events::EventQueue;
pub use motion::{MovementDetector, MovementSnapshot};
pub use phone::{Device, PositionProvider};
