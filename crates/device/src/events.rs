//! A minimal discrete-event queue.
//!
//! Schedulers in the middleware (periodic GSM sampling, triggered WiFi
//! scans, token refreshes) post events to a time-ordered queue and drain
//! them in order. Ties are broken by insertion order, so the simulation is
//! fully deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pmware_world::SimTime;

/// A time-ordered event queue.
///
/// # Examples
///
/// ```
/// use pmware_device::EventQueue;
/// use pmware_world::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_seconds(20), "later");
/// q.schedule(SimTime::from_seconds(10), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_seconds(10), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_seconds(20), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at `time`. Events at equal times fire in the order
    /// they were scheduled.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let entry = Entry {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.heap.push(Reverse(entry));
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Removes and returns the earliest event only if it is due at or
    /// before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_seconds(30), 3);
        q.schedule(SimTime::from_seconds(10), 1);
        q.schedule(SimTime::from_seconds(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_seconds(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_seconds(100), "future");
        assert_eq!(q.pop_due(SimTime::from_seconds(50)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_due(SimTime::from_seconds(100)),
            Some((SimTime::from_seconds(100), "future"))
        );
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_seconds(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_seconds(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
