//! The simulated phone: sensors bound to a position source and a battery.

use pmware_geo::{GeoPoint, Meters};
use pmware_mobility::Itinerary;
use pmware_obs::{Counter, Obs};
use pmware_world::ids::TowerId;
use pmware_world::radio::{GsmScratch, RadioEnvironment, WifiScratch};
use pmware_world::{GpsFix, GsmObservation, MotionState, SimTime, WifiScan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::battery::Battery;
use crate::energy::{EnergyModel, Interface};

/// Source of the device's true position and motion over time.
///
/// Implemented by [`pmware_mobility::Itinerary`] (a moving study
/// participant) and by [`GeoPoint`] (a fixed position, convenient in
/// tests and calibration runs).
pub trait PositionProvider {
    /// True position at `t`.
    fn position_at(&self, t: SimTime) -> GeoPoint;
    /// True motion state at `t`.
    fn motion_at(&self, t: SimTime) -> MotionState;
}

impl PositionProvider for Itinerary {
    fn position_at(&self, t: SimTime) -> GeoPoint {
        Itinerary::position_at(self, t)
    }
    fn motion_at(&self, t: SimTime) -> MotionState {
        Itinerary::motion_at(self, t)
    }
}

impl PositionProvider for GeoPoint {
    fn position_at(&self, _t: SimTime) -> GeoPoint {
        *self
    }
    fn motion_at(&self, _t: SimTime) -> MotionState {
        MotionState::Stationary
    }
}

impl<P: PositionProvider + ?Sized> PositionProvider for &P {
    fn position_at(&self, t: SimTime) -> GeoPoint {
        (**self).position_at(t)
    }
    fn motion_at(&self, t: SimTime) -> MotionState {
        (**self).motion_at(t)
    }
}

/// Probability that one accelerometer window misclassifies the motion state.
const ACCEL_ERROR_PROB: f64 = 0.04;

/// Bluetooth discovery radius.
const BLUETOOTH_RANGE: Meters = Meters::new(25.0);

/// Probability that an in-range Bluetooth peer answers an inquiry scan.
const BLUETOOTH_DETECT_PROB: f64 = 0.85;

/// Converts joules to whole microjoules for the metrics registry.
/// Integer microjoules keep snapshot totals independent of float
/// accumulation order.
fn microjoules(joules: f64) -> u64 {
    (joules * 1e6).round() as u64
}

/// Pre-resolved per-interface metric handles. All no-ops until
/// [`Device::set_obs`] attaches a live registry, so the default device is
/// exactly as cheap as an uninstrumented one.
#[derive(Debug, Default)]
struct DeviceMetrics {
    /// Indexed in [`Interface::ALL`] order.
    samples: [Counter; Interface::ALL.len()],
    energy_uj: [Counter; Interface::ALL.len()],
    baseline_uj: Counter,
}

/// Position of `interface` in [`Interface::ALL`], used to index the
/// pre-resolved handle arrays.
fn interface_slot(interface: Interface) -> usize {
    match interface {
        Interface::Gps => 0,
        Interface::WifiScan => 1,
        Interface::Bluetooth => 2,
        Interface::Gsm => 3,
        Interface::Accelerometer => 4,
    }
}

impl DeviceMetrics {
    fn resolve(obs: &Obs) -> DeviceMetrics {
        let actor = obs.actor();
        let mut metrics = DeviceMetrics::default();
        for (slot, interface) in Interface::ALL.iter().enumerate() {
            let labels = [("user", actor), ("interface", interface.label())];
            metrics.samples[slot] = obs.counter("device_samples_total", &labels);
            metrics.energy_uj[slot] = obs.counter("device_energy_microjoules_total", &labels);
        }
        metrics.baseline_uj = obs.counter(
            "device_energy_microjoules_total",
            &[("user", actor), ("interface", "baseline")],
        );
        metrics
    }

    #[inline]
    fn sample(&self, interface: Interface, joules: f64) {
        let slot = interface_slot(interface);
        self.samples[slot].inc();
        self.energy_uj[slot].add(microjoules(joules));
    }
}

/// A simulated phone: each sensor read consults the radio environment at
/// the provider's true position and bills the battery.
///
/// # Examples
///
/// ```
/// use pmware_device::{Device, EnergyModel};
/// use pmware_world::builder::{RegionProfile, WorldBuilder};
/// use pmware_world::radio::{RadioConfig, RadioEnvironment};
/// use pmware_world::SimTime;
///
/// let world = WorldBuilder::new(RegionProfile::test_tiny()).seed(1).build();
/// let env = RadioEnvironment::new(&world, RadioConfig::default());
/// let spot = world.places()[0].position();
/// let mut phone = Device::new(env, spot, EnergyModel::htc_explorer(), 7);
/// let obs = phone.sample_gsm(SimTime::EPOCH).expect("in coverage");
/// assert!(obs.rssi_dbm < 0.0);
/// assert!(phone.battery().drained_joules() > 0.0);
/// ```
#[derive(Debug)]
pub struct Device<'w, P> {
    env: RadioEnvironment<'w>,
    provider: P,
    battery: Battery,
    model: EnergyModel,
    rng: StdRng,
    serving: Option<TowerId>,
    billed_until: SimTime,
    gsm_scratch: GsmScratch,
    wifi_scratch: WifiScratch,
    wifi_scan: WifiScan,
    metrics: DeviceMetrics,
}

impl<'w, P: PositionProvider> Device<'w, P> {
    /// Creates a device with a full battery.
    pub fn new(env: RadioEnvironment<'w>, provider: P, model: EnergyModel, seed: u64) -> Self {
        let battery = Battery::new(model.battery());
        Device {
            env,
            provider,
            battery,
            model,
            rng: StdRng::seed_from_u64(seed),
            serving: None,
            billed_until: SimTime::EPOCH,
            gsm_scratch: GsmScratch::default(),
            wifi_scratch: WifiScratch::default(),
            wifi_scan: WifiScan {
                time: SimTime::EPOCH,
                readings: Vec::new(),
            },
            metrics: DeviceMetrics::default(),
        }
    }

    /// Attaches an observability handle: per-interface sample counts and
    /// microjoules drained flow into its registry from now on, carrying
    /// over anything already recorded. The default device records
    /// nothing (every handle is a no-op), so instrumentation costs
    /// nothing until a study opts in.
    pub fn set_obs(&mut self, obs: &Obs) {
        let previous = std::mem::replace(&mut self.metrics, DeviceMetrics::resolve(obs));
        for slot in 0..Interface::ALL.len() {
            let samples = previous.samples[slot].get();
            if samples > 0 {
                self.metrics.samples[slot].set(samples);
            }
            let uj = previous.energy_uj[slot].get();
            if uj > 0 {
                self.metrics.energy_uj[slot].set(uj);
            }
        }
        let baseline = previous.baseline_uj.get();
        if baseline > 0 {
            self.metrics.baseline_uj.set(baseline);
        }
    }

    /// The battery state.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// The energy model.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.model
    }

    /// The device's true position (ground truth, not a sensor reading).
    pub fn true_position(&self, t: SimTime) -> GeoPoint {
        self.provider.position_at(t)
    }

    /// The device's true motion state (ground truth).
    pub fn true_motion(&self, t: SimTime) -> MotionState {
        self.provider.motion_at(t)
    }

    /// The tower currently camped on, if any.
    pub fn serving_tower(&self) -> Option<TowerId> {
        self.serving
    }

    /// Bills idle baseline drain up to `now`. Call once per outer loop tick;
    /// repeated calls for the same instant are free.
    pub fn bill_baseline(&mut self, now: SimTime) {
        if now > self.billed_until {
            let dt = now.since(self.billed_until).as_seconds() as f64;
            let joules = self.model.baseline_w() * dt;
            self.battery.drain_baseline(joules);
            self.metrics.baseline_uj.add(microjoules(joules));
            self.billed_until = now;
        }
    }

    /// Bills one sample of `interface` to the battery and mirrors the
    /// cost into the metrics registry (a no-op until [`Device::set_obs`]).
    fn drain_sample(&mut self, interface: Interface) {
        let joules = self.model.sample_cost_j(interface);
        self.battery.drain(interface, joules);
        self.metrics.sample(interface, joules);
    }

    /// Reads the serving cell. Costs one GSM sample of energy. Returns
    /// `None` outside coverage (energy is still spent on the attempt).
    pub fn sample_gsm(&mut self, t: SimTime) -> Option<GsmObservation> {
        self.drain_sample(Interface::Gsm);
        let pos = self.provider.position_at(t);
        let (obs, serving) = self.env.observe_gsm_with(
            &mut self.gsm_scratch,
            pos,
            t,
            self.serving,
            &mut self.rng,
        )?;
        self.serving = Some(serving);
        Some(obs)
    }

    /// Performs a WiFi scan. Costs one scan of energy.
    ///
    /// The returned scan borrows a buffer owned by the device and is
    /// overwritten by the next call; clone it to keep readings across
    /// scans.
    pub fn scan_wifi(&mut self, t: SimTime) -> &WifiScan {
        self.drain_sample(Interface::WifiScan);
        let pos = self.provider.position_at(t);
        self.env.scan_wifi_with(
            &mut self.wifi_scratch,
            &mut self.wifi_scan,
            pos,
            t,
            &mut self.rng,
        );
        &self.wifi_scan
    }

    /// Attempts a GPS fix. Costs one fix of energy even when no fix is
    /// obtained (the receiver still searched for satellites).
    pub fn fix_gps(&mut self, t: SimTime) -> Option<GpsFix> {
        self.drain_sample(Interface::Gps);
        let pos = self.provider.position_at(t);
        self.env.fix_gps(pos, t, &mut self.rng)
    }

    /// Reads one accelerometer window: the true motion state with a small
    /// misclassification probability. Costs one window of energy.
    pub fn read_accelerometer(&mut self, t: SimTime) -> MotionState {
        self.drain_sample(Interface::Accelerometer);
        let truth = self.provider.motion_at(t);
        if self.rng.gen_bool(ACCEL_ERROR_PROB) {
            match truth {
                MotionState::Moving => MotionState::Stationary,
                MotionState::Stationary => MotionState::Moving,
            }
        } else {
            truth
        }
    }

    /// Performs a Bluetooth inquiry scan against candidate peers (each a
    /// `(tag, position)` pair) and returns the tags of discovered peers.
    /// Costs one inquiry of energy.
    pub fn scan_bluetooth<I: Clone>(&mut self, t: SimTime, peers: &[(I, GeoPoint)]) -> Vec<I> {
        self.drain_sample(Interface::Bluetooth);
        let pos = self.provider.position_at(t);
        peers
            .iter()
            .filter(|(_, p)| pos.equirectangular_distance(*p) <= BLUETOOTH_RANGE)
            .filter(|_| self.rng.gen_bool(BLUETOOTH_DETECT_PROB))
            .map(|(tag, _)| tag.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_mobility::Population;
    use pmware_world::builder::{RegionProfile, WorldBuilder};
    use pmware_world::radio::RadioConfig;
    use pmware_world::World;

    fn world() -> World {
        WorldBuilder::new(RegionProfile::test_tiny())
            .seed(2)
            .build()
    }

    #[test]
    fn every_sample_costs_energy() {
        let w = world();
        let env = RadioEnvironment::new(&w, RadioConfig::default());
        let spot = w.places()[0].position();
        let mut phone = Device::new(env, spot, EnergyModel::htc_explorer(), 1);
        let t = SimTime::EPOCH;
        let _ = phone.sample_gsm(t);
        let gsm = phone.battery().drained_by(Interface::Gsm);
        assert_eq!(gsm, 1.0);
        let _ = phone.scan_wifi(t);
        assert_eq!(phone.battery().drained_by(Interface::WifiScan), 6.0);
        let _ = phone.fix_gps(t);
        assert_eq!(phone.battery().drained_by(Interface::Gps), 25.0);
        let _ = phone.read_accelerometer(t);
        assert!(phone.battery().drained_by(Interface::Accelerometer) > 0.0);
        let _ = phone.scan_bluetooth::<u32>(t, &[]);
        assert!(phone.battery().drained_by(Interface::Bluetooth) > 0.0);
    }

    #[test]
    fn baseline_billing_is_idempotent_per_instant() {
        let w = world();
        let env = RadioEnvironment::new(&w, RadioConfig::default());
        let spot = w.places()[0].position();
        let mut phone = Device::new(env, spot, EnergyModel::htc_explorer(), 1);
        phone.bill_baseline(SimTime::from_seconds(100));
        let after_first = phone.battery().baseline_joules();
        assert!((after_first - 0.025 * 100.0).abs() < 1e-9);
        phone.bill_baseline(SimTime::from_seconds(100));
        assert_eq!(phone.battery().baseline_joules(), after_first);
        phone.bill_baseline(SimTime::from_seconds(200));
        assert!((phone.battery().baseline_joules() - 0.025 * 200.0).abs() < 1e-9);
    }

    #[test]
    fn moving_device_changes_serving_cell_over_a_day() {
        let w = world();
        let pop = Population::generate(&w, 1, 3);
        let it = pop.itinerary(&w, pop.agents()[0].id(), 1);
        let env = RadioEnvironment::new(&w, RadioConfig::default());
        let mut phone = Device::new(env, &it, EnergyModel::htc_explorer(), 4);
        let mut cells = std::collections::HashSet::new();
        for minute in 0..(24 * 60) {
            let t = SimTime::from_seconds(minute * 60);
            if let Some(obs) = phone.sample_gsm(t) {
                cells.insert(obs.cell);
            }
        }
        assert!(
            cells.len() >= 3,
            "a day of movement should span cells, got {}",
            cells.len()
        );
    }

    #[test]
    fn accelerometer_mostly_truthful() {
        let w = world();
        let env = RadioEnvironment::new(&w, RadioConfig::default());
        let spot = w.places()[0].position();
        let mut phone = Device::new(env, spot, EnergyModel::htc_explorer(), 5);
        let n = 1_000;
        let errors = (0..n)
            .filter(|i| {
                phone
                    .read_accelerometer(SimTime::from_seconds(*i))
                    .is_moving() // truth is stationary
            })
            .count();
        let rate = errors as f64 / n as f64;
        assert!(rate > 0.005 && rate < 0.10, "error rate {rate}");
    }

    #[test]
    fn bluetooth_discovers_near_peers_only() {
        let w = world();
        let env = RadioEnvironment::new(&w, RadioConfig::default());
        let spot = w.places()[0].position();
        let near = spot.destination(0.0, Meters::new(5.0));
        let far = spot.destination(0.0, Meters::new(200.0));
        let mut phone = Device::new(env, spot, EnergyModel::htc_explorer(), 6);
        let mut near_hits = 0;
        let mut far_hits = 0;
        for i in 0..200 {
            let found = phone.scan_bluetooth(SimTime::from_seconds(i), &[(1u8, near), (2u8, far)]);
            if found.contains(&1) {
                near_hits += 1;
            }
            if found.contains(&2) {
                far_hits += 1;
            }
        }
        assert!(near_hits > 120, "near peer found {near_hits}/200");
        assert_eq!(far_hits, 0, "far peer must never appear");
    }

    #[test]
    fn obs_mirrors_battery_in_microjoules() {
        let w = world();
        let env = RadioEnvironment::new(&w, RadioConfig::default());
        let spot = w.places()[0].position();
        let mut phone = Device::new(env, spot, EnergyModel::htc_explorer(), 1);
        let obs = Obs::new().for_actor("p0000");
        phone.set_obs(&obs);
        let t = SimTime::EPOCH;
        let _ = phone.sample_gsm(t);
        let _ = phone.sample_gsm(SimTime::from_seconds(60));
        let _ = phone.fix_gps(t);
        phone.bill_baseline(SimTime::from_seconds(100));
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(
            snap.counter_value("device_samples_total{interface=\"gsm\",user=\"p0000\"}"),
            2
        );
        let gsm_uj =
            snap.counter_value("device_energy_microjoules_total{interface=\"gsm\",user=\"p0000\"}");
        assert_eq!(
            gsm_uj,
            microjoules(phone.battery().drained_by(Interface::Gsm))
        );
        let base_uj = snap.counter_value(
            "device_energy_microjoules_total{interface=\"baseline\",user=\"p0000\"}",
        );
        assert_eq!(base_uj, microjoules(phone.battery().baseline_joules()));
    }

    #[test]
    fn set_obs_carries_prior_counts_to_a_new_registry() {
        let w = world();
        let env = RadioEnvironment::new(&w, RadioConfig::default());
        let spot = w.places()[0].position();
        let mut phone = Device::new(env, spot, EnergyModel::htc_explorer(), 1);
        let first = Obs::new();
        phone.set_obs(&first);
        let _ = phone.sample_gsm(SimTime::EPOCH);
        let second = Obs::new();
        phone.set_obs(&second);
        let snap = second.metrics().unwrap().snapshot();
        assert_eq!(
            snap.counter_value("device_samples_total{interface=\"gsm\",user=\"main\"}"),
            1
        );
    }

    #[test]
    fn fixed_point_provider_is_stationary() {
        let spot = GeoPoint::new(10.0, 20.0).unwrap();
        assert_eq!(spot.position_at(SimTime::EPOCH), spot);
        assert_eq!(spot.motion_at(SimTime::EPOCH), MotionState::Stationary);
    }
}
