//! Battery drain accounting.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::energy::{BatterySpec, Interface};

/// A battery with per-interface drain attribution.
///
/// The redundancy experiments (§1 item 3) need to know not just *how much*
/// energy was spent but *on what*; every [`drain`](Battery::drain) is tagged
/// with the interface responsible.
///
/// # Examples
///
/// ```
/// use pmware_device::battery::Battery;
/// use pmware_device::energy::{BatterySpec, Interface};
///
/// let mut battery = Battery::new(BatterySpec::HTC_EXPLORER);
/// battery.drain(Interface::Gps, 25.0);
/// assert!(battery.remaining_fraction() < 1.0);
/// assert_eq!(battery.drained_by(Interface::Gps), 25.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    spec: BatterySpec,
    drained_j: f64,
    baseline_j: f64,
    by_interface: BTreeMap<Interface, f64>,
}

impl Battery {
    /// A full battery of the given specification.
    pub fn new(spec: BatterySpec) -> Self {
        Battery {
            spec,
            drained_j: 0.0,
            baseline_j: 0.0,
            by_interface: BTreeMap::new(),
        }
    }

    /// The specification.
    pub fn spec(&self) -> BatterySpec {
        self.spec
    }

    /// Drains `joules`, attributed to `interface`.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn drain(&mut self, interface: Interface, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "drain must be a non-negative energy, got {joules}"
        );
        self.drained_j += joules;
        *self.by_interface.entry(interface).or_insert(0.0) += joules;
    }

    /// Drains baseline (idle) energy not attributable to any interface.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn drain_baseline(&mut self, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "drain must be a non-negative energy, got {joules}"
        );
        self.drained_j += joules;
        self.baseline_j += joules;
    }

    /// Total energy drained so far in joules.
    pub fn drained_joules(&self) -> f64 {
        self.drained_j
    }

    /// Energy drained by one interface.
    pub fn drained_by(&self, interface: Interface) -> f64 {
        self.by_interface.get(&interface).copied().unwrap_or(0.0)
    }

    /// Baseline energy drained.
    pub fn baseline_joules(&self) -> f64 {
        self.baseline_j
    }

    /// Per-interface breakdown, sorted by interface.
    pub fn breakdown(&self) -> impl Iterator<Item = (Interface, f64)> + '_ {
        self.by_interface.iter().map(|(i, j)| (*i, *j))
    }

    /// Fraction of capacity remaining, in `[0, 1]` (0 when over-drained).
    pub fn remaining_fraction(&self) -> f64 {
        (1.0 - self.drained_j / self.spec.energy_joules()).max(0.0)
    }

    /// Returns `true` once the battery is fully drained.
    pub fn is_depleted(&self) -> bool {
        self.drained_j >= self.spec.energy_joules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_sums_to_total() {
        let mut b = Battery::new(BatterySpec::HTC_EXPLORER);
        b.drain(Interface::Gps, 100.0);
        b.drain(Interface::Gsm, 2.0);
        b.drain(Interface::Gps, 50.0);
        b.drain_baseline(10.0);
        assert_eq!(b.drained_joules(), 162.0);
        assert_eq!(b.drained_by(Interface::Gps), 150.0);
        assert_eq!(b.drained_by(Interface::Gsm), 2.0);
        assert_eq!(b.drained_by(Interface::WifiScan), 0.0);
        assert_eq!(b.baseline_joules(), 10.0);
        let sum: f64 = b.breakdown().map(|(_, j)| j).sum::<f64>() + b.baseline_joules();
        assert_eq!(sum, b.drained_joules());
    }

    #[test]
    fn depletion() {
        let mut b = Battery::new(BatterySpec {
            capacity_mah: 1.0,
            voltage_v: 1.0,
        });
        assert!(!b.is_depleted());
        b.drain(Interface::Gps, 3.6);
        assert!(b.is_depleted());
        assert_eq!(b.remaining_fraction(), 0.0);
    }

    #[test]
    fn remaining_fraction_decreases() {
        let mut b = Battery::new(BatterySpec::HTC_EXPLORER);
        let f0 = b.remaining_fraction();
        b.drain(Interface::WifiScan, 1_000.0);
        let f1 = b.remaining_fraction();
        assert!(f1 < f0);
        assert!(f1 > 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative energy")]
    fn negative_drain_rejected() {
        let mut b = Battery::new(BatterySpec::HTC_EXPLORER);
        b.drain(Interface::Gps, -1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative energy")]
    fn nan_drain_rejected() {
        let mut b = Battery::new(BatterySpec::HTC_EXPLORER);
        b.drain_baseline(f64::NAN);
    }
}
