//! Per-interface energy model (Figure 1 substrate).
//!
//! Figure 1 of the paper plots "power consumption analysis of different
//! location interfaces, performed on a HTC A310E Explorer Phone with
//! 1230 mAh battery" under continuous sensing at several sampling periods,
//! and the text states that "battery duration is almost 11x if GSM location
//! is sensed at every minute compared to GPS".
//!
//! The model here is the standard duty-cycle decomposition: a constant
//! baseline draw (idle radio, OS) plus a fixed energy cost per sample of
//! each interface. Battery duration at sampling period `T` is then
//!
//! ```text
//! duration = capacity / (baseline + E_sample / T)
//! ```
//!
//! The per-sample energies are calibrated to land the paper's ordering
//! (GPS ≫ WiFi ≫ GSM ≥ accelerometer) and the 11× GSM-vs-GPS ratio at a
//! one-minute period.

use pmware_world::SimDuration;
use serde::{Deserialize, Serialize};

/// A sensing interface with an energy cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Interface {
    /// GPS fix acquisition (the most expensive).
    Gps,
    /// One WiFi scan.
    WifiScan,
    /// One GSM serving-cell read (cheap: the modem is attached anyway).
    Gsm,
    /// One accelerometer window.
    Accelerometer,
    /// One Bluetooth inquiry scan.
    Bluetooth,
}

impl Interface {
    /// All interfaces, most expensive first.
    pub const ALL: [Interface; 5] = [
        Interface::Gps,
        Interface::WifiScan,
        Interface::Bluetooth,
        Interface::Gsm,
        Interface::Accelerometer,
    ];

    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Interface::Gps => "gps",
            Interface::WifiScan => "wifi",
            Interface::Gsm => "gsm",
            Interface::Accelerometer => "accelerometer",
            Interface::Bluetooth => "bluetooth",
        }
    }
}

/// Battery capacity specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatterySpec {
    /// Rated charge in milliamp-hours.
    pub capacity_mah: f64,
    /// Nominal voltage in volts.
    pub voltage_v: f64,
}

impl BatterySpec {
    /// The HTC A310E Explorer battery from Figure 1.
    pub const HTC_EXPLORER: BatterySpec = BatterySpec {
        capacity_mah: 1_230.0,
        voltage_v: 3.7,
    };

    /// Total stored energy in joules.
    pub fn energy_joules(&self) -> f64 {
        // mAh × V × 3.6 = J
        self.capacity_mah * self.voltage_v * 3.6
    }
}

/// The calibrated energy model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    battery: BatterySpec,
    /// Constant baseline draw in watts (idle OS + camped modem).
    baseline_w: f64,
    gps_fix_j: f64,
    wifi_scan_j: f64,
    gsm_read_j: f64,
    accel_window_j: f64,
    bluetooth_scan_j: f64,
}

impl EnergyModel {
    /// The model calibrated against the paper's HTC A310E measurements.
    ///
    /// At a one-minute period this yields ≈ 9.8 h on GPS and ≈ 109 h on
    /// GSM — the "almost 11×" ratio the paper reports — with WiFi in
    /// between (≈ 36 h).
    pub fn htc_explorer() -> EnergyModel {
        EnergyModel {
            battery: BatterySpec::HTC_EXPLORER,
            baseline_w: 0.025,
            gps_fix_j: 25.0,
            wifi_scan_j: 6.0,
            gsm_read_j: 1.0,
            accel_window_j: 0.12,
            bluetooth_scan_j: 5.0,
        }
    }

    /// The battery specification.
    pub fn battery(&self) -> BatterySpec {
        self.battery
    }

    /// Baseline draw in watts.
    pub fn baseline_w(&self) -> f64 {
        self.baseline_w
    }

    /// Energy cost of one sample of `interface` in joules.
    pub fn sample_cost_j(&self, interface: Interface) -> f64 {
        match interface {
            Interface::Gps => self.gps_fix_j,
            Interface::WifiScan => self.wifi_scan_j,
            Interface::Gsm => self.gsm_read_j,
            Interface::Accelerometer => self.accel_window_j,
            Interface::Bluetooth => self.bluetooth_scan_j,
        }
    }

    /// Average power draw (watts) when sampling `interface` once per
    /// `period`, including the baseline.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn average_power_w(&self, interface: Interface, period: SimDuration) -> f64 {
        assert!(period.as_seconds() > 0, "sampling period must be positive");
        self.baseline_w + self.sample_cost_j(interface) / period.as_seconds() as f64
    }

    /// Battery duration in hours under continuous sampling of `interface`
    /// at `period` — a point on a Figure 1 curve.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn battery_duration_hours(&self, interface: Interface, period: SimDuration) -> f64 {
        let seconds = self.battery.energy_joules() / self.average_power_w(interface, period);
        seconds / 3_600.0
    }

    /// Battery duration under a *combined* sensing plan: each entry is an
    /// interface with its own sampling period. This is what the triggered
    /// sensing ablation compares.
    ///
    /// # Panics
    ///
    /// Panics if any period is zero.
    pub fn combined_duration_hours(&self, plan: &[(Interface, SimDuration)]) -> f64 {
        let mut power = self.baseline_w;
        for (interface, period) in plan {
            assert!(period.as_seconds() > 0, "sampling period must be positive");
            power += self.sample_cost_j(*interface) / period.as_seconds() as f64;
        }
        let seconds = self.battery.energy_joules() / power;
        seconds / 3_600.0
    }
}

/// One row of the regenerated Figure 1: battery hours per interface at one
/// sampling period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure1Row {
    /// Sampling period.
    pub period: SimDuration,
    /// `(interface, battery hours)` in [`Interface::ALL`] order.
    pub hours: Vec<(Interface, f64)>,
}

/// Regenerates the Figure 1 dataset over the given sampling periods.
pub fn figure1_dataset(model: &EnergyModel, periods: &[SimDuration]) -> Vec<Figure1Row> {
    periods
        .iter()
        .map(|&period| Figure1Row {
            period,
            hours: Interface::ALL
                .iter()
                .map(|&i| (i, model.battery_duration_hours(i, period)))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minute() -> SimDuration {
        SimDuration::from_minutes(1)
    }

    #[test]
    fn battery_energy_joules() {
        let e = BatterySpec::HTC_EXPLORER.energy_joules();
        assert!((e - 16_383.6).abs() < 1.0, "got {e}");
    }

    #[test]
    fn gsm_vs_gps_ratio_is_about_11x() {
        let m = EnergyModel::htc_explorer();
        let ratio = m.battery_duration_hours(Interface::Gsm, minute())
            / m.battery_duration_hours(Interface::Gps, minute());
        assert!(
            (ratio - 11.0).abs() < 1.0,
            "paper says ~11x, model gives {ratio:.2}x"
        );
    }

    #[test]
    fn interface_ordering_matches_figure1() {
        let m = EnergyModel::htc_explorer();
        let h = |i| m.battery_duration_hours(i, minute());
        assert!(h(Interface::Gps) < h(Interface::WifiScan));
        assert!(h(Interface::WifiScan) < h(Interface::Gsm));
        assert!(h(Interface::Gsm) < h(Interface::Accelerometer));
        assert!(h(Interface::Bluetooth) < h(Interface::Gsm));
    }

    #[test]
    fn duration_grows_with_period() {
        let m = EnergyModel::htc_explorer();
        for i in Interface::ALL {
            let fast = m.battery_duration_hours(i, SimDuration::from_seconds(10));
            let slow = m.battery_duration_hours(i, SimDuration::from_minutes(5));
            assert!(slow > fast, "{i:?}: {slow} !> {fast}");
        }
    }

    #[test]
    fn duration_approaches_baseline_limit() {
        let m = EnergyModel::htc_explorer();
        let limit_h = BatterySpec::HTC_EXPLORER.energy_joules() / m.baseline_w() / 3_600.0;
        let very_slow = m.battery_duration_hours(Interface::Gps, SimDuration::from_hours(24));
        assert!(very_slow < limit_h);
        assert!(very_slow > limit_h * 0.9);
    }

    #[test]
    fn combined_plan_costs_more_than_each_alone() {
        let m = EnergyModel::htc_explorer();
        let plan = [
            (Interface::Gsm, minute()),
            (Interface::WifiScan, SimDuration::from_minutes(5)),
        ];
        let combined = m.combined_duration_hours(&plan);
        let gsm_only = m.battery_duration_hours(Interface::Gsm, minute());
        let wifi_only = m.battery_duration_hours(Interface::WifiScan, SimDuration::from_minutes(5));
        assert!(combined < gsm_only);
        assert!(combined < wifi_only);
    }

    #[test]
    #[should_panic(expected = "sampling period")]
    fn zero_period_rejected() {
        let m = EnergyModel::htc_explorer();
        let _ = m.battery_duration_hours(Interface::Gps, SimDuration::ZERO);
    }

    #[test]
    fn figure1_dataset_shape() {
        let m = EnergyModel::htc_explorer();
        let periods = [
            SimDuration::from_seconds(10),
            SimDuration::from_minutes(1),
            SimDuration::from_minutes(5),
        ];
        let rows = figure1_dataset(&m, &periods);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.hours.len(), Interface::ALL.len());
            for (_, h) in &row.hours {
                assert!(*h > 0.0);
            }
        }
    }

    #[test]
    fn labels_unique() {
        use std::collections::HashSet;
        let set: HashSet<_> = Interface::ALL.iter().map(|i| i.label()).collect();
        assert_eq!(set.len(), Interface::ALL.len());
    }
}
