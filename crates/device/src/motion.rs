//! Accelerometer-based movement detection.
//!
//! PMWare duty-cycles expensive interfaces using an "accelerometer based
//! activity detector" (§2.2.2): WiFi scanning for SensLoc-style discovery is
//! triggered only around movement. The raw accelerometer is noisy, so the
//! detector majority-votes over a sliding window and only changes state
//! after a few consistent readings — the hysteresis keeps single glitches
//! from triggering scans.

use std::collections::VecDeque;

use pmware_world::MotionState;
use serde::{Deserialize, Serialize};

/// Sliding-window majority-vote movement detector.
///
/// # Examples
///
/// ```
/// use pmware_device::MovementDetector;
/// use pmware_world::MotionState;
///
/// let mut d = MovementDetector::new(3);
/// assert_eq!(d.state(), MotionState::Stationary);
/// d.update(MotionState::Moving);
/// d.update(MotionState::Moving);
/// assert_eq!(d.state(), MotionState::Stationary); // not yet confident
/// d.update(MotionState::Moving);
/// assert_eq!(d.state(), MotionState::Moving);
/// ```
#[derive(Debug, Clone)]
pub struct MovementDetector {
    window: VecDeque<MotionState>,
    capacity: usize,
    state: MotionState,
    transitions: u64,
}

impl MovementDetector {
    /// Creates a detector with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be non-empty");
        MovementDetector {
            window: VecDeque::with_capacity(window),
            capacity: window,
            state: MotionState::Stationary,
            transitions: 0,
        }
    }

    /// Feeds one accelerometer reading; returns the (possibly new) state.
    pub fn update(&mut self, reading: MotionState) -> MotionState {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(reading);
        if self.window.len() == self.capacity {
            let moving = self.window.iter().filter(|s| s.is_moving()).count();
            let new_state = if moving * 2 > self.capacity {
                MotionState::Moving
            } else {
                MotionState::Stationary
            };
            if new_state != self.state {
                self.transitions += 1;
                self.state = new_state;
            }
        }
        self.state
    }

    /// Current smoothed state.
    pub fn state(&self) -> MotionState {
        self.state
    }

    /// Number of state transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Captures the detector for a checkpoint (the sliding window becomes
    /// a plain vector on the wire).
    pub fn snapshot(&self) -> MovementSnapshot {
        MovementSnapshot {
            window: self.window.iter().copied().collect(),
            capacity: self.capacity,
            state: self.state,
            transitions: self.transitions,
        }
    }

    /// Rebuilds a detector from a snapshot, mid-window votes intact.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's window capacity is zero.
    pub fn from_snapshot(snapshot: MovementSnapshot) -> Self {
        assert!(snapshot.capacity > 0, "window must be non-empty");
        MovementDetector {
            window: snapshot.window.into_iter().collect(),
            capacity: snapshot.capacity,
            state: snapshot.state,
            transitions: snapshot.transitions,
        }
    }
}

/// The serializable state of a [`MovementDetector`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovementSnapshot {
    window: Vec<MotionState>,
    capacity: usize,
    state: MotionState,
    transitions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_glitch_ignored() {
        let mut d = MovementDetector::new(5);
        for _ in 0..5 {
            d.update(MotionState::Stationary);
        }
        d.update(MotionState::Moving); // glitch
        assert_eq!(d.state(), MotionState::Stationary);
        for _ in 0..4 {
            d.update(MotionState::Stationary);
        }
        assert_eq!(d.state(), MotionState::Stationary);
        assert_eq!(d.transitions(), 0);
    }

    #[test]
    fn sustained_movement_detected() {
        let mut d = MovementDetector::new(5);
        for _ in 0..5 {
            d.update(MotionState::Stationary);
        }
        for _ in 0..3 {
            d.update(MotionState::Moving);
        }
        assert_eq!(d.state(), MotionState::Moving);
        assert_eq!(d.transitions(), 1);
    }

    #[test]
    fn returns_to_stationary() {
        let mut d = MovementDetector::new(3);
        for _ in 0..3 {
            d.update(MotionState::Moving);
        }
        assert_eq!(d.state(), MotionState::Moving);
        for _ in 0..2 {
            d.update(MotionState::Stationary);
        }
        assert_eq!(d.state(), MotionState::Stationary);
        assert_eq!(d.transitions(), 2);
    }

    #[test]
    fn before_window_fills_stays_default() {
        let mut d = MovementDetector::new(10);
        for _ in 0..9 {
            assert_eq!(d.update(MotionState::Moving), MotionState::Stationary);
        }
        assert_eq!(d.update(MotionState::Moving), MotionState::Moving);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = MovementDetector::new(0);
    }
}
