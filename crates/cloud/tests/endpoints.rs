//! End-to-end endpoint tests through the full middleware stack.
//!
//! These exercise every route family via `CloudInstance::handle` — i.e.
//! outage, metrics, admission, auth, and shard accounting layers plus the
//! route-table dispatcher — exactly as a client sees the service. They
//! were the `instance.rs` unit tests before the router/middleware
//! refactor; keeping them green, unmodified in substance, is the proof
//! that the decomposition is behavior-preserving.

use pmware_algorithms::gca::GcaConfig;
use pmware_algorithms::signature::{DiscoveredPlace, DiscoveredPlaceId, PlaceSignature};
use pmware_cloud::profile::{ContactEntry, MobilityProfile, PlaceEntry};
use pmware_cloud::{CellDatabase, CloudInstance, Request, SharedCloud, UserId, SHARD_COUNT};
use pmware_obs::Obs;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::tower::NetworkLayer;
use pmware_world::{CellGlobalId, CellId, GsmObservation, Lac, Plmn, SimDuration, SimTime};
use serde_json::{json, Value};

fn cloud() -> CloudInstance {
    CloudInstance::new(CellDatabase::new(), 42)
}

fn register(cloud: &CloudInstance, n: u32, now: SimTime) -> String {
    let req = Request::post(
        "/api/v1/registration",
        json!({"imei": format!("imei-{n}"), "email": format!("u{n}@x.com")}),
    );
    let resp = cloud.handle(&req, now);
    assert!(resp.is_success(), "{resp:?}");
    resp.json()["token"].as_str().unwrap().to_owned()
}

#[test]
fn registration_and_auth_flow() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    assert_eq!(c.user_count(), 1);

    // Authenticated GET works.
    let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), now);
    assert!(resp.is_success());

    // Missing token → 401.
    let resp = c.handle(&Request::get("/api/v1/places"), now);
    assert_eq!(resp.status, 401);

    // Bogus token → 401.
    let resp = c.handle(&Request::get("/api/v1/places").with_token("tok-x"), now);
    assert_eq!(resp.status, 401);

    // Expired token → 401.
    let later = now + SimDuration::from_hours(25);
    let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), later);
    assert_eq!(resp.status, 401);
}

#[test]
fn registration_requires_identity() {
    let c = cloud();
    let resp = c.handle(
        &Request::post("/api/v1/registration", json!({"imei": "", "email": ""})),
        SimTime::EPOCH,
    );
    assert_eq!(resp.status, 400);
    let resp = c.handle(
        &Request::post("/api/v1/registration", json!({"nope": 1})),
        SimTime::EPOCH,
    );
    assert_eq!(resp.status, 400);
}

#[test]
fn token_refresh_rotates() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let resp = c.handle(
        &Request::post("/api/v1/token/refresh", Value::Null).with_token(&token),
        now + SimDuration::from_hours(20),
    );
    assert!(resp.is_success());
    let new_token = resp.json()["token"].as_str().unwrap().to_owned();
    assert_ne!(new_token, token);
    // The old token no longer validates.
    let resp = c.handle(
        &Request::get("/api/v1/places").with_token(&token),
        now + SimDuration::from_hours(21),
    );
    assert_eq!(resp.status, 401);
}

#[test]
fn expired_token_refresh_cannot_resurrect() {
    // Refresh through the full chain with an expired token: the auth
    // layer answers 401 before the refresh handler runs, so the client's
    // only way back is re-registration — which, being the public route,
    // always remains open.
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let late = now + SimDuration::from_hours(30);
    let resp = c.handle(
        &Request::post("/api/v1/token/refresh", Value::Null).with_token(&token),
        late,
    );
    assert_eq!(resp.status, 401, "expired token must not refresh: {resp:?}");
    // Re-registration with the same identity recovers the same user.
    let token2 = register(&c, 0, late);
    assert_ne!(token2, token);
    assert_eq!(c.user_count(), 1, "same identity, same user");
    let resp = c.handle(&Request::get("/api/v1/places").with_token(&token2), late);
    assert!(resp.is_success());
}

#[test]
fn gca_offload_discovers_and_stores() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    // Synthetic oscillating stream (same shape as the GCA unit tests).
    let cell = |id: u32| CellGlobalId {
        plmn: Plmn { mcc: 404, mnc: 45 },
        lac: Lac(1),
        cell: CellId(id),
    };
    let observations: Vec<GsmObservation> = (0..40)
        .map(|m| GsmObservation {
            time: SimTime::from_seconds(m * 60),
            cell: if m % 3 == 1 { cell(2) } else { cell(1) },
            layer: NetworkLayer::G2,
            rssi_dbm: -70.0,
        })
        .collect();
    let resp = c.handle(
        &Request::post(
            "/api/v1/places/discover",
            json!({ "observations": observations }),
        )
        .with_token(&token),
        now,
    );
    assert!(resp.is_success(), "{resp:?}");
    let body = resp.json();
    let places = body["places"].as_array().unwrap();
    assert_eq!(places.len(), 1);
    // And the places are now listed.
    let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), now);
    assert_eq!(resp.json()["places"].as_array().unwrap().len(), 1);
}

#[test]
fn discover_absorbs_suffixes_without_forgetting_places() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let cell = |id: u32| CellGlobalId {
        plmn: Plmn { mcc: 404, mnc: 45 },
        lac: Lac(1),
        cell: CellId(id),
    };
    let obs = |minute: u64, id: u32| GsmObservation {
        time: SimTime::from_seconds(minute * 60),
        cell: cell(id),
        layer: NetworkLayer::G2,
        rssi_dbm: -70.0,
    };
    // Night 1: a 40-minute stay at place {1,2}.
    let night1: Vec<GsmObservation> = (0..40)
        .map(|m| obs(m, if m % 3 == 1 { 2 } else { 1 }))
        .collect();
    let resp = c.handle(
        &Request::post("/api/v1/places/discover", json!({ "observations": night1 }))
            .with_token(&token),
        now,
    );
    assert!(resp.is_success(), "{resp:?}");
    assert_eq!(resp.json()["places"].as_array().unwrap().len(), 1);
    // Night 2 offloads ONLY the new suffix: a stay somewhere else.
    // Before the persistent per-user engine this *replaced* the stored
    // places, silently forgetting place {1,2}.
    let night2: Vec<GsmObservation> = (100..140)
        .map(|m| obs(m, if m % 3 == 1 { 6 } else { 5 }))
        .collect();
    let resp = c.handle(
        &Request::post("/api/v1/places/discover", json!({ "observations": night2 }))
            .with_token(&token),
        now,
    );
    assert!(resp.is_success(), "{resp:?}");
    let body = resp.json();
    let places = body["places"].as_array().unwrap();
    assert_eq!(places.len(), 2, "suffix offload must keep night-1 places");
    // And the reply matches one batch clustering of the whole stream.
    let full: Vec<GsmObservation> = (0..40)
        .map(|m| obs(m, if m % 3 == 1 { 2 } else { 1 }))
        .chain((100..140).map(|m| obs(m, if m % 3 == 1 { 6 } else { 5 })))
        .collect();
    let batch = pmware_algorithms::gca::discover_places(&full, &GcaConfig::default());
    assert_eq!(places.len(), batch.places.len());
}

#[test]
fn discover_rewind_restarts_from_the_new_batch() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let cell = |id: u32| CellGlobalId {
        plmn: Plmn { mcc: 404, mnc: 45 },
        lac: Lac(1),
        cell: CellId(id),
    };
    let stream: Vec<GsmObservation> = (0..40)
        .map(|m| GsmObservation {
            time: SimTime::from_seconds(m * 60),
            cell: if m % 3 == 1 { cell(2) } else { cell(1) },
            layer: NetworkLayer::G2,
            rssi_dbm: -70.0,
        })
        .collect();
    let req = Request::post("/api/v1/places/discover", json!({ "observations": stream }))
        .with_token(&token);
    // Re-sending the same from-zero batch (a client that restarted and
    // re-clusters its full log) must not double-count: the engine
    // restarts from the rewound batch.
    let first = c.handle(&req, now);
    let second = c.handle(&req, now);
    assert!(second.is_success());
    assert_eq!(first.body, second.body);
    assert_eq!(second.json()["places"].as_array().unwrap().len(), 1);
}

#[test]
fn next_place_cache_invalidates_on_profile_upsert() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let sync = |day: u64, route: &[u32]| {
        let mut profile = MobilityProfile::new(day);
        for (i, &p) in route.iter().enumerate() {
            profile.places.push(PlaceEntry {
                place: DiscoveredPlaceId(p),
                arrival: SimTime::from_day_time(day, 8 + 2 * i as u64, 0, 0),
                departure: SimTime::from_day_time(day, 9 + 2 * i as u64, 0, 0),
            });
        }
        let resp = c.handle(
            &Request::post("/api/v1/profiles/sync", json!({ "profile": profile }))
                .with_token(&token),
            now,
        );
        assert!(resp.is_success());
    };
    let next = || {
        let resp = c.handle(
            &Request::post("/api/v1/analytics/next_place", json!({"place": 0})).with_token(&token),
            now,
        );
        assert!(resp.is_success());
        resp.json()["predictions"].as_array().unwrap()[0][0]
            .as_u64()
            .unwrap()
    };
    // Two days of 0 → 1: the model (and its cache) says 1.
    sync(0, &[0, 1]);
    sync(1, &[0, 1]);
    assert_eq!(next(), 1);
    assert_eq!(next(), 1, "repeat query served from the memoized model");
    // Three days of 0 → 2 flip the majority: the upsert bumps the
    // history generation, so the cached model must be retrained.
    sync(2, &[0, 2]);
    sync(3, &[0, 2]);
    sync(4, &[0, 2]);
    assert_eq!(next(), 2, "stale cached model would still answer 1");
}

#[test]
fn place_labelling() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let place = DiscoveredPlace::new(
        DiscoveredPlaceId(0),
        PlaceSignature::WifiAps(Default::default()),
        vec![],
    );
    let resp = c.handle(
        &Request::post("/api/v1/places/sync", json!({ "places": [place] })).with_token(&token),
        now,
    );
    assert!(resp.is_success());
    let resp = c.handle(
        &Request::post("/api/v1/places/label", json!({"place": 0, "label": "Home"}))
            .with_token(&token),
        now,
    );
    assert!(resp.is_success(), "{resp:?}");
    let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), now);
    assert_eq!(resp.json()["places"][0]["label"], "Home");
    // Unknown place → 404.
    let resp = c.handle(
        &Request::post("/api/v1/places/label", json!({"place": 9, "label": "X"}))
            .with_token(&token),
        now,
    );
    assert_eq!(resp.status, 404);
}

#[test]
fn profile_sync_and_fetch() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let mut profile = MobilityProfile::new(2);
    profile.places.push(PlaceEntry {
        place: DiscoveredPlaceId(0),
        arrival: SimTime::from_day_time(2, 9, 0, 0),
        departure: SimTime::from_day_time(2, 17, 0, 0),
    });
    let resp = c.handle(
        &Request::post("/api/v1/profiles/sync", json!({ "profile": profile })).with_token(&token),
        now,
    );
    assert!(resp.is_success());
    let resp = c.handle(&Request::get("/api/v1/profiles/2").with_token(&token), now);
    assert!(resp.is_success());
    assert_eq!(resp.json()["profile"]["day"], 2);
    // Missing day → 404; malformed day → 400.
    assert_eq!(
        c.handle(&Request::get("/api/v1/profiles/9").with_token(&token), now)
            .status,
        404
    );
    assert_eq!(
        c.handle(
            &Request::get("/api/v1/profiles/xyz").with_token(&token),
            now
        )
        .status,
        400
    );
}

#[test]
fn analytics_endpoints_answer_the_papers_queries() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    // Two weeks of evening home arrivals at 18h.
    for day in 0..14 {
        let mut profile = MobilityProfile::new(day);
        profile.places.push(PlaceEntry {
            place: DiscoveredPlaceId(1),
            arrival: SimTime::from_day_time(day, 9, 0, 0),
            departure: SimTime::from_day_time(day, 17, 0, 0),
        });
        profile.places.push(PlaceEntry {
            place: DiscoveredPlaceId(0),
            arrival: SimTime::from_day_time(day, 18, 0, 0),
            departure: SimTime::from_day_time(day, 23, 0, 0),
        });
        let resp = c.handle(
            &Request::post("/api/v1/profiles/sync", json!({ "profile": profile }))
                .with_token(&token),
            now,
        );
        assert!(resp.is_success());
    }
    // Query 1: evening home arrival.
    let resp = c.handle(
        &Request::post(
            "/api/v1/analytics/arrival",
            json!({"place": 0, "window": [15, 24]}),
        )
        .with_token(&token),
        now,
    );
    assert!(resp.is_success());
    assert_eq!(resp.json()["second_of_day"].as_u64().unwrap() / 3_600, 18);
    // Query 2: next visit to place 1.
    let resp = c.handle(
        &Request::post(
            "/api/v1/analytics/next_visit",
            json!({"place": 1, "now": SimTime::from_day_time(14, 0, 0, 0)}),
        )
        .with_token(&token),
        now,
    );
    assert!(resp.is_success(), "{resp:?}");
    // Query 3: frequency.
    let resp = c.handle(
        &Request::post("/api/v1/analytics/frequency", json!({"place": 0})).with_token(&token),
        now,
    );
    assert!(resp.is_success());
    assert!((resp.json()["visits_per_week"].as_f64().unwrap() - 7.0).abs() < 1e-9);
    // Markov next place from work is home.
    let resp = c.handle(
        &Request::post("/api/v1/analytics/next_place", json!({"place": 1})).with_token(&token),
        now,
    );
    assert!(resp.is_success());
    let body = resp.json();
    let preds = body["predictions"].as_array().unwrap();
    assert_eq!(preds[0][0], 0);
}

#[test]
fn geolocation_endpoint_uses_cell_database() {
    let world = WorldBuilder::new(RegionProfile::test_tiny())
        .seed(3)
        .build();
    let tower = &world.towers()[0];
    let c = CloudInstance::new(CellDatabase::from_world(&world), 1);
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let cell = tower.cell();
    let resp = c.handle(
        &Request::post(
            "/api/v1/misc/geolocate",
            json!({
                "mcc": cell.plmn.mcc,
                "mnc": cell.plmn.mnc,
                "lac": cell.lac.0,
                "cid": cell.cell.0,
            }),
        )
        .with_token(&token),
        now,
    );
    assert!(resp.is_success());
    let lat = resp.json()["latitude"].as_f64().unwrap();
    assert!((lat - tower.position().latitude()).abs() < 1e-9);
    // Unknown cell → 404.
    let resp = c.handle(
        &Request::post(
            "/api/v1/misc/geolocate",
            json!({"mcc": 1, "mnc": 1, "lac": 1, "cid": 1}),
        )
        .with_token(&token),
        now,
    );
    assert_eq!(resp.status, 404);
}

#[test]
fn social_sync_and_query_by_place() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let contacts = vec![
        ContactEntry {
            contact: "peer-1".into(),
            start: SimTime::from_seconds(0),
            end: SimTime::from_seconds(600),
            place: Some(DiscoveredPlaceId(0)),
        },
        ContactEntry {
            contact: "peer-2".into(),
            start: SimTime::from_seconds(0),
            end: SimTime::from_seconds(600),
            place: Some(DiscoveredPlaceId(1)),
        },
    ];
    let resp = c.handle(
        &Request::post("/api/v1/social/sync", json!({ "contacts": contacts })).with_token(&token),
        now,
    );
    assert!(resp.is_success());
    // Targeted query: only workplace contacts (§2.2.2 targeted sensing).
    let resp = c.handle(
        &Request::post("/api/v1/social/query", json!({"place": 0})).with_token(&token),
        now,
    );
    let body = resp.json();
    let got = body["contacts"].as_array().unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0]["contact"], "peer-1");
    // Unfiltered query returns everything.
    let resp = c.handle(
        &Request::post("/api/v1/social/query", json!({"place": null})).with_token(&token),
        now,
    );
    assert_eq!(resp.json()["contacts"].as_array().unwrap().len(), 2);
}

#[test]
fn sequenced_discover_skips_absorbed_prefixes() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let cell = |id: u32| CellGlobalId {
        plmn: Plmn { mcc: 404, mnc: 45 },
        lac: Lac(1),
        cell: CellId(id),
    };
    let obs = |minute: u64, id: u32| GsmObservation {
        time: SimTime::from_seconds(minute * 60),
        cell: cell(id),
        layer: NetworkLayer::G2,
        rssi_dbm: -70.0,
    };
    let stream: Vec<GsmObservation> = (0..40)
        .map(|m| obs(m, if m % 3 == 1 { 2 } else { 1 }))
        .collect();
    let discover = |observations: &[GsmObservation], start: u64| {
        c.handle(
            &Request::post(
                "/api/v1/places/discover",
                json!({ "observations": observations, "start": start }),
            )
            .with_token(&token),
            now,
        )
    };
    // First offload absorbs everything.
    let first = discover(&stream, 0);
    assert!(first.is_success(), "{first:?}");
    assert_eq!(first.json()["absorbed_upto"], 40);
    let user = UserId(0);
    assert_eq!(c.observation_count(user), 40);
    // A duplicated delivery of the same batch absorbs nothing new.
    let dup = discover(&stream, 0);
    assert_eq!(dup.body, first.body);
    assert_eq!(
        c.observation_count(user),
        40,
        "duplicate must not double-absorb"
    );
    // A retried send overlapping the watermark absorbs only the tail.
    let tail: Vec<GsmObservation> = (30..50)
        .map(|m| obs(m, if m % 3 == 1 { 2 } else { 1 }))
        .collect();
    let resp = discover(&tail, 30);
    assert!(resp.is_success());
    assert_eq!(resp.json()["absorbed_upto"], 50);
    assert_eq!(c.observation_count(user), 50);
}

#[test]
fn sequenced_contacts_deduplicate_resent_buffers() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let user = UserId(0);
    let entry = |n: u64| ContactEntry {
        contact: format!("peer-{n}"),
        start: SimTime::from_seconds(n * 100),
        end: SimTime::from_seconds(n * 100 + 60),
        place: None,
    };
    let sync = |contacts: &[ContactEntry], first_seq: u64| {
        c.handle(
            &Request::post(
                "/api/v1/social/sync",
                json!({ "contacts": contacts, "first_seq": first_seq }),
            )
            .with_token(&token),
            now,
        )
    };
    // The regression the pending_contacts fix needs: a client whose sync
    // "failed" (response lost) re-sends the WHOLE buffer plus a new
    // entry. Before sequencing this doubled peer-0 and peer-1.
    let batch: Vec<ContactEntry> = (0..2).map(entry).collect();
    let resp = sync(&batch, 0);
    assert!(resp.is_success());
    assert_eq!(resp.json()["acked_upto"], 2);
    let resent: Vec<ContactEntry> = (0..3).map(entry).collect();
    let resp = sync(&resent, 0);
    assert!(resp.is_success());
    assert_eq!(resp.json()["acked_upto"], 3);
    assert_eq!(c.contact_count(user), 3, "re-sent prefix must be skipped");
    let stored = c.contacts_of(user);
    let names: Vec<&str> = stored.iter().map(|e| e.contact.as_str()).collect();
    assert_eq!(names, ["peer-0", "peer-1", "peer-2"]);
    // A pure duplicate delivery is a no-op.
    let resp = sync(&resent, 0);
    assert_eq!(resp.json()["acked_upto"], 3);
    assert_eq!(c.contact_count(user), 3);
}

#[test]
fn stale_profile_and_snapshot_syncs_are_ignored() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let profile = |day: u64, visits: u32| {
        let mut p = MobilityProfile::new(day);
        for i in 0..visits {
            p.places.push(PlaceEntry {
                place: DiscoveredPlaceId(i),
                arrival: SimTime::from_day_time(day, 8 + u64::from(i), 0, 0),
                departure: SimTime::from_day_time(day, 9 + u64::from(i), 0, 0),
            });
        }
        p
    };
    let sync = |p: &MobilityProfile, seq: u64| {
        c.handle(
            &Request::post("/api/v1/profiles/sync", json!({ "profile": p, "seq": seq }))
                .with_token(&token),
            now,
        )
    };
    // Newer version of day 0 lands first (reorder), stale one follows.
    assert_eq!(sync(&profile(0, 2), 5).json()["stale"], false);
    let resp = sync(&profile(0, 1), 3);
    assert!(resp.is_success());
    assert_eq!(resp.json()["stale"], true);
    let fetched = c.handle(&Request::get("/api/v1/profiles/0").with_token(&token), now);
    assert_eq!(
        fetched.json()["profile"]["places"]
            .as_array()
            .unwrap()
            .len(),
        2,
        "stale sync must not clobber the newer profile"
    );
    // Same for the places full replacement.
    let place = DiscoveredPlace::new(
        DiscoveredPlaceId(0),
        PlaceSignature::WifiAps(Default::default()),
        vec![],
    );
    let resp = c.handle(
        &Request::post(
            "/api/v1/places/sync",
            json!({ "places": [place], "seq": 7 }),
        )
        .with_token(&token),
        now,
    );
    assert_eq!(resp.json()["stale"], false);
    let resp = c.handle(
        &Request::post("/api/v1/places/sync", json!({ "places": [], "seq": 6 })).with_token(&token),
        now,
    );
    assert_eq!(resp.json()["stale"], true);
    let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), now);
    assert_eq!(resp.json()["places"].as_array().unwrap().len(), 1);
}

#[test]
fn users_are_isolated() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let t0 = register(&c, 0, now);
    let t1 = register(&c, 1, now);
    let place = DiscoveredPlace::new(
        DiscoveredPlaceId(0),
        PlaceSignature::WifiAps(Default::default()),
        vec![],
    );
    c.handle(
        &Request::post("/api/v1/places/sync", json!({ "places": [place] })).with_token(&t0),
        now,
    );
    let resp = c.handle(&Request::get("/api/v1/places").with_token(&t1), now);
    assert_eq!(resp.json()["places"].as_array().unwrap().len(), 0);
}

#[test]
fn unknown_route_is_404() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let resp = c.handle(&Request::get("/api/v1/nope").with_token(&token), now);
    assert_eq!(resp.status, 404);
    assert_eq!(resp.json()["error"], "no route for /api/v1/nope");
    assert!(
        resp.json().get("allow").is_none(),
        "404 carries no allow list"
    );
}

#[test]
fn wrong_method_on_known_path_is_405_with_allow() {
    // Regression for the old catch-all: a known path hit with the wrong
    // method fell into `no route for {path}` 404. The router must answer
    // 405 and say which methods the path accepts.
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let resp = c.handle(&Request::get("/api/v1/places/sync").with_token(&token), now);
    assert_eq!(resp.status, 405, "{resp:?}");
    assert_eq!(resp.json()["allow"], json!(["POST"]));
    let resp = c.handle(
        &Request::post("/api/v1/places", Value::Null).with_token(&token),
        now,
    );
    assert_eq!(resp.status, 405, "{resp:?}");
    assert_eq!(resp.json()["allow"], json!(["GET"]));
    // Auth still precedes method dispatch: without a token the wrong
    // method is indistinguishable from any other unauthenticated request.
    let resp = c.handle(&Request::get("/api/v1/places/sync"), now);
    assert_eq!(resp.status, 401);
}

#[test]
fn malformed_body_is_400() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let resp = c.handle(
        &Request::post("/api/v1/places/sync", json!({"wrong": true})).with_token(&token),
        now,
    );
    assert_eq!(resp.status, 400);
}

#[test]
fn request_counters_attribute_to_user_shards() {
    let c = cloud();
    let now = SimTime::EPOCH;
    let t0 = register(&c, 0, now); // UserId(0) → shard 0
    let t1 = register(&c, 1, now); // UserId(1) → shard 1
    assert_eq!(c.total_requests(), 0, "registration is unauthenticated");
    for _ in 0..3 {
        c.handle(&Request::get("/api/v1/places").with_token(&t0), now);
    }
    c.handle(&Request::get("/api/v1/places").with_token(&t1), now);
    let counts = c.shard_request_counts();
    assert_eq!(counts.len(), SHARD_COUNT);
    assert_eq!(counts[0], 3);
    assert_eq!(counts[1], 1);
    assert_eq!(c.total_requests(), 4);
}

#[test]
fn registrations_count_under_the_register_endpoint_label() {
    let obs = Obs::new();
    let c = cloud().with_obs(&obs);
    let now = SimTime::EPOCH;
    let t0 = register(&c, 0, now);
    let _t1 = register(&c, 1, now);
    c.handle(&Request::get("/api/v1/places").with_token(&t0), now);
    // Legacy views keep their authenticated-only promise...
    assert_eq!(c.total_requests(), 1);
    // ...while the registry sees the registrations too.
    let snap = obs.metrics().unwrap().snapshot();
    assert_eq!(
        snap.counter_value("cloud_requests_total{endpoint=\"register\"}"),
        2
    );
    assert_eq!(
        snap.counter_value("cloud_requests_total{endpoint=\"places_list\"}"),
        1
    );
    // Shard attribution stays out of the shared registry (its labels
    // depend on registration order, which is racy under threads).
    assert_eq!(
        snap.counter_sum_with_prefix("cloud_shard_requests_total"),
        0
    );
}

#[test]
fn replay_and_cache_metrics_fire() {
    let obs = Obs::new();
    let c = cloud().with_obs(&obs);
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    // Stale places sync (same seq twice) → one replay.
    let sync =
        Request::post("/api/v1/places/sync", json!({"places": [], "seq": 1})).with_token(&token);
    assert!(c.handle(&sync, now).is_success());
    assert!(c.handle(&sync, now).is_success());
    // next_place: first query trains (miss), second hits the memo.
    let query =
        Request::post("/api/v1/analytics/next_place", json!({"place": 0})).with_token(&token);
    assert!(c.handle(&query, now).is_success());
    assert!(c.handle(&query, now).is_success());
    let snap = obs.metrics().unwrap().snapshot();
    assert_eq!(
        snap.counter_value("cloud_replays_total{endpoint=\"places_sync\"}"),
        1
    );
    assert_eq!(
        snap.counter_value("cloud_analytics_cache_total{result=\"miss\"}"),
        1
    );
    assert_eq!(
        snap.counter_value("cloud_analytics_cache_total{result=\"hit\"}"),
        1
    );
}

#[test]
fn shared_cloud_serves_threads_concurrently() {
    let shared = SharedCloud::new(cloud());
    let now = SimTime::EPOCH;
    let tokens: Vec<String> = (0..4).map(|n| register(&shared, n, now)).collect();
    std::thread::scope(|s| {
        for (n, token) in tokens.iter().enumerate() {
            let shared = shared.clone();
            s.spawn(move || {
                let place = DiscoveredPlace::new(
                    DiscoveredPlaceId(n as u32),
                    PlaceSignature::WifiAps(Default::default()),
                    vec![],
                );
                let resp = shared.handle(
                    &Request::post("/api/v1/places/sync", json!({ "places": [place] }))
                        .with_token(token),
                    now,
                );
                assert!(resp.is_success());
            });
        }
    });
    // Every user sees exactly their own single place.
    for (n, token) in tokens.iter().enumerate() {
        let resp = shared.handle(&Request::get("/api/v1/places").with_token(token), now);
        let body = resp.json();
        let places = body["places"].as_array().unwrap();
        assert_eq!(places.len(), 1, "user {n}");
        assert_eq!(places[0]["id"], n as u64);
    }
}

/// Malformed batched offloads (ISSUE 8 regression set): every decode
/// failure in [`pmware_cloud::wire::ObservationBatch`] must surface as a
/// structured 400 at the endpoint — a hostile or confused client can
/// never panic the server — while empty and single-sample batches are
/// legitimate and absorb cleanly.
#[test]
fn batched_discover_edge_cases_yield_400_not_panics() {
    use pmware_cloud::wire::ObservationBatch;

    let c = cloud();
    let now = SimTime::EPOCH;
    let token = register(&c, 0, now);
    let obs = |second: u64, id: u32| GsmObservation {
        time: SimTime::from_seconds(second),
        cell: CellGlobalId {
            plmn: Plmn { mcc: 404, mnc: 45 },
            lac: Lac(1),
            cell: CellId(id),
        },
        layer: NetworkLayer::G2,
        rssi_dbm: -70.0,
    };
    let discover = |batch: &ObservationBatch| {
        c.handle(
            &Request::post(
                "/api/v1/places/discover",
                json!({"batch": batch, "start": 0}),
            )
            .with_token(&token),
            now,
        )
    };

    // Empty batch: legitimate (an idle day), absorbs nothing, 200.
    let resp = discover(&ObservationBatch::encode(&[]));
    assert!(resp.is_success(), "{resp:?}");

    // Single-sample batch: the smallest real offload, 200.
    let resp = discover(&ObservationBatch::encode(&[obs(60, 1)]));
    assert!(resp.is_success(), "{resp:?}");

    // Dictionary symbol out of range → 400 with the decode error.
    let mut bad = ObservationBatch::encode(&[obs(60, 1)]);
    bad.cell[0] = 7;
    let resp = discover(&bad);
    assert_eq!(resp.status, 400);
    assert!(
        resp.error_message().unwrap().contains("outside dictionary"),
        "{resp:?}"
    );

    // Ragged parallel columns → 400.
    let mut ragged = ObservationBatch::encode(&[obs(60, 1), obs(120, 2)]);
    ragged.rssi_dbm.pop();
    let resp = discover(&ragged);
    assert_eq!(resp.status, 400);
    assert!(resp.error_message().unwrap().contains("ragged"), "{resp:?}");

    // Wrapping-boundary deltas: decode is defined (wrapping), so the
    // endpoint must absorb rather than 500 — and the server state stays
    // usable afterwards.
    let mut wrapping = ObservationBatch::encode(&[obs(0, 1), obs(1, 1)]);
    wrapping.t0 = u64::MAX;
    wrapping.dt = vec![i64::MAX, i64::MIN];
    let resp = discover(&wrapping);
    assert!(
        resp.status == 200 || resp.status == 400,
        "wrapping batch must not 5xx: {resp:?}"
    );
    let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), now);
    assert!(resp.is_success(), "server survived: {resp:?}");
}
