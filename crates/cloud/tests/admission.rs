//! Admission-control behavior through the full middleware stack: seeded
//! determinism, 429 shape, budget isolation between users and classes,
//! and the disabled-by-default invariant.

use pmware_cloud::{
    AdmissionConfig, CellDatabase, CloudInstance, RateBudget, Request, STATUS_RATE_LIMITED,
};
use pmware_world::{SimDuration, SimTime};
use serde_json::json;

fn register(cloud: &CloudInstance, n: u32) -> String {
    let resp = cloud.handle(
        &Request::post(
            "/api/v1/registration",
            json!({"imei": format!("imei-{n}"), "email": format!("u{n}@x.com")}),
        ),
        SimTime::EPOCH,
    );
    assert!(resp.is_success());
    resp.json()["token"].as_str().unwrap().to_owned()
}

/// Replays a fixed query schedule against a fresh instance and returns
/// the full status sequence.
fn status_trace(seed: u64) -> Vec<u16> {
    let cloud = CloudInstance::new(CellDatabase::new(), 42).with_admission(
        AdmissionConfig::uniform(seed, RateBudget::new(2, SimDuration::from_seconds(60))),
    );
    let token = register(&cloud, 0);
    (0..40)
        .map(|i| {
            let now = SimTime::EPOCH + SimDuration::from_seconds(i * 7);
            cloud
                .handle(&Request::get("/api/v1/places").with_token(&token), now)
                .status
        })
        .collect()
}

#[test]
fn same_seed_produces_identical_429_sequence() {
    let first = status_trace(9);
    let second = status_trace(9);
    assert_eq!(first, second);
    // The schedule outpaces the budget, so both outcomes occur: the trace
    // is a real interleaving, not all-pass or all-deny.
    assert!(first.contains(&STATUS_RATE_LIMITED));
    assert!(first.contains(&200));
}

#[test]
fn deny_carries_an_exact_retry_after_hint() {
    let cloud = CloudInstance::new(CellDatabase::new(), 1).with_admission(
        AdmissionConfig::uniform(3, RateBudget::new(1, SimDuration::from_seconds(45))),
    );
    let token = register(&cloud, 0);
    let list = Request::get("/api/v1/places").with_token(&token);
    assert!(cloud.handle(&list, SimTime::EPOCH).is_success());
    let denied = cloud.handle(&list, SimTime::EPOCH);
    assert_eq!(denied.status, STATUS_RATE_LIMITED);
    let hint = denied.json()["retry_after_s"].as_u64().unwrap();
    assert!(hint > 0 && hint <= 45, "hint {hint} out of range");
    // Waiting exactly the hint is sufficient: the very next request at
    // that instant is admitted.
    let retry_at = SimTime::EPOCH + SimDuration::from_seconds(hint);
    assert!(cloud.handle(&list, retry_at).is_success());
    assert_eq!(cloud.admission_denials(), 1);
}

#[test]
fn budgets_are_per_user_and_per_class() {
    let cloud = CloudInstance::new(CellDatabase::new(), 1).with_admission(
        AdmissionConfig::uniform(3, RateBudget::new(1, SimDuration::from_minutes(10))),
    );
    let alice = register(&cloud, 0);
    let bob = register(&cloud, 1);
    let list = |token: &str| Request::get("/api/v1/places").with_token(token);
    // Alice exhausts her Query budget.
    assert!(cloud.handle(&list(&alice), SimTime::EPOCH).is_success());
    assert_eq!(
        cloud.handle(&list(&alice), SimTime::EPOCH).status,
        STATUS_RATE_LIMITED
    );
    // Bob's bucket is untouched by Alice's spend.
    assert!(cloud.handle(&list(&bob), SimTime::EPOCH).is_success());
    // Alice's Ingest class has its own bucket: a sync still goes through.
    let sync =
        Request::post("/api/v1/places/sync", json!({"places": [], "seq": 1})).with_token(&alice);
    assert!(cloud.handle(&sync, SimTime::EPOCH).is_success());
}

#[test]
fn registration_is_never_throttled() {
    // A user over budget must always be able to re-register: the only
    // public route is exempt from admission control.
    let cloud = CloudInstance::new(CellDatabase::new(), 1).with_admission(
        AdmissionConfig::uniform(3, RateBudget::new(1, SimDuration::from_minutes(10))),
    );
    for _ in 0..10 {
        let resp = cloud.handle(
            &Request::post(
                "/api/v1/registration",
                json!({"imei": "imei-0", "email": "u0@x.com"}),
            ),
            SimTime::EPOCH,
        );
        assert!(resp.is_success());
    }
}

/// The boundary case the hint arithmetic must get right: one second
/// before the bucket refills the hint is exactly 1 — never 0, which
/// would tell the client to retry at the same instant and busy-spin —
/// and at the refill instant itself the request is admitted outright,
/// so a 0-second hint is never needed.
#[test]
fn hint_is_one_just_before_the_refill_boundary_and_admit_at_it() {
    let cloud = CloudInstance::new(CellDatabase::new(), 1).with_admission(
        AdmissionConfig::uniform(5, RateBudget::new(1, SimDuration::from_seconds(45))),
    );
    let token = register(&cloud, 0);
    let list = Request::get("/api/v1/places").with_token(&token);
    // Drain the single-token bucket; the refill lands at EPOCH + 45.
    assert!(cloud.handle(&list, SimTime::EPOCH).is_success());
    let just_before = SimTime::EPOCH + SimDuration::from_seconds(44);
    let denied = cloud.handle(&list, just_before);
    assert_eq!(denied.status, STATUS_RATE_LIMITED);
    assert_eq!(denied.json()["retry_after_s"].as_u64(), Some(1));
    // The boundary instant belongs to the client.
    let boundary = SimTime::EPOCH + SimDuration::from_seconds(45);
    assert!(cloud.handle(&list, boundary).is_success());
}

/// Denials count down to the refill instant second by second: every
/// hint equals the exact remaining delay (denying never moves the
/// refill clock), no hint is ever 0, and waiting precisely the hinted
/// delay is always sufficient.
#[test]
fn deny_hints_count_down_exactly_to_the_refill_instant() {
    let cloud = CloudInstance::new(CellDatabase::new(), 1).with_admission(
        AdmissionConfig::uniform(8, RateBudget::new(1, SimDuration::from_seconds(30))),
    );
    let token = register(&cloud, 0);
    let list = Request::get("/api/v1/places").with_token(&token);
    assert!(cloud.handle(&list, SimTime::EPOCH).is_success());
    for s in 0..30 {
        let now = SimTime::EPOCH + SimDuration::from_seconds(s);
        let denied = cloud.handle(&list, now);
        assert_eq!(denied.status, STATUS_RATE_LIMITED, "at +{s}s");
        assert_eq!(
            denied.json()["retry_after_s"].as_u64(),
            Some(30 - s),
            "hint at +{s}s"
        );
    }
    // Thirty denials later the refill instant is unchanged.
    let boundary = SimTime::EPOCH + SimDuration::from_seconds(30);
    assert!(cloud.handle(&list, boundary).is_success());
    assert_eq!(cloud.admission_denials(), 30);
}

/// A client whose retry clock runs behind the server's stream of
/// simulated instants (reordered delivery across the lockstep wall)
/// earns no credit from the past: the stale probe is denied with a
/// hint measured against the real refill instant, mints no tokens,
/// and the arithmetic never panics on the negative elapsed time.
#[test]
fn reordered_sim_time_earns_no_credit_through_the_stack() {
    let cloud = CloudInstance::new(CellDatabase::new(), 1).with_admission(
        AdmissionConfig::uniform(13, RateBudget::new(1, SimDuration::from_seconds(60))),
    );
    let token = register(&cloud, 0);
    let list = Request::get("/api/v1/places").with_token(&token);
    let t0 = SimTime::from_seconds(1_000);
    // Drain at t=1000; the refill lands at t=1060.
    assert!(cloud.handle(&list, t0).is_success());
    // A stale instant far in the past: denied, hint spans the whole gap
    // up to the true refill instant.
    let stale = SimTime::from_seconds(100);
    let denied = cloud.handle(&list, stale);
    assert_eq!(denied.status, STATUS_RATE_LIMITED);
    assert_eq!(denied.json()["retry_after_s"].as_u64(), Some(960));
    // The stale probe minted nothing: one second before the refill the
    // bucket is still empty, and at the refill instant it admits.
    let just_before = SimTime::from_seconds(1_059);
    let denied = cloud.handle(&list, just_before);
    assert_eq!(denied.status, STATUS_RATE_LIMITED);
    assert_eq!(denied.json()["retry_after_s"].as_u64(), Some(1));
    assert!(cloud
        .handle(&list, SimTime::from_seconds(1_060))
        .is_success());
}

#[test]
fn disabled_admission_never_denies() {
    let cloud = CloudInstance::new(CellDatabase::new(), 1);
    let token = register(&cloud, 0);
    let list = Request::get("/api/v1/places").with_token(&token);
    for _ in 0..100 {
        assert!(cloud.handle(&list, SimTime::EPOCH).is_success());
    }
    assert_eq!(cloud.admission_denials(), 0);
    // Toggling it on and back off restores the open door.
    cloud.set_admission(Some(AdmissionConfig::uniform(
        3,
        RateBudget::new(1, SimDuration::from_minutes(10)),
    )));
    assert!(cloud.handle(&list, SimTime::EPOCH).is_success());
    assert_eq!(
        cloud.handle(&list, SimTime::EPOCH).status,
        STATUS_RATE_LIMITED
    );
    cloud.set_admission(None);
    for _ in 0..10 {
        assert!(cloud.handle(&list, SimTime::EPOCH).is_success());
    }
}
