//! Storage-engine integration tests: golden durable replay after a crash,
//! capped-vs-uncapped state equivalence under arbitrary interleavings,
//! deterministic LRU eviction, and failover of an evicted user.
//!
//! Everything drives the full middleware stack through
//! `CloudInstance::handle`, exactly as a client sees the service, so the
//! engine's promises are checked at the wire: *byte-identical* response
//! bodies, not merely equivalent in-memory structures.

use std::path::PathBuf;

use pmware_algorithms::signature::DiscoveredPlaceId;
use pmware_cloud::{
    BalancePolicy, CellDatabase, CloudEndpoint, CloudInstance, ContactEntry, MobilityProfile,
    PlaceEntry, Request, StorageConfig, TopologyRouter, UserId,
};
use pmware_world::tower::NetworkLayer;
use pmware_world::{CellGlobalId, CellId, GsmObservation, Lac, Plmn, SimTime};
use proptest::prelude::*;
use serde_json::json;

/// A fresh per-test scratch directory under the OS temp dir. Process id
/// keeps parallel `cargo test` invocations apart; the name keeps tests in
/// this binary apart.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pmware-storage-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn register(cloud: &CloudInstance, n: u32, now: SimTime) -> String {
    let resp = cloud.handle(
        &Request::post(
            "/api/v1/registration",
            json!({"imei": format!("imei-{n}"), "email": format!("u{n}@x.com")}),
        ),
        now,
    );
    assert!(resp.is_success(), "{resp:?}");
    resp.json()["token"].as_str().unwrap().to_owned()
}

/// An oscillating GSM stream (the GCA test shape), offset per user and
/// per day so every offload produces distinct place state.
fn day_stream(user: u32, day: u64) -> Vec<GsmObservation> {
    let cell = |id: u32| CellGlobalId {
        plmn: Plmn { mcc: 404, mnc: 45 },
        lac: Lac(1),
        cell: CellId(id + user * 100),
    };
    (0..40)
        .map(|m| GsmObservation {
            time: SimTime::from_day_time(day, 1, 0, 0) + pmware_world::SimDuration::from_minutes(m),
            cell: if m % 3 == 1 {
                cell(2 + day as u32 * 10)
            } else {
                cell(1 + day as u32 * 10)
            },
            layer: NetworkLayer::G2,
            rssi_dbm: -70.0,
        })
        .collect()
}

/// One sim-day of mutations for one user: a sequenced GCA offload, a
/// mobility-profile upsert, and a sequenced contact sync.
fn mutate_day(cloud: &CloudInstance, token: &str, user: u32, day: u64) {
    let at = SimTime::from_day_time(day, 12, 0, u64::from(user));
    let stream = day_stream(user, day);
    let resp = cloud.handle(
        &Request::post(
            "/api/v1/places/discover",
            json!({"observations": stream, "start": day * 40}),
        )
        .with_token(token),
        at,
    );
    assert!(resp.is_success(), "discover u{user} d{day}: {resp:?}");

    let mut profile = MobilityProfile::new(day);
    profile.places.push(PlaceEntry {
        place: DiscoveredPlaceId(user),
        arrival: SimTime::from_day_time(day, 9, 0, 0),
        departure: SimTime::from_day_time(day, 17, 0, 0),
    });
    let resp = cloud.handle(
        &Request::post("/api/v1/profiles/sync", json!({"profile": profile})).with_token(token),
        at,
    );
    assert!(resp.is_success(), "profile u{user} d{day}: {resp:?}");

    let contact = ContactEntry {
        contact: format!("peer-{user}-{day}"),
        start: SimTime::from_day_time(day, 13, 0, 0),
        end: SimTime::from_day_time(day, 13, 30, 0),
        place: None,
    };
    let resp = cloud.handle(
        &Request::post(
            "/api/v1/social/sync",
            json!({"contacts": [contact], "first_seq": day}),
        )
        .with_token(token),
        at,
    );
    assert!(resp.is_success(), "contacts u{user} d{day}: {resp:?}");
}

/// Every read a client can make of one user's state, as raw response
/// bytes — the byte-identity yardstick.
fn read_state(cloud: &CloudInstance, token: &str, days: u64, now: SimTime) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let reads = [
        Request::get("/api/v1/places"),
        Request::post("/api/v1/social/query", json!({"place": null})),
        Request::post("/api/v1/analytics/frequency", json!({"place": 0})),
    ];
    for read in reads {
        let resp = cloud.handle(&read.with_token(token), now);
        assert!(resp.is_success(), "{resp:?}");
        out.push(resp.to_bytes().to_vec());
    }
    for day in 0..days {
        let resp = cloud.handle(
            &Request::get(format!("/api/v1/profiles/{day}")).with_token(token),
            now,
        );
        out.push(resp.to_bytes().to_vec());
    }
    out
}

/// The tentpole's durability contract: a capped durable instance survives
/// a crash byte-for-byte. A fresh process recovering from the store
/// directory answers every read with the exact bytes the dead instance
/// would have — under the *tokens the clients still hold* — and keeps
/// accepting writes.
#[test]
fn durable_replay_after_crash_is_byte_identical() {
    const USERS: u32 = 5;
    const DAYS: u64 = 3;
    let dir = scratch_dir("golden");
    let config = StorageConfig {
        resident_cap: Some(2),
        store_dir: Some(dir.clone()),
        snapshot_every_days: 1,
    };
    let cloud = CloudInstance::new(CellDatabase::new(), 42).with_storage(config.clone());

    // Three sim-days of traffic from five users under a cap of two:
    // daily re-registration (tokens expire in 24 h), then mutations.
    // The cap forces constant evict/hydrate churn, and the day cadence
    // exercises the snapshot+compaction sweep.
    let mut tokens: Vec<String> = Vec::new();
    for day in 0..DAYS {
        tokens = (0..USERS)
            .map(|n| register(&cloud, n, SimTime::from_day_time(day, 0, 0, u64::from(n))))
            .collect();
        for user in 0..USERS {
            mutate_day(&cloud, &tokens[user as usize], user, day);
        }
    }
    assert!(
        cloud.eviction_count() > 0,
        "cap 2 with 5 users must have evicted"
    );

    let end = SimTime::from_day_time(DAYS - 1, 20, 0, 0);
    let before: Vec<Vec<Vec<u8>>> = tokens
        .iter()
        .map(|token| read_state(&cloud, token, DAYS, end))
        .collect();
    drop(cloud); // the crash: nothing flushed beyond what the WAL holds

    let recovered = CloudInstance::recover(CellDatabase::new(), 42, config, end);
    assert_eq!(recovered.user_count(), USERS as usize);
    for (user, token) in tokens.iter().enumerate() {
        let after = read_state(&recovered, token, DAYS, end);
        assert_eq!(
            before[user], after,
            "user {user}: recovered reads must be byte-identical"
        );
    }

    // The recovered instance is live, not a read-only museum: the same
    // session keeps writing where it left off.
    let resp = recovered.handle(
        &Request::post(
            "/api/v1/social/sync",
            json!({"contacts": [ContactEntry {
                contact: "post-crash".into(),
                start: end,
                end,
                place: None,
            }], "first_seq": DAYS}),
        )
        .with_token(&tokens[0]),
        end,
    );
    assert!(resp.is_success(), "{resp:?}");
    assert_eq!(resp.json()["acked_upto"], DAYS + 1);

    let _ = std::fs::remove_dir_all(&dir);
}

/// LRU eviction is deterministic: oldest sim-time access stamp first,
/// user-id tie-break — so two identical single-threaded drives evict the
/// same users in the same order.
#[test]
fn lru_eviction_is_deterministic_with_user_id_tie_break() {
    let drive = || {
        let cloud = CloudInstance::new(CellDatabase::new(), 7).with_storage(StorageConfig {
            resident_cap: Some(2),
            ..StorageConfig::default()
        });
        // Users 0 and 1 register at the same simulated second (the tie);
        // user 2 arrives later and pushes one of them out.
        register(&cloud, 0, SimTime::from_seconds(10));
        register(&cloud, 1, SimTime::from_seconds(10));
        register(&cloud, 2, SimTime::from_seconds(20));
        cloud
    };
    let a = drive();
    assert_eq!(a.eviction_count(), 1);
    assert!(
        !a.is_resident(UserId(0)),
        "tie at t=10 breaks toward the smaller user id"
    );
    assert!(a.is_resident(UserId(1)));
    assert!(a.is_resident(UserId(2)));
    let b = drive();
    assert_eq!(a.eviction_count(), b.eviction_count());
    assert_eq!(a.hydration_count(), b.hydration_count());
    for user in 0..3 {
        assert_eq!(a.is_resident(UserId(user)), b.is_resident(UserId(user)));
    }
}

/// The health probe reports the resident-store population.
#[test]
fn health_reports_resident_users() {
    let cloud = CloudInstance::new(CellDatabase::new(), 1).with_storage(StorageConfig {
        resident_cap: Some(2),
        ..StorageConfig::default()
    });
    for n in 0..4 {
        register(&cloud, n, SimTime::from_seconds(u64::from(n)));
    }
    let resp = cloud.handle(&Request::get("/api/v1/health"), SimTime::from_seconds(10));
    assert!(resp.is_success());
    assert_eq!(resp.json()["resident_users"], 2, "{resp:?}");
    assert_eq!(cloud.eviction_count(), 2);
}

/// Regression for the unified WAL path: failing over a user whose store
/// the *source* instance had already evicted must still rebuild the full
/// state on the target — replay does not depend on residency.
#[test]
fn failover_of_an_evicted_user_hydrates_then_migrates() {
    let router = TopologyRouter::new(BalancePolicy::RoundRobin);
    let clouds: Vec<pmware_cloud::SharedCloud> = (0..2)
        .map(|i| {
            let cloud = pmware_cloud::SharedCloud::new(CloudInstance::new(
                CellDatabase::new(),
                1000 + i as u64,
            ));
            cloud.set_storage(Some(StorageConfig {
                resident_cap: Some(1),
                ..StorageConfig::default()
            }));
            router.add_instance(cloud.clone());
            cloud
        })
        .collect();
    let now = SimTime::from_seconds(100);

    // Both users onto instance 0: user 0 registers and syncs a contact,
    // then user 1's arrival evicts user 0's store (cap 1).
    router.set_override("imei-0", "u0@x.com", pmware_cloud::InstanceId(0));
    router.set_override("imei-1", "u1@x.com", pmware_cloud::InstanceId(0));
    let endpoint = CloudEndpoint::new(router.endpoint());
    let resp = endpoint.send(
        &Request::post(
            "/api/v1/registration",
            json!({"imei": "imei-0", "email": "u0@x.com"}),
        ),
        now,
    );
    let token = resp.json()["token"].as_str().unwrap().to_owned();
    let resp = endpoint.send(
        &Request::post(
            "/api/v1/social/sync",
            json!({"contacts": [ContactEntry {
                contact: "peer-evicted".into(),
                start: now,
                end: now,
                place: None,
            }]}),
        )
        .with_token(&token),
        now,
    );
    assert!(resp.is_success(), "{resp:?}");
    let user0 = UserId(0);
    assert!(clouds[0].is_resident(user0));

    let endpoint1 = CloudEndpoint::new(router.endpoint());
    let resp = endpoint1.send(
        &Request::post(
            "/api/v1/registration",
            json!({"imei": "imei-1", "email": "u1@x.com"}),
        ),
        SimTime::from_seconds(200),
    );
    assert!(resp.is_success(), "{resp:?}");
    assert!(
        !clouds[0].is_resident(user0),
        "user 1's arrival must evict user 0 under cap 1"
    );

    // Kill the home instance while user 0 is parked in a snapshot.
    router.kill_instance(pmware_cloud::InstanceId(0));
    let later = SimTime::from_seconds(300);
    let report = router.fail_over(later);
    assert_eq!(report.displaced, 2);

    // The target rebuilt user 0's state from the migration WAL and the
    // client's token still works through the refreshed endpoint.
    let (cloud, migrated) = router.locate("imei-0", "u0@x.com").unwrap();
    let contacts = cloud.contacts_of(migrated);
    assert_eq!(contacts.len(), 1);
    assert_eq!(contacts[0].contact, "peer-evicted");
    let resp = endpoint.send(
        &Request::post("/api/v1/social/query", json!({"place": null})).with_token(&token),
        later,
    );
    assert!(resp.is_success(), "{resp:?}");
    assert_eq!(resp.json()["contacts"].as_array().unwrap().len(), 1);
}

/// One client-visible mutation, for the capped-vs-uncapped equivalence
/// drive below.
#[derive(Debug, Clone)]
enum StoreOp {
    Discover { day: u64 },
    Profile { day: u64, place: u32 },
    Contact { n: u64 },
}

fn arb_op() -> impl Strategy<Value = (u8, StoreOp)> {
    (0u8..3, 0u8..3, 0u64..4, 0u32..8).prop_map(|(user, kind, day, place)| {
        let op = match kind {
            0 => StoreOp::Discover { day },
            1 => StoreOp::Profile { day, place },
            _ => StoreOp::Contact {
                n: u64::from(place),
            },
        };
        (user, op)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The residency cap is invisible to clients: any interleaving of
    /// mutations from three users produces byte-identical read-back on a
    /// cap-1 engine (maximum churn) and on the plain uncapped instance.
    #[test]
    fn capped_run_matches_uncapped_run(
        ops in prop::collection::vec(arb_op(), 1..30)
    ) {
        let capped = CloudInstance::new(CellDatabase::new(), 9).with_storage(StorageConfig {
            resident_cap: Some(1),
            ..StorageConfig::default()
        });
        let plain = CloudInstance::new(CellDatabase::new(), 9);
        let now = SimTime::EPOCH;
        let tokens: Vec<String> = (0..3).map(|n| {
            let t = register(&capped, n, now);
            let t2 = register(&plain, n, now);
            prop_assert_eq!(&t, &t2, "same seed, same token");
            Ok(t)
        }).collect::<Result<_, TestCaseError>>()?;

        let mut contact_seq = [0u64; 3];
        for (i, (user, op)) in ops.iter().enumerate() {
            let user = *user as usize;
            let token = &tokens[user];
            // Advance sim time per op so LRU stamps differ.
            let at = SimTime::from_seconds(60 + i as u64);
            let request = match op {
                StoreOp::Discover { day } => Request::post(
                    "/api/v1/places/discover",
                    json!({"observations": day_stream(user as u32, *day), "start": day * 40}),
                ),
                StoreOp::Profile { day, place } => {
                    let mut profile = MobilityProfile::new(*day);
                    profile.places.push(PlaceEntry {
                        place: DiscoveredPlaceId(*place),
                        arrival: SimTime::from_day_time(*day, 9, 0, 0),
                        departure: SimTime::from_day_time(*day, 10, 0, 0),
                    });
                    Request::post("/api/v1/profiles/sync", json!({"profile": profile}))
                }
                StoreOp::Contact { n } => {
                    let entry = ContactEntry {
                        contact: format!("peer-{user}-{n}"),
                        start: at,
                        end: at,
                        place: None,
                    };
                    let seq = contact_seq[user];
                    contact_seq[user] += 1;
                    Request::post(
                        "/api/v1/social/sync",
                        json!({"contacts": [entry], "first_seq": seq}),
                    )
                }
            };
            let request = request.with_token(token);
            let a = capped.handle(&request, at);
            let b = plain.handle(&request, at);
            prop_assert_eq!(a.to_bytes(), b.to_bytes(), "mutation response {} diverged", i);
        }

        let end = SimTime::from_seconds(1_000);
        for (user, token) in tokens.iter().enumerate() {
            let a = read_state(&capped, token, 4, end);
            let b = read_state(&plain, token, 4, end);
            prop_assert_eq!(a, b, "user {} read-back diverged", user);
        }
    }
}
