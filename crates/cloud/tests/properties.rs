//! Property-based tests for the cloud instance: auth lifecycle, profile
//! analytics invariants, and API robustness against arbitrary requests.

use pmware_algorithms::signature::DiscoveredPlaceId;
use pmware_cloud::analytics::ProfileHistory;
use pmware_cloud::{CellDatabase, CloudInstance, MobilityProfile, PlaceEntry, Request};
use pmware_world::{SimDuration, SimTime};
use proptest::prelude::*;
use serde_json::json;

fn history_from(entries: &[(u32, u64, u64, u64)]) -> ProfileHistory {
    // (place, day, start_hour, len_hours)
    let mut h = ProfileHistory::new();
    for &(place, day, hour, len) in entries {
        let day = day % 28;
        let hour = hour % 20;
        let len = 1 + len % (23 - hour);
        let mut p = h.day(day).cloned().unwrap_or_else(|| MobilityProfile::new(day));
        p.places.push(PlaceEntry {
            place: DiscoveredPlaceId(place % 8),
            arrival: SimTime::from_day_time(day, hour, 0, 0),
            departure: SimTime::from_day_time(day, hour + len, 0, 0),
        });
        h.upsert(p);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn visit_counts_are_consistent(entries in prop::collection::vec(
        (0u32..8, 0u64..28, 0u64..20, 0u64..8), 0..60)) {
        let h = history_from(&entries);
        let total_entries: usize = h.iter().map(|p| p.places.len()).sum();
        let by_place: usize = (0..8).map(|p| h.visit_count(DiscoveredPlaceId(p))).sum();
        prop_assert_eq!(total_entries, by_place);
        for p in 0..8 {
            let id = DiscoveredPlaceId(p);
            let hist = h.weekday_histogram(id);
            prop_assert_eq!(hist.iter().sum::<u32>() as usize, h.visit_count(id));
            prop_assert!(h.visits_per_week(id) >= 0.0);
        }
    }

    #[test]
    fn typical_arrival_is_within_window(entries in prop::collection::vec(
        (0u32..8, 0u64..28, 0u64..20, 0u64..8), 1..60),
        lo in 0u64..22,
    ) {
        let h = history_from(&entries);
        let hi = lo + 2;
        for p in 0..8 {
            if let Some(s) =
                h.typical_arrival_second_of_day(DiscoveredPlaceId(p), Some((lo, hi)))
            {
                prop_assert!(s >= lo * 3_600 && s < hi * 3_600);
            }
        }
    }

    #[test]
    fn markov_distributions_are_probabilities(entries in prop::collection::vec(
        (0u32..8, 0u64..28, 0u64..20, 0u64..8), 0..60)) {
        let h = history_from(&entries);
        let model = pmware_cloud::predict::MarkovPredictor::train(&h);
        for p in 0..8 {
            let dist = model.predict_next(DiscoveredPlaceId(p));
            if dist.is_empty() {
                continue;
            }
            let total: f64 = dist.iter().map(|(_, pr)| pr).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            for w in dist.windows(2) {
                prop_assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn predicted_next_visit_is_in_the_future(entries in prop::collection::vec(
        (0u32..8, 0u64..28, 0u64..20, 0u64..8), 1..60),
        now_secs in 0u64..(40 * 86_400),
    ) {
        let h = history_from(&entries);
        let now = SimTime::from_seconds(now_secs);
        for p in 0..8 {
            if let Some(t) = pmware_cloud::predict::predict_next_visit(
                &h,
                DiscoveredPlaceId(p),
                now,
            ) {
                prop_assert!(t > now);
                prop_assert!(t <= now + SimDuration::from_days(15));
            }
        }
    }

    #[test]
    fn arbitrary_paths_never_panic_and_need_auth(
        path_tail in "[a-z/0-9]{0,24}",
        with_token in any::<bool>(),
        body_num in any::<i64>(),
    ) {
        let mut cloud = CloudInstance::new(CellDatabase::new(), 1);
        let resp = cloud.handle(
            &Request::post(
                "/api/v1/registration",
                json!({"imei": "i", "email": "e"}),
            ),
            SimTime::EPOCH,
        );
        let token = resp.body["token"].as_str().unwrap().to_owned();
        let mut req = Request::post(format!("/api/v1/{path_tail}"), json!({"x": body_num}));
        if with_token {
            req = req.with_token(&token);
        }
        let resp = cloud.handle(&req, SimTime::EPOCH);
        // Never a success for garbage paths; always a structured error.
        if path_tail != "registration" {
            prop_assert!(resp.status == 400 || resp.status == 401 || resp.status == 404,
                "unexpected status {} for {}", resp.status, req.path);
        }
        if !with_token && path_tail != "registration" {
            prop_assert_eq!(resp.status, 401);
        }
    }

    #[test]
    fn wire_round_trip_any_request(
        path in "/[a-z/0-9]{0,30}",
        token in prop::option::of("[A-Za-z0-9-]{1,40}"),
        n in any::<i64>(),
        s in "[a-zA-Z0-9 ]{0,40}",
    ) {
        let mut req = Request::post(path, json!({"n": n, "s": s}));
        if let Some(t) = token {
            req = req.with_token(t);
        }
        let bytes = req.to_bytes();
        let back = Request::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, req);
    }
}
