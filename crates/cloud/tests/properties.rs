//! Property-based tests for the cloud instance: auth lifecycle, profile
//! analytics invariants, and API robustness against arbitrary requests.

use pmware_algorithms::signature::DiscoveredPlaceId;
use pmware_cloud::analytics::ProfileHistory;
use pmware_cloud::{CellDatabase, CloudInstance, MobilityProfile, PlaceEntry, Request};
use pmware_world::{SimDuration, SimTime};
use proptest::prelude::*;
use serde_json::json;

/// Arbitrary JSON values: null / bool / integer / string leaves plus a
/// nested object-with-array shape. No floats — JSON has no NaN, so a
/// float that fails to round-trip would indict the generator, not the
/// wire format.
fn arb_json() -> impl Strategy<Value = serde_json::Value> {
    (
        0u8..5,
        any::<i64>(),
        "[a-zA-Z0-9 _./:-]{0,24}",
        prop::collection::vec(("[a-z_]{1,8}", any::<i64>()), 0..5),
        prop::collection::vec("[a-zA-Z0-9 ]{0,12}", 0..5),
    )
        .prop_map(|(kind, n, s, pairs, items)| match kind {
            0 => serde_json::Value::Null,
            1 => serde_json::json!(n % 2 == 0),
            2 => serde_json::json!(n),
            3 => serde_json::json!(s),
            _ => {
                let object: std::collections::BTreeMap<String, serde_json::Value> = pairs
                    .into_iter()
                    .map(|(key, value)| (key, serde_json::json!(value)))
                    .collect();
                serde_json::json!({
                    "meta": object,
                    "items": items,
                    "n": n,
                    "s": s,
                })
            }
        })
}

fn history_from(entries: &[(u32, u64, u64, u64)]) -> ProfileHistory {
    // (place, day, start_hour, len_hours)
    let mut h = ProfileHistory::new();
    for &(place, day, hour, len) in entries {
        let day = day % 28;
        let hour = hour % 20;
        let len = 1 + len % (23 - hour);
        let mut p = h
            .day(day)
            .cloned()
            .unwrap_or_else(|| MobilityProfile::new(day));
        p.places.push(PlaceEntry {
            place: DiscoveredPlaceId(place % 8),
            arrival: SimTime::from_day_time(day, hour, 0, 0),
            departure: SimTime::from_day_time(day, hour + len, 0, 0),
        });
        h.upsert(p);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn visit_counts_are_consistent(entries in prop::collection::vec(
        (0u32..8, 0u64..28, 0u64..20, 0u64..8), 0..60)) {
        let h = history_from(&entries);
        let total_entries: usize = h.iter().map(|p| p.places.len()).sum();
        let by_place: usize = (0..8).map(|p| h.visit_count(DiscoveredPlaceId(p))).sum();
        prop_assert_eq!(total_entries, by_place);
        for p in 0..8 {
            let id = DiscoveredPlaceId(p);
            let hist = h.weekday_histogram(id);
            prop_assert_eq!(hist.iter().sum::<u32>() as usize, h.visit_count(id));
            prop_assert!(h.visits_per_week(id) >= 0.0);
        }
    }

    #[test]
    fn typical_arrival_is_within_window(entries in prop::collection::vec(
        (0u32..8, 0u64..28, 0u64..20, 0u64..8), 1..60),
        lo in 0u64..22,
    ) {
        let h = history_from(&entries);
        let hi = lo + 2;
        for p in 0..8 {
            if let Some(s) =
                h.typical_arrival_second_of_day(DiscoveredPlaceId(p), Some((lo, hi)))
            {
                prop_assert!(s >= lo * 3_600 && s < hi * 3_600);
            }
        }
    }

    #[test]
    fn markov_distributions_are_probabilities(entries in prop::collection::vec(
        (0u32..8, 0u64..28, 0u64..20, 0u64..8), 0..60)) {
        let h = history_from(&entries);
        let model = pmware_cloud::predict::MarkovPredictor::train(&h);
        for p in 0..8 {
            let dist = model.predict_next(DiscoveredPlaceId(p));
            if dist.is_empty() {
                continue;
            }
            let total: f64 = dist.iter().map(|(_, pr)| pr).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            for w in dist.windows(2) {
                prop_assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn predicted_next_visit_is_in_the_future(entries in prop::collection::vec(
        (0u32..8, 0u64..28, 0u64..20, 0u64..8), 1..60),
        now_secs in 0u64..(40 * 86_400),
    ) {
        let h = history_from(&entries);
        let now = SimTime::from_seconds(now_secs);
        for p in 0..8 {
            if let Some(t) = pmware_cloud::predict::predict_next_visit(
                &h,
                DiscoveredPlaceId(p),
                now,
            ) {
                prop_assert!(t > now);
                prop_assert!(t <= now + SimDuration::from_days(15));
            }
        }
    }

    #[test]
    fn arbitrary_paths_never_panic_and_need_auth(
        path_tail in "[a-z/0-9]{0,24}",
        with_token in any::<bool>(),
        body_num in any::<i64>(),
    ) {
        let cloud = CloudInstance::new(CellDatabase::new(), 1);
        let resp = cloud.handle(
            &Request::post(
                "/api/v1/registration",
                json!({"imei": "i", "email": "e"}),
            ),
            SimTime::EPOCH,
        );
        let token = resp.json()["token"].as_str().unwrap().to_owned();
        let mut req = Request::post(format!("/api/v1/{path_tail}"), json!({"x": body_num}));
        if with_token {
            req = req.with_token(&token);
        }
        let resp = cloud.handle(&req, SimTime::EPOCH);
        // Never a success for garbage paths; always a structured error.
        if path_tail != "registration" {
            // 405 when the tail happens to name a GET-only route.
            prop_assert!(
                resp.status == 400 || resp.status == 401 || resp.status == 404
                    || resp.status == 405,
                "unexpected status {} for {}", resp.status, req.path);
        }
        if !with_token && path_tail != "registration" {
            prop_assert_eq!(resp.status, 401);
        }
    }

    #[test]
    fn wire_round_trip_any_request(
        is_get in any::<bool>(),
        path in "/[a-zA-Z0-9/._-]{0,40}",
        token in prop::option::of("[A-Za-z0-9-]{1,40}"),
        body in arb_json(),
    ) {
        let mut req = if is_get {
            Request::get(path)
        } else {
            Request::post(path, body)
        };
        if let Some(t) = token {
            req = req.with_token(t);
        }
        let bytes = req.to_bytes();
        let back = Request::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn wire_round_trip_any_response(
        status in 100u16..600,
        body in arb_json(),
    ) {
        let resp = pmware_cloud::Response::with_status(status, body);
        let bytes = resp.to_bytes();
        let back: pmware_cloud::Response = serde_json::from_slice(&bytes).unwrap();
        prop_assert_eq!(back, resp);
    }

    /// Sharding invariant: an arbitrary interleaving of requests from two
    /// users never leaks state across them — each user always reads back
    /// exactly what they wrote, as if they had the server to themselves.
    #[test]
    fn interleaved_users_never_cross_talk(
        ops in prop::collection::vec((any::<bool>(), 0u8..3, 0u32..40), 1..50)
    ) {
        use pmware_algorithms::signature::{DiscoveredPlace, PlaceSignature};

        let cloud = CloudInstance::new(CellDatabase::new(), 9);
        let now = SimTime::EPOCH;
        let mut tokens = Vec::new();
        for n in 0..2 {
            let resp = cloud.handle(
                &Request::post(
                    "/api/v1/registration",
                    json!({"imei": format!("imei-{n}"), "email": format!("u{n}@x.com")}),
                ),
                now,
            );
            tokens.push(resp.json()["token"].as_str().unwrap().to_owned());
        }

        // Local models of what each user wrote. Place ids are disjoint by
        // parity so an id leaking across users is unambiguous.
        let mut expected_places: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
        let mut expected_days: [std::collections::BTreeMap<u64, u32>; 2] =
            [Default::default(), Default::default()];
        let mut expected_contacts: [Vec<String>; 2] = [Vec::new(), Vec::new()];

        for (second, kind, val) in ops {
            let u = second as usize;
            let token = &tokens[u];
            match kind {
                0 => {
                    // Replace the user's place list (sync is authoritative).
                    let id = val * 2 + u as u32;
                    if !expected_places[u].contains(&id) {
                        expected_places[u].push(id);
                    }
                    let places: Vec<DiscoveredPlace> = expected_places[u]
                        .iter()
                        .map(|&id| DiscoveredPlace::new(
                            DiscoveredPlaceId(id),
                            PlaceSignature::WifiAps(Default::default()),
                            vec![],
                        ))
                        .collect();
                    let resp = cloud.handle(
                        &Request::post("/api/v1/places/sync", json!({"places": places}))
                            .with_token(token),
                        now,
                    );
                    prop_assert!(resp.is_success());
                }
                1 => {
                    // Upsert one profile day holding a user-tagged place id.
                    let day = u64::from(val % 14);
                    let place = val * 2 + u as u32;
                    let mut profile = MobilityProfile::new(day);
                    profile.places.push(PlaceEntry {
                        place: DiscoveredPlaceId(place),
                        arrival: SimTime::from_day_time(day, 9, 0, 0),
                        departure: SimTime::from_day_time(day, 10, 0, 0),
                    });
                    expected_days[u].insert(day, place);
                    let resp = cloud.handle(
                        &Request::post("/api/v1/profiles/sync", json!({"profile": profile}))
                            .with_token(token),
                        now,
                    );
                    prop_assert!(resp.is_success());
                }
                _ => {
                    let name = format!("peer-{u}-{val}");
                    expected_contacts[u].push(name.clone());
                    let resp = cloud.handle(
                        &Request::post("/api/v1/social/sync", json!({"contacts": [{
                            "contact": name,
                            "start": SimTime::EPOCH,
                            "end": SimTime::EPOCH,
                            "place": null,
                        }]}))
                        .with_token(token),
                        now,
                    );
                    prop_assert!(resp.is_success());
                }
            }
        }

        for u in 0..2 {
            let token = &tokens[u];
            // Place list is exactly what this user last synced.
            let resp = cloud.handle(&Request::get("/api/v1/places").with_token(token), now);
            let got: Vec<u32> = resp.json()["places"]
                .as_array()
                .unwrap()
                .iter()
                .map(|p| p["id"].as_u64().unwrap() as u32)
                .collect();
            prop_assert_eq!(&got, &expected_places[u], "user {} places", u);
            // Every synced day reads back with this user's place id.
            for (&day, &place) in &expected_days[u] {
                let resp = cloud.handle(
                    &Request::get(format!("/api/v1/profiles/{day}")).with_token(token),
                    now,
                );
                prop_assert!(resp.is_success());
                let got = resp.json()["profile"]["places"][0]["place"].as_u64().unwrap();
                prop_assert_eq!(got as u32, place, "user {} day {}", u, day);
            }
            // Contacts accumulate only this user's peers.
            let resp = cloud.handle(
                &Request::post("/api/v1/social/query", json!({"place": null}))
                    .with_token(token),
                now,
            );
            let got: Vec<String> = resp.json()["contacts"]
                .as_array()
                .unwrap()
                .iter()
                .map(|c| c["contact"].as_str().unwrap().to_owned())
                .collect();
            prop_assert_eq!(&got, &expected_contacts[u], "user {} contacts", u);
        }
    }
}

/// One operation against the cloud, generated so the stream covers every
/// interesting dispatch outcome: typed-route hits, unknown paths (404),
/// wrong methods (405 with `allow`), and malformed bodies (400).
#[derive(Debug, Clone)]
enum WireOp {
    Register {
        imei: String,
        email: String,
    },
    SyncPlaces {
        ids: Vec<u32>,
        seq: u64,
    },
    Label {
        place: u32,
        label: String,
    },
    Geolocate {
        mcc: u16,
        mnc: u16,
        lac: u32,
        cid: u32,
    },
    SocialQuery {
        place: Option<u32>,
    },
    UnknownPath {
        tail: String,
    },
    WrongMethod {
        get_on_post: bool,
    },
    Malformed,
}

fn arb_wire_op() -> impl Strategy<Value = WireOp> {
    (
        0u8..8,
        ("[a-z0-9]{1,12}", "[a-zA-Z ]{0,12}", "[a-z0-9/]{1,20}"),
        (
            prop::collection::vec(0u32..16, 0..6),
            0u64..40,
            prop::option::of(0u32..16),
        ),
        (0u16..999, 0u16..999, 0u32..99, 0u32..99),
        any::<bool>(),
    )
        .prop_map(
            |(kind, (imei, label, tail), (ids, seq, place), (mcc, mnc, lac, cid), flag)| match kind
            {
                0 => WireOp::Register {
                    email: format!("{imei}@x.com"),
                    imei,
                },
                1 => WireOp::SyncPlaces { ids, seq },
                2 => WireOp::Label {
                    place: (seq % 16) as u32,
                    label,
                },
                3 => WireOp::Geolocate { mcc, mnc, lac, cid },
                4 => WireOp::SocialQuery { place },
                5 => WireOp::UnknownPath { tail },
                6 => WireOp::WrongMethod { get_on_post: flag },
                _ => WireOp::Malformed,
            },
        )
}

fn op_request(op: &WireOp, token: &str) -> Request {
    use pmware_algorithms::signature::{DiscoveredPlace, PlaceSignature};
    match op {
        WireOp::Register { imei, email } => Request::post(
            "/api/v1/registration",
            json!({"imei": imei, "email": email}),
        ),
        WireOp::SyncPlaces { ids, seq } => {
            let places: Vec<DiscoveredPlace> = ids
                .iter()
                .map(|&id| {
                    DiscoveredPlace::new(
                        DiscoveredPlaceId(id),
                        PlaceSignature::WifiAps(Default::default()),
                        vec![],
                    )
                })
                .collect();
            Request::post("/api/v1/places/sync", json!({"places": places, "seq": seq}))
                .with_token(token)
        }
        WireOp::Label { place, label } => Request::post(
            "/api/v1/places/label",
            json!({"place": place, "label": label}),
        )
        .with_token(token),
        WireOp::Geolocate { mcc, mnc, lac, cid } => Request::post(
            "/api/v1/misc/geolocate",
            json!({"mcc": mcc, "mnc": mnc, "lac": lac, "cid": cid}),
        )
        .with_token(token),
        WireOp::SocialQuery { place } => {
            Request::post("/api/v1/social/query", json!({"place": place})).with_token(token)
        }
        WireOp::UnknownPath { tail } => Request::get(format!("/api/v1/{tail}")).with_token(token),
        WireOp::WrongMethod { get_on_post } => {
            if *get_on_post {
                // places/sync only accepts POST → 405 with allow: ["POST"].
                Request::get("/api/v1/places/sync").with_token(token)
            } else {
                // places only accepts GET → 405 with allow: ["GET"].
                Request::post("/api/v1/places", serde_json::Value::Null).with_token(token)
            }
        }
        WireOp::Malformed => {
            Request::post("/api/v1/places/sync", json!({"wrong": true})).with_token(token)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole's byte-identity contract: the in-process typed path
    /// and the marshalled wire path (request and response each serialized
    /// to JSON bytes and re-parsed, as the fault decorator does) must
    /// produce the same status and byte-identical response bodies for the
    /// same operation stream — including 404s and 405-with-`allow`.
    #[test]
    fn typed_and_marshalled_paths_are_byte_identical(
        ops in prop::collection::vec(arb_wire_op(), 1..25)
    ) {
        let typed = CloudInstance::new(CellDatabase::new(), 77);
        let wired = CloudInstance::new(CellDatabase::new(), 77);
        let now = SimTime::EPOCH;
        let reg = Request::post(
            "/api/v1/registration",
            json!({"imei": "imei-0", "email": "u0@x.com"}),
        );
        let token = typed.handle(&reg, now).json()["token"]
            .as_str()
            .unwrap()
            .to_owned();
        let wired_token = wired.handle(&reg, now).json()["token"]
            .as_str()
            .unwrap()
            .to_owned();
        prop_assert_eq!(&token, &wired_token, "seeded registration must agree");

        for op in &ops {
            let request = op_request(op, &token);
            // Typed path: the request travels as built, no serde anywhere.
            let typed_resp = typed.handle(&request, now);
            // Marshalled path: both directions cross JSON bytes, exactly
            // what FaultyCloud's wire boundary does.
            let wire_request = Request::from_bytes(&request.to_bytes()).unwrap();
            let wired_resp =
                pmware_cloud::Response::from_bytes(&wired.handle(&wire_request, now).to_bytes())
                    .unwrap();
            prop_assert_eq!(typed_resp.status, wired_resp.status, "status for {:?}", op);
            prop_assert_eq!(
                typed_resp.to_bytes(),
                wired_resp.to_bytes(),
                "body bytes for {:?}",
                op
            );
        }
    }

    /// Typed request payloads survive their own wire spelling: rendering
    /// to JSON and re-resolving against the route table reconstructs the
    /// same typed variant (never the `Json` fallback), so the server-side
    /// decode step is lossless for everything the client builds.
    #[test]
    fn typed_payloads_round_trip_through_their_wire_spelling(
        imei in "[a-z0-9]{1,12}",
        email in "[a-z0-9]{1,8}",
        place in 0u32..1000,
        label in "[a-zA-Z ]{0,16}",
        mcc in 0u16..999,
        mnc in 0u16..999,
        lac in 0u16..9999,
        cid in 0u32..9999,
        social_place in prop::option::of(0u32..1000),
    ) {
        use pmware_cloud::{GeolocateBody, LabelBody, Method, Payload, RegistrationBody,
            SocialQueryBody};
        let cases: Vec<(Method, &str, Payload)> = vec![
            (
                Method::Post,
                "/api/v1/registration",
                RegistrationBody { imei, email }.into(),
            ),
            (
                Method::Post,
                "/api/v1/places/label",
                LabelBody { place: DiscoveredPlaceId(place), label }.into(),
            ),
            (
                Method::Post,
                "/api/v1/misc/geolocate",
                GeolocateBody { mcc, mnc, lac, cid }.into(),
            ),
            (
                Method::Post,
                "/api/v1/social/query",
                SocialQueryBody {
                    place: social_place.map(DiscoveredPlaceId),
                }
                .into(),
            ),
        ];
        for (method, path, payload) in cases {
            let spelled = payload.to_json();
            let back = Payload::from_json(method, path, &spelled);
            prop_assert!(
                !matches!(back, Payload::Json(_)),
                "{} must re-resolve typed, got Json fallback",
                path
            );
            prop_assert_eq!(&back, &payload, "{} round-trip", path);
            prop_assert_eq!(back.to_json(), spelled, "{} spelling stable", path);
        }
    }
}

/// A canonical sample request payload for every route label. The match is
/// exhaustive over the live table: adding a [`pmware_cloud::ROUTES`] row
/// without extending this function makes
/// `route_table_and_payload_layer_are_exhaustively_tied` panic, which is
/// the point — a route must never exist without a typed payload story.
fn sample_request_payload(label: &str) -> pmware_cloud::Payload {
    use pmware_algorithms::signature::{DiscoveredPlace, PlaceSignature};
    use pmware_cloud::{
        ArrivalBody, DiscoverBody, GeolocateBody, GeolocateSignatureBody, LabelBody, NextVisitBody,
        Payload, PlaceOnlyBody, RegistrationBody, RouteQueryBody, SocialQueryBody,
        SyncContactsBody, SyncPlacesBody, SyncProfileBody, SyncRoutesBody,
    };
    match label {
        "register" => RegistrationBody {
            imei: "350000000000000".into(),
            email: "a@x.com".into(),
        }
        .into(),
        // Body-less routes: the typed story is `Payload::Empty` (wire
        // spelling `null`).
        "token_refresh" | "places_list" | "routes_list" | "profiles_get" | "analytics_activity"
        | "health" => Payload::Empty,
        "places_discover" => DiscoverBody {
            observations: vec![],
            batch: None,
            start: Some(0),
        }
        .into(),
        "places_sync" => SyncPlacesBody {
            places: vec![DiscoveredPlace::new(
                DiscoveredPlaceId(1),
                PlaceSignature::WifiAps(Default::default()),
                vec![],
            )],
            seq: Some(1),
        }
        .into(),
        "places_label" => LabelBody {
            place: DiscoveredPlaceId(1),
            label: "Home".into(),
        }
        .into(),
        "routes_sync" => SyncRoutesBody {
            routes: vec![],
            seq: Some(1),
        }
        .into(),
        "routes_query" => RouteQueryBody {
            from: DiscoveredPlaceId(0),
            to: DiscoveredPlaceId(1),
        }
        .into(),
        "profiles_sync" => SyncProfileBody {
            profile: MobilityProfile::new(0),
            seq: Some(1),
        }
        .into(),
        "social_sync" => SyncContactsBody {
            contacts: vec![],
            first_seq: Some(0),
        }
        .into(),
        "social_query" => SocialQueryBody {
            place: Some(DiscoveredPlaceId(2)),
        }
        .into(),
        "geolocate" => GeolocateBody {
            mcc: 404,
            mnc: 10,
            lac: 1,
            cid: 2,
        }
        .into(),
        "geolocate_signature" => GeolocateSignatureBody { cells: vec![] }.into(),
        "analytics_arrival" => ArrivalBody {
            place: DiscoveredPlaceId(0),
            window: Some((15, 24)),
        }
        .into(),
        "analytics_next_visit" => NextVisitBody {
            place: DiscoveredPlaceId(0),
            now: SimTime::from_seconds(60),
        }
        .into(),
        "analytics_frequency" | "analytics_next_place" => PlaceOnlyBody {
            place: DiscoveredPlaceId(0),
        }
        .into(),
        other => panic!("route {other:?} has no sample body — extend sample_request_payload"),
    }
}

/// Exhaustiveness tie between the route table and the payload layer:
/// every route resolves back to its own row, has a typed request payload
/// whose wire spelling decodes to the same variant (never the `Json`
/// fallback), and carries a non-empty metric label. New rows fail here
/// until both sides exist.
#[test]
fn route_table_and_payload_layer_are_exhaustively_tied() {
    use pmware_cloud::router::{resolve, PathSpec, Resolution, ROUTES};
    use pmware_cloud::Payload;

    let mut labels = std::collections::BTreeSet::new();
    for (index, route) in ROUTES.iter().enumerate() {
        let path = match route.path {
            PathSpec::Exact(p) => p.to_owned(),
            PathSpec::Prefix(p) => format!("{p}3"),
        };
        match resolve(route.method, &path) {
            Resolution::Matched { index: hit, .. } => {
                assert_eq!(
                    hit, index,
                    "route {} shadowed by an earlier row",
                    route.label
                );
            }
            other => panic!("route {} does not resolve: {other:?}", route.label),
        }
        assert!(!route.label.is_empty());
        assert!(
            labels.insert(route.label),
            "duplicate metric label {:?}",
            route.label
        );

        let payload = sample_request_payload(route.label);
        let spelled = payload.to_json();
        let back = Payload::from_json(route.method, &path, &spelled);
        assert!(
            !matches!(back, Payload::Json(_)),
            "route {}: canonical body fell back to Json",
            route.label
        );
        assert_eq!(back, payload, "route {}: lossy decode", route.label);
        assert_eq!(
            back.to_json(),
            spelled,
            "route {}: unstable wire spelling",
            route.label
        );
    }
    assert_eq!(labels.len(), ROUTES.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fuzzed unrouted traffic pins its error **bytes**, not just the
    /// status: a 404 is exactly `{"error":"no route for <path>"}` and a
    /// 405 exactly `{"allow":[...],"error":"method not allowed"}` in the
    /// canonical envelope — the spellings clients and the federation
    /// layer key on.
    #[test]
    fn unrouted_requests_pin_their_error_bytes(
        tail in "[a-z0-9/._-]{0,24}",
        is_get in any::<bool>(),
        body in arb_json(),
    ) {
        use pmware_cloud::router::{resolve, Resolution};
        use pmware_cloud::Method;

        let cloud = CloudInstance::new(CellDatabase::new(), 5);
        let reg = cloud.handle(
            &Request::post("/api/v1/registration", json!({"imei": "i", "email": "e"})),
            SimTime::EPOCH,
        );
        let token = reg.json()["token"].as_str().unwrap().to_owned();

        let path = format!("/api/v1/{tail}");
        let method = if is_get { Method::Get } else { Method::Post };
        let request = if is_get {
            Request::get(&path)
        } else {
            Request::post(&path, body)
        }
        .with_token(&token);
        let response = cloud.handle(&request, SimTime::EPOCH);
        let wire = String::from_utf8(response.to_bytes().to_vec()).unwrap();

        match resolve(method, &path) {
            Resolution::NotFound => {
                prop_assert_eq!(response.status, 404);
                let expected =
                    format!(r#"{{"body":{{"error":"no route for {path}"}},"status":404}}"#);
                prop_assert_eq!(wire, expected);
            }
            Resolution::MethodNotAllowed { allow } => {
                prop_assert_eq!(response.status, 405);
                let allowed = allow
                    .iter()
                    .map(|m| format!("\"{}\"", m.as_str()))
                    .collect::<Vec<_>>()
                    .join(",");
                let expected = format!(
                    r#"{{"body":{{"allow":[{allowed}],"error":"method not allowed"}},"status":405}}"#
                );
                prop_assert_eq!(wire, expected);
            }
            // The fuzzer occasionally lands on a real route; those are
            // owned by the endpoint tests, not this pin.
            Resolution::Matched { .. } => {}
        }
    }
}
