//! PMWare Cloud Instance (PCI).
//!
//! §2.3 of the paper: the cloud instance *"is responsible for storing and
//! managing long-term human mobility patterns, helping mobile service in
//! place/route discovery process, as well as performing advanced analytics
//! and prediction operations"*. The authors ran it as a Django/Apache
//! service on Windows Azure; here it is an in-process server speaking the
//! same REST/JSON shape through [`api::Request`]/[`api::Response`] values,
//! which exercises routing, token auth, and JSON marshalling without a
//! network.
//!
//! The six endpoint families of §2.3.3 are implemented in [`instance`]:
//!
//! | Family | Endpoints |
//! |---|---|
//! | Registration | `POST /api/v1/registration`, `POST /api/v1/token/refresh` |
//! | Places | discover (GCA offload), sync, list, label |
//! | Routes | discover, sync, list (with usage frequency) |
//! | Mobility profiles | sync, fetch by day |
//! | Social contacts | sync, query by place |
//! | Misc | cell-ID geolocation (an OpenCellID stand-in) |
//!
//! plus the analytics/prediction queries of §2.3.2 ([`analytics`],
//! [`predict`]): typical arrival time at a place, next-visit prediction,
//! and visit frequency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod api;
pub mod auth;
pub mod geolocate;
pub mod instance;
pub mod predict;
pub mod profile;
pub mod transport;

pub use api::{Method, Request, Response};
pub use auth::{AuthToken, DeviceIdentity, UserId};
pub use geolocate::CellDatabase;
pub use instance::{CloudInstance, SharedCloud, SHARD_COUNT};
pub use transport::{
    CloudEndpoint, CloudTransport, FaultKind, FaultPlan, FaultStats, FaultyCloud,
    ALL_FAULT_KINDS, STATUS_BUDGET_EXHAUSTED, STATUS_INJECTED_ERROR, STATUS_TIMEOUT,
};
pub use profile::{ActivitySummary, ContactEntry, MobilityProfile, PlaceEntry, RouteEntry};
