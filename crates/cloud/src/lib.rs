//! PMWare Cloud Instance (PCI).
//!
//! §2.3 of the paper: the cloud instance *"is responsible for storing and
//! managing long-term human mobility patterns, helping mobile service in
//! place/route discovery process, as well as performing advanced analytics
//! and prediction operations"*. The authors ran it as a Django/Apache
//! service on Windows Azure; here it is an in-process server speaking the
//! same REST/JSON shape through [`api::Request`]/[`api::Response`] values,
//! which exercises routing, token auth, and JSON marshalling without a
//! network.
//!
//! The six endpoint families of §2.3.3 are implemented in [`instance`]:
//!
//! | Family | Endpoints |
//! |---|---|
//! | Registration | `POST /api/v1/registration`, `POST /api/v1/token/refresh` |
//! | Places | discover (GCA offload), sync, list, label |
//! | Routes | discover, sync, list (with usage frequency) |
//! | Mobility profiles | sync, fetch by day |
//! | Social contacts | sync, query by place |
//! | Misc | cell-ID geolocation (an OpenCellID stand-in) |
//!
//! plus the analytics/prediction queries of §2.3.2 ([`analytics`],
//! [`predict`]): typical arrival time at a place, next-visit prediction,
//! and visit frequency.
//!
//! Since the router/middleware refactor, the service is a *stack*: the
//! declarative route table in [`router`] is the single source of truth
//! for dispatch, endpoint metric labels, and 404-vs-405 semantics; the
//! endpoint bodies live in small per-family handler modules; and
//! cross-cutting behavior (outage injection, request metrics, the
//! deterministic [`admission`] controller, token auth, shard accounting)
//! composes as [`layer::Layer`]s over the same seam the client-side
//! [`transport::FaultyCloud`] decorator uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod analytics;
pub mod api;
pub mod auth;
pub mod geolocate;
mod handlers;
pub mod instance;
pub mod latency;
pub mod layer;
pub mod payload;
pub mod predict;
pub mod profile;
pub mod router;
mod state;
mod storage;
pub mod topology;
pub mod transport;
pub mod wire;

pub use admission::{
    Admission, AdmissionConfig, AdmissionControl, RateBudget, STATUS_RATE_LIMITED,
};
pub use api::{Method, Request, Response, SpanCtx};
pub use auth::{AuthToken, DeviceIdentity, UserId};
pub use geolocate::CellDatabase;
pub use instance::{CloudInstance, SharedCloud, SHARD_COUNT};
pub use latency::{
    EndpointCost, LatencyControl, LatencyProfile, QueueConfig, QueueMode, QueueOutcome,
    LATENCY_BOUNDS_US,
};
pub use layer::{Layer, Next};
pub use payload::{
    ArrivalBody, DiscoverBody, GeolocateBody, GeolocateSignatureBody, HandshakeBody, LabelBody,
    NextVisitBody, Payload, PlaceOnlyBody, RegistrationBody, RouteQueryBody, SocialQueryBody,
    SyncContactsBody, SyncPlacesBody, SyncProfileBody, SyncRoutesBody, REGISTRATION_PATH,
    TOPOLOGY_HANDSHAKE_PATH,
};
pub use profile::{ActivitySummary, ContactEntry, MobilityProfile, PlaceEntry, RouteEntry};
pub use router::{RateClass, Route, RouteAuth, ALL_RATE_CLASSES, ENDPOINT_LABELS, ROUTES};
pub use storage::StorageConfig;
pub use topology::{
    ActivityFanout, BalancePolicy, FailoverReport, FederatedEndpoint, InstanceId, TopologyRouter,
};
pub use transport::{
    CloudEndpoint, CloudTransport, FaultKind, FaultPlan, FaultStats, FaultyCloud, ALL_FAULT_KINDS,
    STATUS_BUDGET_EXHAUSTED, STATUS_INJECTED_ERROR, STATUS_MISDIRECTED, STATUS_TIMEOUT,
};
