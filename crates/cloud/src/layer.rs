//! The middleware seam: a sim-time, synchronous, tower-shaped [`Layer`]
//! trait and the [`Next`] continuation that threads a request through a
//! stack of them down to a terminal [`CloudTransport`].
//!
//! One abstraction, two sides of the wire. Server-side, `CloudInstance`
//! is a stack of layers — outage injection, request metrics, admission
//! control, auth, shard accounting — over the route-table dispatcher.
//! Client-side, the fault-injecting `FaultyCloud` decorator is *the same
//! trait* over whatever transport it wraps. Cross-cutting behavior
//! composes by stacking instead of accreting inside one `handle()` body.
//!
//! Everything is synchronous and driven by [`SimTime`]: a layer that
//! wants to "wait" answers with a retryable status (503/429/599) and a
//! hint, and the *client's* sim-time retry loop supplies the passage of
//! time. That keeps the whole stack deterministic and replayable — no
//! executor, no wall clock.

use std::fmt;
use std::sync::Arc;

use pmware_world::SimTime;

use crate::admission::{Admission, AdmissionControl};
use crate::api::{Request, Response};
use crate::router::{self, Resolution, RouteAuth};
use crate::state::CloudCore;
use crate::transport::CloudTransport;

/// One middleware layer. Implementations either answer the request
/// themselves (short-circuit) or delegate to `next`, optionally doing
/// work before and after the inner call — the classic onion.
pub trait Layer: Send + Sync + fmt::Debug {
    /// Processes `request` at simulated instant `now`; `next` is the rest
    /// of the stack.
    fn call(&self, request: &Request, now: SimTime, next: Next<'_>) -> Response;
}

/// The remainder of a middleware stack: zero or more layers and the
/// terminal transport. Calling [`Next::run`] peels one layer (or invokes
/// the terminal when none remain).
#[derive(Clone, Copy)]
pub struct Next<'a> {
    layers: &'a [Arc<dyn Layer>],
    terminal: &'a dyn CloudTransport,
}

impl fmt::Debug for Next<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Next")
            .field("remaining_layers", &self.layers.len())
            .finish()
    }
}

impl<'a> Next<'a> {
    /// A stack over `layers`, bottoming out at `terminal`.
    pub fn new(layers: &'a [Arc<dyn Layer>], terminal: &'a dyn CloudTransport) -> Next<'a> {
        Next { layers, terminal }
    }

    /// Runs the remainder of the stack on `request`.
    pub fn run(self, request: &Request, now: SimTime) -> Response {
        match self.layers.split_first() {
            Some((layer, rest)) => layer.call(
                request,
                now,
                Next {
                    layers: rest,
                    terminal: self.terminal,
                },
            ),
            None => self.terminal.send(request, now),
        }
    }
}

/// Terminal service of the server stack: route-table dispatch over the
/// shared core (see [`crate::router::dispatch`]).
#[derive(Debug)]
pub(crate) struct RouterService {
    pub(crate) core: Arc<CloudCore>,
}

impl CloudTransport for RouterService {
    fn send(&self, request: &Request, now: SimTime) -> Response {
        router::dispatch(&self.core, request, now)
    }
}

/// Injected-outage gate: while the outage flag is up every request fails
/// with 503 before any accounting, as if the Azure instance were
/// unreachable (the phone's local fallbacks must carry on).
#[derive(Debug)]
pub(crate) struct OutageLayer {
    pub(crate) core: Arc<CloudCore>,
}

impl Layer for OutageLayer {
    fn call(&self, request: &Request, now: SimTime, next: Next<'_>) -> Response {
        if self.core.outage() {
            return Response::error(503, "service unavailable");
        }
        next.run(request, now)
    }
}

/// Per-endpoint request counting (and, in bench builds, wall-clock
/// latency). Sits above admission and auth so that shed and rejected
/// requests are still visible in `cloud_requests_total` — they cost the
/// server work too.
#[derive(Debug)]
pub(crate) struct RequestMetricsLayer {
    pub(crate) core: Arc<CloudCore>,
}

impl Layer for RequestMetricsLayer {
    fn call(&self, request: &Request, now: SimTime, next: Next<'_>) -> Response {
        let endpoint = router::endpoint_index(request.method, &request.path);
        self.core.metrics.endpoint_requests[endpoint].inc();
        #[cfg(feature = "wallclock")]
        let timer = pmware_obs::profiling::WallTimer::start();
        let response = next.run(request, now);
        #[cfg(feature = "wallclock")]
        timer.record(&self.core.metrics.endpoint_nanos[endpoint]);
        response
    }
}

/// The sim-time latency model (see [`crate::latency`]): draws a
/// service time for every request, queues validated users' requests
/// behind their lane (or the shared instance FIFO), and sheds arrivals
/// over the configured depth with a 429 whose `retry_after_s` is the
/// queue's actual drain time. Sits between request metrics (a shed
/// request was still offered load) and admission control (a queue-shed
/// request must not also consume an admission token — it was never
/// served). Timed responses carry a `(queue µs, service µs)` annotation
/// for the client's span collector. Disabled (the default) this is one
/// atomic load.
#[derive(Debug)]
pub(crate) struct QueueLayer {
    pub(crate) core: Arc<CloudCore>,
}

impl Layer for QueueLayer {
    fn call(&self, request: &Request, now: SimTime, next: Next<'_>) -> Response {
        if !self.core.latency.is_enabled() {
            return next.run(request, now);
        }
        let endpoint = router::endpoint_index(request.method, &request.path);
        let class = match router::resolve(request.method, &request.path) {
            Resolution::Matched { route, .. } => route.rate_class,
            _ => router::RateClass::Query,
        };
        // Queue on the *validated* caller only — an invalid token must
        // not open a lane, and the public registration route stays
        // unqueued so a shedding instance never locks users out entirely.
        let user = request
            .token
            .as_deref()
            .and_then(|t| self.core.tokens.read().validate(t, now));
        match self.core.latency.process(endpoint, user, now) {
            crate::latency::QueueOutcome::Pass => next.run(request, now),
            crate::latency::QueueOutcome::Shed { retry_after } => {
                AdmissionControl::deny_response(class, retry_after)
            }
            crate::latency::QueueOutcome::Timed {
                queue_us,
                service_us,
            } => next.run(request, now).with_latency(queue_us, service_us),
        }
    }
}

/// Deterministic admission control (see [`crate::admission`]). Sits
/// *before* auth on purpose: shedding load must be cheaper than serving
/// it, and answering an over-budget client 429 instead of 401 keeps an
/// expired token from triggering a re-registration storm exactly when
/// the server is trying to shed. The bucket key is the *validated*
/// caller identity — an unauthenticated or invalid-token request passes
/// through for the auth layer to reject (and registration itself, the
/// one public route, is exempt so a throttled user can always get back
/// in the door).
#[derive(Debug)]
pub(crate) struct AdmissionLayer {
    pub(crate) core: Arc<CloudCore>,
}

impl Layer for AdmissionLayer {
    fn call(&self, request: &Request, now: SimTime, next: Next<'_>) -> Response {
        if self.core.admission.is_enabled() {
            if let Resolution::Matched { route, .. } =
                router::resolve(request.method, &request.path)
            {
                if route.auth == RouteAuth::Bearer {
                    let user = request
                        .token
                        .as_deref()
                        .and_then(|t| self.core.tokens.read().validate(t, now));
                    if let Some(user) = user {
                        if let Admission::Deny { retry_after } =
                            self.core.admission.admit(user, route.rate_class, now)
                        {
                            self.core.metrics.admission_denied(route.rate_class).inc();
                            return AdmissionControl::deny_response(route.rate_class, retry_after);
                        }
                    }
                }
            }
        }
        next.run(request, now)
    }
}

/// Bearer-token enforcement. Every request except the public
/// registration route needs a valid, unexpired token — including
/// unrouted paths, so an unauthenticated probe learns nothing about
/// which paths exist (401 before 404/405, same as the historical
/// monolith).
#[derive(Debug)]
pub(crate) struct AuthLayer {
    pub(crate) core: Arc<CloudCore>,
}

fn is_public(request: &Request) -> bool {
    matches!(
        router::resolve(request.method, &request.path),
        Resolution::Matched { route, .. } if route.auth == RouteAuth::Public
    )
}

impl Layer for AuthLayer {
    fn call(&self, request: &Request, now: SimTime, next: Next<'_>) -> Response {
        if !is_public(request) {
            let Some(token) = request.token.as_deref() else {
                return Response::unauthorized("missing bearer token");
            };
            if self.core.tokens.read().validate(token, now).is_none() {
                return Response::unauthorized("invalid or expired token");
            }
        }
        next.run(request, now)
    }
}

/// Relocation gate for federated deployments. After a failover migrates a
/// user's state to another instance, any authenticated request from that
/// user reaching *this* instance would mutate abandoned state — so it is
/// answered with [`crate::STATUS_MISDIRECTED`] (421) instead, which the
/// federated endpoint turns into a topology refresh and a resend. Sits
/// below auth: only a caller who proved their identity can learn they
/// were moved, and expired tokens still get the ordinary 401.
#[derive(Debug)]
pub(crate) struct RelocationLayer {
    pub(crate) core: Arc<CloudCore>,
}

impl Layer for RelocationLayer {
    fn call(&self, request: &Request, now: SimTime, next: Next<'_>) -> Response {
        if !is_public(request) {
            let user = request
                .token
                .as_deref()
                .and_then(|t| self.core.tokens.read().validate(t, now));
            if let Some(user) = user {
                if self.core.relocated.read().contains(&user) {
                    return Response::error(
                        crate::transport::STATUS_MISDIRECTED,
                        "user relocated to another instance",
                    );
                }
            }
        }
        next.run(request, now)
    }
}

/// Per-shard request attribution for every authenticated request (the
/// legacy `total_requests`/`shard_request_counts` views). Below auth, so
/// only requests that actually carried a valid token count; public
/// registration never reaches a shard and stays out, as documented on
/// `CloudInstance::shard_request_counts`.
#[derive(Debug)]
pub(crate) struct ShardAccountingLayer {
    pub(crate) core: Arc<CloudCore>,
}

impl Layer for ShardAccountingLayer {
    fn call(&self, request: &Request, now: SimTime, next: Next<'_>) -> Response {
        if !is_public(request) {
            let user = request
                .token
                .as_deref()
                .and_then(|t| self.core.tokens.read().validate(t, now));
            if let Some(user) = user {
                self.core.metrics.shard_requests[user.0 as usize % crate::state::SHARD_COUNT].inc();
            }
        }
        next.run(request, now)
    }
}
