//! Cell-ID geolocation (§2.3.3, "Misc" endpoint family).
//!
//! *"PMWare cloud instance also hosts miscellaneous services such as
//! geo-location API which is used to convert Cell IDs into their
//! approximate geo-coordinates using Open Cell ID and Google Maps
//! geo-location APIs."* We have neither service, so the stand-in is a
//! cell database extracted from the simulated world's tower layout — the
//! same crowd-sourced mapping OpenCellID approximates for the real world.

use std::collections::HashMap;

use pmware_geo::GeoPoint;
use pmware_world::{CellGlobalId, World};
use serde::{Deserialize, Serialize};

/// A database mapping cell identities to approximate coordinates.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CellDatabase {
    cells: HashMap<CellGlobalId, GeoPoint>,
}

impl CellDatabase {
    /// An empty database.
    pub fn new() -> Self {
        CellDatabase::default()
    }

    /// Builds the database from a world's tower layout (the OpenCellID
    /// stand-in: complete and accurate because the "crowd" is a simulator).
    pub fn from_world(world: &World) -> Self {
        let cells = world
            .towers()
            .iter()
            .map(|t| (t.cell(), t.position()))
            .collect();
        CellDatabase { cells }
    }

    /// Number of known cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if no cells are known.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Adds or replaces one cell entry.
    pub fn insert(&mut self, cell: CellGlobalId, position: GeoPoint) {
        self.cells.insert(cell, position);
    }

    /// Approximate coordinates of one cell.
    pub fn locate(&self, cell: CellGlobalId) -> Option<GeoPoint> {
        self.cells.get(&cell).copied()
    }

    /// Approximate centroid of a cell-set place signature: the mean of the
    /// member cells' tower positions. Returns `None` when no cell is known.
    pub fn locate_signature<'a, I>(&self, cells: I) -> Option<GeoPoint>
    where
        I: IntoIterator<Item = &'a CellGlobalId>,
    {
        let known: Vec<GeoPoint> = cells.into_iter().filter_map(|c| self.locate(*c)).collect();
        GeoPoint::centroid(&known).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_world::builder::{RegionProfile, WorldBuilder};
    use pmware_world::{CellId, Lac, Plmn};

    #[test]
    fn from_world_knows_every_tower() {
        let world = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(1)
            .build();
        let db = CellDatabase::from_world(&world);
        assert_eq!(db.len(), world.towers().len());
        for t in world.towers() {
            assert_eq!(db.locate(t.cell()), Some(t.position()));
        }
    }

    #[test]
    fn unknown_cell_is_none() {
        let db = CellDatabase::new();
        assert!(db.is_empty());
        let cell = CellGlobalId {
            plmn: Plmn { mcc: 1, mnc: 1 },
            lac: Lac(1),
            cell: CellId(1),
        };
        assert_eq!(db.locate(cell), None);
    }

    #[test]
    fn signature_centroid_averages_known_cells() {
        let world = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(2)
            .build();
        let db = CellDatabase::from_world(&world);
        let towers = &world.towers()[..3];
        let cells: Vec<CellGlobalId> = towers.iter().map(|t| t.cell()).collect();
        let centroid = db.locate_signature(cells.iter()).unwrap();
        let expected =
            GeoPoint::centroid(&towers.iter().map(|t| t.position()).collect::<Vec<_>>()).unwrap();
        assert_eq!(centroid, expected);
    }

    #[test]
    fn signature_of_unknown_cells_is_none() {
        let db = CellDatabase::new();
        let cell = CellGlobalId {
            plmn: Plmn { mcc: 1, mnc: 1 },
            lac: Lac(1),
            cell: CellId(1),
        };
        assert!(db.locate_signature([cell].iter()).is_none());
    }
}
