//! The write-ahead log: one record type, one idempotent replay path.
//!
//! Both consumers of request logging — the federation migration WAL
//! ([`crate::topology`]) and the durable storage engine — share this
//! module. A [`WalRecord`] is a per-identity-key sequenced operation:
//! either a replayable mutating [`Request`] (registration plus the
//! `Ingest`-class offloads and syncs) or a [`WalOp::TokenGrant`] capturing
//! a token the instance issued, so a recovered instance can re-adopt the
//! session the client is still holding.
//!
//! Replay is idempotent twice over: [`replay_session`] skips records at or
//! below a caller-supplied sequence watermark (the snapshot the target
//! already holds), and the server-side store watermarks (`absorbed_upto`,
//! per-day profile sequences, places/routes sync sequences) absorb any
//! record that slips through both filters. Queries are never logged: they
//! do not shape user state.

use std::collections::BTreeMap;

use pmware_world::SimTime;
use serde_json::Value;

use crate::api::{Request, Response};
use crate::payload::{Payload, REGISTRATION_PATH};

/// One logged operation under an identity key.
#[derive(Debug, Clone)]
pub(crate) enum WalOp {
    /// A successful mutating request, replayable through `handle`
    /// (boxed: records outnumber grants and a request dwarfs one).
    Request(Box<Request>),
    /// A token the instance issued for this identity (registration or
    /// refresh). Never replayed through the stack — adoption grafts it
    /// back so the client's live token keeps validating after recovery.
    TokenGrant {
        /// The opaque token string.
        token: String,
        /// Its expiry instant.
        expires_at: SimTime,
    },
}

/// One WAL record: a per-key sequence number and the operation.
#[derive(Debug, Clone)]
pub(crate) struct WalRecord {
    /// 1-based position in this key's log (the dedup watermark unit).
    pub(crate) seq: u64,
    /// The identity key the record belongs to.
    pub(crate) key: String,
    /// The logged operation.
    pub(crate) op: WalOp,
}

impl WalOp {
    /// Wraps a request as a log op (boxing it for the enum).
    pub(crate) fn request(request: Request) -> WalOp {
        WalOp::Request(Box::new(request))
    }

    /// Re-encodes a request op through the pinned wire format before it
    /// is retained. Logged requests live as long as the log; a raw-JSON
    /// body tree (plus the caller's cached wire bytes) is an order of
    /// magnitude heavier than the typed decoding the route table
    /// produces, so long-lived records keep the compact form. The span
    /// context is copied back across the round trip (it is not wire
    /// state) so replayed requests still join their originating trace;
    /// requests the wire format cannot round-trip are kept as-is.
    pub(crate) fn compacted(self) -> WalOp {
        match self {
            WalOp::Request(request) => {
                let wire = request.to_bytes();
                match Request::from_bytes(&wire) {
                    Ok(compact) => WalOp::request(compact.with_ctx(request.ctx)),
                    Err(_) => WalOp::Request(request),
                }
            }
            grant @ WalOp::TokenGrant { .. } => grant,
        }
    }
}

impl WalRecord {
    /// Whether this record is a registration request (always replayed —
    /// it mints the user — and never compacted away).
    pub(crate) fn is_registration(&self) -> bool {
        matches!(&self.op, WalOp::Request(r) if r.path == REGISTRATION_PATH)
    }

    /// Whether compaction must keep this record even below the snapshot
    /// watermark: registrations and token grants rebuild the auth side,
    /// which snapshots do not capture.
    pub(crate) fn is_compaction_exempt(&self) -> bool {
        self.is_registration() || matches!(self.op, WalOp::TokenGrant { .. })
    }

    /// The on-disk JSONL spelling. The embedded request reuses the pinned
    /// wire format (`Request::to_bytes`), so the WAL format is stable
    /// wherever the wire format is.
    pub(crate) fn to_json(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("key".to_owned(), Value::String(self.key.clone()));
        map.insert(
            "seq".to_owned(),
            Value::Number(serde_json::Number::PosInt(self.seq)),
        );
        match &self.op {
            WalOp::Request(request) => {
                let wire = String::from_utf8(request.to_bytes().to_vec())
                    .expect("request wire bytes are valid JSON");
                map.insert("kind".to_owned(), Value::String("request".to_owned()));
                map.insert("request".to_owned(), Value::String(wire));
            }
            WalOp::TokenGrant { token, expires_at } => {
                map.insert("kind".to_owned(), Value::String("token".to_owned()));
                map.insert("token".to_owned(), Value::String(token.clone()));
                map.insert(
                    "expires_at_s".to_owned(),
                    Value::Number(serde_json::Number::PosInt(expires_at.as_seconds())),
                );
            }
        }
        Value::Object(map)
    }

    /// Parses one JSONL line back into a record.
    pub(crate) fn from_json(value: &Value) -> Result<WalRecord, String> {
        let key = value["key"]
            .as_str()
            .ok_or("wal record missing key")?
            .to_owned();
        let seq = value["seq"].as_u64().ok_or("wal record missing seq")?;
        let op = match value["kind"].as_str() {
            Some("request") => {
                let wire = value["request"]
                    .as_str()
                    .ok_or("request record missing body")?;
                let request = Request::from_bytes(wire.as_bytes())
                    .map_err(|e| format!("unparseable wal request: {e}"))?;
                WalOp::request(request)
            }
            Some("token") => WalOp::TokenGrant {
                token: value["token"]
                    .as_str()
                    .ok_or("token record missing token")?
                    .to_owned(),
                expires_at: SimTime::from_seconds(
                    value["expires_at_s"]
                        .as_u64()
                        .ok_or("token record missing expiry")?,
                ),
            },
            other => return Err(format!("unknown wal record kind {other:?}")),
        };
        Ok(WalRecord { seq, key, op })
    }
}

/// An in-memory per-key sequenced log — the shared core of both the
/// migration WAL and the durable WAL (which adds file persistence).
#[derive(Debug, Default)]
pub(crate) struct WalLog {
    by_key: BTreeMap<String, Vec<WalRecord>>,
}

impl WalLog {
    /// Appends `op` under `key`, assigning the next per-key sequence
    /// number. Returns a clone of the stored record (for persistence).
    pub(crate) fn append(&mut self, key: &str, op: WalOp) -> WalRecord {
        let log = self.by_key.entry(key.to_owned()).or_default();
        let seq = log.last().map_or(0, |r| r.seq) + 1;
        let record = WalRecord {
            seq,
            key: key.to_owned(),
            op,
        };
        log.push(record.clone());
        record
    }

    /// Inserts an already-sequenced record (durable load path). Records
    /// are re-sorted by sequence once loading finishes.
    pub(crate) fn insert_loaded(&mut self, record: WalRecord) {
        self.by_key
            .entry(record.key.clone())
            .or_default()
            .push(record);
    }

    /// Sorts every key's records by sequence (after a durable load, where
    /// shard files interleave arbitrarily).
    pub(crate) fn sort(&mut self) {
        for log in self.by_key.values_mut() {
            log.sort_by_key(|r| r.seq);
        }
    }

    /// A clone of `key`'s records with `seq > after`, in sequence order.
    pub(crate) fn suffix(&self, key: &str, after: u64) -> Vec<WalRecord> {
        self.by_key
            .get(key)
            .map(|log| log.iter().filter(|r| r.seq > after).cloned().collect())
            .unwrap_or_default()
    }

    /// The highest sequence appended under `key` (0 if none).
    pub(crate) fn last_seq(&self, key: &str) -> u64 {
        self.by_key
            .get(key)
            .and_then(|log| log.last())
            .map_or(0, |r| r.seq)
    }

    /// Number of records held for `key`.
    pub(crate) fn len_of(&self, key: &str) -> usize {
        self.by_key.get(key).map_or(0, Vec::len)
    }

    /// All keys with at least one record, in key order (deterministic
    /// recovery ordering).
    pub(crate) fn keys(&self) -> Vec<String> {
        self.by_key.keys().cloned().collect()
    }

    /// Drops every non-exempt record of `key` at or below `upto` (the
    /// key's snapshot watermark). Registrations and token grants survive:
    /// snapshots capture store state, not the auth registry.
    pub(crate) fn compact(&mut self, key: &str, upto: u64) {
        if let Some(log) = self.by_key.get_mut(key) {
            log.retain(|r| r.seq > upto || r.is_compaction_exempt());
        }
    }

    /// Every record, in (key, seq) order — the durable rewrite path.
    pub(crate) fn all_records(&self) -> impl Iterator<Item = &WalRecord> {
        self.by_key.values().flatten()
    }
}

/// Outcome of one [`replay_session`] pass.
#[derive(Debug, Default)]
pub(crate) struct ReplaySummary {
    /// Requests replayed successfully.
    pub(crate) replayed: usize,
    /// Token grants encountered, in log order (last is the client's live
    /// token; the caller adopts them after replay).
    pub(crate) grants: Vec<(String, SimTime)>,
}

/// The one idempotent replay path, shared by federation migration and
/// crash recovery.
///
/// Registration requests always replay as logged (they mint the user and
/// yield the replay token). Every other request is skipped while `seq ≤
/// after_seq` — the target already holds that history in a snapshot — and
/// otherwise replays under the current replay token, mirroring the token
/// rotations the client's own retries performed. `observe` fires once per
/// replayed request (span recording hook).
pub(crate) fn replay_session(
    records: &[WalRecord],
    mut handle: impl FnMut(&Request) -> Response,
    after_seq: u64,
    mut observe: impl FnMut(&Request, &Response),
) -> ReplaySummary {
    let mut summary = ReplaySummary::default();
    let mut replay_token: Option<String> = None;
    for record in records {
        let request = match &record.op {
            WalOp::TokenGrant { token, expires_at } => {
                summary.grants.push((token.clone(), *expires_at));
                continue;
            }
            WalOp::Request(request) if record.is_registration() => (**request).clone(),
            WalOp::Request(request) => {
                if record.seq <= after_seq {
                    continue;
                }
                match &replay_token {
                    Some(token) => (**request).clone().with_token(token.clone()),
                    None => continue,
                }
            }
        };
        let response = handle(&request);
        observe(&request, &response);
        if response.is_success() {
            summary.replayed += 1;
            if let Payload::Registered { token, .. } = &response.body {
                replay_token = Some(token.clone());
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn records_round_trip_through_json() {
        let record = WalRecord {
            seq: 3,
            key: "imei|mail".to_owned(),
            op: WalOp::request(
                Request::post("/api/v1/social/sync", json!({"contacts": []})).with_token("tok-x"),
            ),
        };
        let back = WalRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(back.seq, 3);
        assert_eq!(back.key, "imei|mail");
        match back.op {
            WalOp::Request(r) => {
                assert_eq!(r.path, "/api/v1/social/sync");
                assert_eq!(r.token.as_deref(), Some("tok-x"));
            }
            other => panic!("expected request, got {other:?}"),
        }

        let grant = WalRecord {
            seq: 4,
            key: "imei|mail".to_owned(),
            op: WalOp::TokenGrant {
                token: "tok-y".to_owned(),
                expires_at: SimTime::from_seconds(86_400),
            },
        };
        let back = WalRecord::from_json(&grant.to_json()).unwrap();
        match back.op {
            WalOp::TokenGrant { token, expires_at } => {
                assert_eq!(token, "tok-y");
                assert_eq!(expires_at, SimTime::from_seconds(86_400));
            }
            other => panic!("expected grant, got {other:?}"),
        }
    }

    #[test]
    fn append_assigns_per_key_sequences() {
        let mut log = WalLog::default();
        let a1 = log.append("a", WalOp::request(Request::get("/x")));
        let b1 = log.append("b", WalOp::request(Request::get("/y")));
        let a2 = log.append("a", WalOp::request(Request::get("/z")));
        assert_eq!((a1.seq, b1.seq, a2.seq), (1, 1, 2));
        assert_eq!(log.last_seq("a"), 2);
        assert_eq!(log.suffix("a", 1).len(), 1);
        assert_eq!(log.len_of("missing"), 0);
    }

    #[test]
    fn compaction_keeps_registrations_and_grants() {
        let mut log = WalLog::default();
        log.append(
            "a",
            WalOp::request(Request::post("/api/v1/registration", json!({"imei": "1"}))),
        );
        log.append(
            "a",
            WalOp::TokenGrant {
                token: "tok".into(),
                expires_at: SimTime::EPOCH,
            },
        );
        log.append(
            "a",
            WalOp::request(Request::post("/api/v1/places/sync", json!({"places": []}))),
        );
        log.append(
            "a",
            WalOp::request(Request::post("/api/v1/places/sync", json!({"places": []}))),
        );
        log.compact("a", 3);
        let left = log.suffix("a", 0);
        assert_eq!(left.len(), 3, "registration + grant + seq-4 sync survive");
        assert!(left[0].is_registration());
        assert_eq!(left[2].seq, 4);
    }

    #[test]
    fn replay_skips_below_watermark_but_always_registers() {
        let mut log = WalLog::default();
        log.append(
            "a",
            WalOp::request(Request::post("/api/v1/registration", json!({"imei": "1"}))),
        );
        log.append(
            "a",
            WalOp::request(Request::post("/api/v1/places/sync", json!({"places": []}))),
        );
        log.append(
            "a",
            WalOp::request(Request::post(
                "/api/v1/social/sync",
                json!({"contacts": []}),
            )),
        );
        let records = log.suffix("a", 0);
        let mut seen = Vec::new();
        let summary = replay_session(
            &records,
            |request| {
                seen.push(request.path.clone());
                if request.path == REGISTRATION_PATH {
                    Response::ok(Payload::Registered {
                        user: crate::auth::UserId(0),
                        token: "tok-replay".to_owned(),
                        expires_at: SimTime::EPOCH,
                    })
                } else {
                    assert_eq!(request.token.as_deref(), Some("tok-replay"));
                    Response::ok(Payload::Empty)
                }
            },
            2,
            |_, _| {},
        );
        // Registration (seq 1) replays despite the watermark; the sync at
        // seq 2 is covered by the snapshot; seq 3 replays.
        assert_eq!(seen, vec![REGISTRATION_PATH, "/api/v1/social/sync"]);
        assert_eq!(summary.replayed, 2);
    }
}
