//! Compacted per-user snapshots: the serialized form an evicted
//! [`UserStore`] parks in, and the store that holds them.
//!
//! A snapshot captures everything hydration needs to rebuild the exact
//! store: the client-visible state, the idempotency watermarks, and the
//! discovery engine as `(config, observation log)` — the engine itself is
//! rebuilt by a single `absorb` of the full log, which PR 2's
//! split-invariance property pins bit-identical to the incremental
//! original. The memoized next-place model is kept only when it was
//! current at snapshot time, and re-tagged to the *post-deserialize*
//! history generation (deserializing rebuilds the history via upserts, so
//! the generation counter restarts).
//!
//! Residency-cap-only mode parks snapshots in memory (bounding the
//! expensive live state — engines, graphs, indexes — not total RSS).
//! With a store directory configured, snapshot bytes go to disk under
//! `<store_dir>/snapshots/` and only the per-key WAL watermark stays
//! resident, which is what keeps capped RSS flat as the population grows.

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use pmware_algorithms::gca::{GcaConfig, IncrementalGca};
use pmware_algorithms::route::RouteStore;
use pmware_algorithms::signature::DiscoveredPlace;
use pmware_world::GsmObservation;
use serde::{Deserialize, Serialize};

use crate::analytics::ProfileHistory;
use crate::predict::MarkovPredictor;
use crate::profile::ContactEntry;
use crate::state::UserStore;

/// The discovery engine's durable form: its config plus the full absorbed
/// log. Rebuilt on hydration by one batch absorb.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct GcaSnapshot {
    config: GcaConfig,
    log: Vec<GsmObservation>,
}

/// Serialized form of one [`UserStore`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct UserSnapshot {
    places: Vec<DiscoveredPlace>,
    routes: RouteStore,
    history: ProfileHistory,
    contacts: Vec<ContactEntry>,
    gca: Option<GcaSnapshot>,
    /// Present only when the memo was current at snapshot time.
    next_place: Option<MarkovPredictor>,
    absorbed_upto: u64,
    contacts_absorbed: u64,
    /// Sorted map for byte-stable serialization (the live store uses a
    /// `HashMap`).
    profile_seq: BTreeMap<u64, u64>,
    places_seq: u64,
    routes_seq: u64,
}

impl UserSnapshot {
    /// Captures a store. The store is not consumed: eviction serializes
    /// under the store mutex, then drops the live entry.
    pub(crate) fn from_store(store: &UserStore) -> UserSnapshot {
        let gca = store.gca.as_ref().map(|engine| GcaSnapshot {
            config: engine.config().clone(),
            log: engine.observations().to_vec(),
        });
        // Persist the memoized predictor only if it is current — a stale
        // memo would be dropped on the next query anyway.
        let next_place = store
            .next_place
            .as_ref()
            .filter(|(generation, _)| *generation == store.history.generation())
            .map(|(_, model)| model.clone());
        UserSnapshot {
            places: store.places.clone(),
            routes: store.routes.clone(),
            history: store.history.clone(),
            contacts: store.contacts.clone(),
            gca,
            next_place,
            absorbed_upto: store.absorbed_upto,
            contacts_absorbed: store.contacts_absorbed,
            profile_seq: store.profile_seq.iter().map(|(k, v)| (*k, *v)).collect(),
            places_seq: store.places_seq,
            routes_seq: store.routes_seq,
        }
    }

    /// Rebuilds the live store.
    pub(crate) fn into_store(self) -> UserStore {
        let gca = self.gca.map(|snapshot| {
            let mut engine = IncrementalGca::new(snapshot.config);
            engine.absorb(&snapshot.log);
            engine
        });
        let history = self.history;
        // Re-tag the memo with the rebuilt history's generation: custom
        // deserialization replays upserts, so the counter restarts at the
        // profile count rather than the original run's value.
        let next_place = self.next_place.map(|model| (history.generation(), model));
        UserStore {
            places: self.places,
            routes: self.routes,
            history,
            contacts: self.contacts,
            gca,
            next_place,
            absorbed_upto: self.absorbed_upto,
            contacts_absorbed: self.contacts_absorbed,
            profile_seq: self.profile_seq.into_iter().collect(),
            places_seq: self.places_seq,
            routes_seq: self.routes_seq,
        }
    }

    /// Drops the cached discovery engine (the GCA config changed; the
    /// next offload rebuilds under the new parameters).
    pub(crate) fn clear_gca(&mut self) {
        self.gca = None;
    }
}

/// One parked snapshot. `json` is `None` when the bytes live on disk
/// (durable mode): only the watermark stays resident.
#[derive(Debug, Clone)]
struct StoredSnapshot {
    /// Highest WAL sequence folded into the snapshot.
    wal_seq: u64,
    /// The serialized [`UserSnapshot`] — in-memory mode only.
    json: Option<String>,
}

#[derive(Debug, Default)]
struct SnapState {
    by_key: BTreeMap<String, StoredSnapshot>,
    dir: Option<PathBuf>,
}

/// The snapshot store: per-key parked stores, in memory or on disk.
#[derive(Debug, Default)]
pub(crate) struct SnapshotStore {
    inner: Mutex<SnapState>,
}

/// FNV-1a over the key: the disambiguating suffix of snapshot filenames
/// and the WAL shard-file hash.
pub(crate) fn fnv64(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A filesystem-safe spelling of an identity key: alphanumerics survive,
/// everything else becomes `_`, and an FNV suffix keeps collided
/// sanitizations apart.
fn file_name_of(key: &str) -> String {
    let safe: String = key
        .chars()
        .take(48)
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("{safe}-{:016x}.json", fnv64(key))
}

impl SnapshotStore {
    /// Points the store at a durability directory (creating
    /// `snapshots/`). Snapshots already parked in memory are flushed to
    /// disk and their bytes released.
    pub(crate) fn set_dir(&self, dir: Option<&Path>) {
        let mut state = self.inner.lock();
        state.dir = dir.map(|d| d.join("snapshots"));
        if let Some(dir) = state.dir.clone() {
            let _ = fs::create_dir_all(&dir);
            for (key, snapshot) in state.by_key.iter_mut() {
                if let Some(json) = snapshot.json.take() {
                    let record = envelope(key, snapshot.wal_seq, &json);
                    let _ = fs::write(dir.join(file_name_of(key)), record);
                }
            }
        }
    }

    /// Parks (or refreshes) `key`'s snapshot.
    pub(crate) fn put(&self, key: &str, wal_seq: u64, json: String) {
        let mut state = self.inner.lock();
        let stored = if let Some(dir) = &state.dir {
            let _ = fs::write(dir.join(file_name_of(key)), envelope(key, wal_seq, &json));
            StoredSnapshot {
                wal_seq,
                json: None,
            }
        } else {
            StoredSnapshot {
                wal_seq,
                json: Some(json),
            }
        };
        state.by_key.insert(key.to_owned(), stored);
    }

    /// The parked snapshot for `key` as `(wal watermark, store JSON)`,
    /// reading disk in durable mode.
    pub(crate) fn get(&self, key: &str) -> Option<(u64, String)> {
        let state = self.inner.lock();
        let snapshot = state.by_key.get(key)?;
        if let Some(json) = &snapshot.json {
            return Some((snapshot.wal_seq, json.clone()));
        }
        let dir = state.dir.as_ref()?;
        let text = fs::read_to_string(dir.join(file_name_of(key))).ok()?;
        let value: serde_json::Value = serde_json::from_str(&text).ok()?;
        let json = value["store"].as_str()?.to_owned();
        Some((snapshot.wal_seq, json))
    }

    /// Whether `key` has a parked snapshot.
    #[cfg(test)]
    pub(crate) fn contains(&self, key: &str) -> bool {
        self.inner.lock().by_key.contains_key(key)
    }

    /// Removes `key`'s snapshot (the user re-hydrated for good, e.g. the
    /// engine is being disabled).
    pub(crate) fn remove(&self, key: &str) {
        let mut state = self.inner.lock();
        if state.by_key.remove(key).is_some() {
            if let Some(dir) = &state.dir {
                let _ = fs::remove_file(dir.join(file_name_of(key)));
            }
        }
    }

    /// Snapshot keys currently parked, in key order.
    pub(crate) fn keys(&self) -> Vec<String> {
        self.inner.lock().by_key.keys().cloned().collect()
    }

    /// Per-key WAL watermarks — what compaction may drop.
    pub(crate) fn watermarks(&self) -> HashMap<String, u64> {
        self.inner
            .lock()
            .by_key
            .iter()
            .map(|(k, s)| (k.clone(), s.wal_seq))
            .collect()
    }

    /// Loads every snapshot found under `dir/snapshots/` (crash
    /// recovery). Bytes stay on disk; only watermarks come resident.
    /// Unparseable files are skipped.
    pub(crate) fn load(&self, dir: &Path) {
        let mut state = self.inner.lock();
        let snap_dir = dir.join("snapshots");
        state.dir = Some(snap_dir.clone());
        let Ok(entries) = fs::read_dir(&snap_dir) else {
            let _ = fs::create_dir_all(&snap_dir);
            return;
        };
        let mut names: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        names.sort();
        for path in names {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let Ok(value) = serde_json::from_str::<serde_json::Value>(&text) else {
                continue;
            };
            let (Some(key), Some(wal_seq)) = (value["key"].as_str(), value["wal_seq"].as_u64())
            else {
                continue;
            };
            state.by_key.insert(
                key.to_owned(),
                StoredSnapshot {
                    wal_seq,
                    json: None,
                },
            );
        }
    }

    /// Rewrites `key`'s parked snapshot in place through `edit` (the GCA
    /// config-change invalidation path). No-op for absent keys.
    pub(crate) fn edit_snapshot(&self, key: &str, edit: impl FnOnce(&mut UserSnapshot)) {
        let Some((wal_seq, json)) = self.get(key) else {
            return;
        };
        let Ok(mut parsed) = serde_json::from_str::<UserSnapshot>(&json) else {
            return;
        };
        edit(&mut parsed);
        let json = serde_json::to_string(&parsed).expect("snapshot serializes");
        self.put(key, wal_seq, json);
    }
}

/// The on-disk envelope: the key (files are content-addressed, the key
/// inside is authoritative), the WAL watermark, and the store JSON.
fn envelope(key: &str, wal_seq: u64, json: &str) -> String {
    let mut map = BTreeMap::new();
    map.insert("key".to_owned(), serde_json::Value::String(key.to_owned()));
    map.insert(
        "wal_seq".to_owned(),
        serde_json::Value::Number(serde_json::Number::PosInt(wal_seq)),
    );
    map.insert(
        "store".to_owned(),
        serde_json::Value::String(json.to_owned()),
    );
    serde_json::to_string(&serde_json::Value::Object(map)).expect("envelope serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_an_empty_store() {
        let store = UserStore::default();
        let json = serde_json::to_string(&UserSnapshot::from_store(&store)).unwrap();
        let back: UserSnapshot = serde_json::from_str(&json).unwrap();
        let rebuilt = back.into_store();
        assert!(rebuilt.places.is_empty());
        assert!(rebuilt.gca.is_none());
        assert_eq!(rebuilt.absorbed_upto, 0);
    }

    #[test]
    fn file_names_are_safe_and_distinct() {
        let a = file_name_of("350-1|u1@example.com");
        let b = file_name_of("350-1|u2@example.com");
        assert_ne!(a, b);
        assert!(a
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.'));
    }

    #[test]
    fn memory_store_put_get_remove() {
        let store = SnapshotStore::default();
        store.put("k", 7, "{}".to_owned());
        assert!(store.contains("k"));
        assert_eq!(store.get("k").unwrap(), (7, "{}".to_owned()));
        assert_eq!(store.watermarks().get("k"), Some(&7));
        store.remove("k");
        assert!(store.get("k").is_none());
    }
}
