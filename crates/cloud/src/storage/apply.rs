//! Pure state-mutation functions for the `Ingest`-class endpoints.
//!
//! Each function is the store-mutating core of one mutating handler,
//! extracted so two callers share one body of logic: the handlers (which
//! add metrics and build wire responses from the returned outcome) and
//! WAL hydration (which re-applies logged requests *directly* to a store
//! being rebuilt — going through `handle` from inside a store acquisition
//! would recurse back into the residency manager).
//!
//! Everything here is deterministic and idempotent by the stores' own
//! sequence watermarks: re-applying an already-absorbed request is a
//! no-op, which is what makes WAL replay safe regardless of how the
//! snapshot watermark and the log tail overlap.

use pmware_algorithms::gca::{GcaConfig, IncrementalGca};
use pmware_algorithms::route::{RouteObservation, RouteStore};
use pmware_algorithms::signature::DiscoveredPlaceId;
use pmware_world::GsmObservation;

use crate::api::Request;
use crate::payload::{
    DiscoverBody, LabelBody, RequestBody, SyncContactsBody, SyncPlacesBody, SyncProfileBody,
    SyncRoutesBody,
};
use crate::state::UserStore;

/// Outcome of a discover offload.
pub(crate) struct DiscoverOutcome {
    /// Whether an already-absorbed prefix was skipped (idempotent replay).
    pub(crate) replayed: bool,
}

/// Outcome of a full-replacement sync (places or routes).
pub(crate) struct SyncOutcome {
    /// Entries stored after the sync.
    pub(crate) stored: usize,
    /// Whether the request was stale (sequence at or below the watermark).
    pub(crate) stale: bool,
}

/// Outcome of a per-day profile upsert.
pub(crate) struct ProfileOutcome {
    /// The day synced.
    pub(crate) day: u64,
    /// Whether the upsert was stale for that day.
    pub(crate) stale: bool,
}

/// Outcome of a social-contact append.
pub(crate) struct ContactsOutcome {
    /// Contacts stored after the append.
    pub(crate) stored: usize,
    /// The acknowledged stream watermark.
    pub(crate) acked_upto: u64,
    /// Whether a re-sent prefix was skipped.
    pub(crate) replayed: bool,
}

/// Folds a GSM observation batch into the store's incremental engine
/// (the `POST /api/v1/places/discover` core). `Err` is the decode failure
/// message for an invalid compressed batch.
pub(crate) fn apply_discover(
    store: &mut UserStore,
    config: &GcaConfig,
    body: &DiscoverBody,
) -> Result<DiscoverOutcome, String> {
    // A batched body decodes to the exact observation sequence the client
    // encoded, so both spellings feed the same absorb path and reach the
    // same engine state. The plain-array path borrows the typed body
    // directly — no copy.
    let decoded;
    let observations: &[GsmObservation] = match &body.batch {
        Some(batch) => match batch.decode() {
            Ok(observations) => {
                decoded = observations;
                &decoded
            }
            Err(e) => return Err(format!("invalid batch: {e}")),
        },
        None => &body.observations,
    };
    let mut replayed = false;
    match body.start {
        Some(start) => {
            // Sequenced offload: `start` is the batch's offset in the
            // client's observation stream. A duplicated or retried
            // delivery re-sends a prefix the engine already absorbed —
            // skip it; only the unseen tail is folded in. A start past
            // the watermark means the server lost its engine (config
            // reset): restart from this batch, which is authoritative.
            let len = observations.len() as u64;
            if start > store.absorbed_upto || store.gca.is_none() {
                store.gca = Some(IncrementalGca::new(config.clone()));
                store.absorbed_upto = start;
            }
            let skip = (store.absorbed_upto - start) as usize;
            replayed = skip > 0;
            if (skip as u64) < len {
                store.absorbed_upto = start + len;
                let engine = store.gca.as_mut().expect("engine ensured above");
                engine.absorb(&observations[skip..]);
                store.places = engine.places().places;
            }
        }
        None => {
            // Legacy unsequenced offload: a batch that rewinds behind the
            // absorbed stream means the client restarted or re-sent
            // history — start over from exactly this batch. Otherwise
            // fold the suffix into the accumulated engine.
            let rewinds = match (&store.gca, observations.first()) {
                (Some(engine), Some(first)) => engine.last_time().is_some_and(|t| first.time < t),
                _ => false,
            };
            if rewinds || store.gca.is_none() {
                store.gca = Some(IncrementalGca::new(config.clone()));
                store.absorbed_upto = 0;
            }
            store.absorbed_upto += observations.len() as u64;
            let engine = store.gca.as_mut().expect("engine ensured above");
            engine.absorb(observations);
            store.places = engine.places().places;
        }
    }
    Ok(DiscoverOutcome { replayed })
}

/// Full replacement of the stored places, sequence-guarded (the
/// `POST /api/v1/places/sync` core).
pub(crate) fn apply_places_sync(store: &mut UserStore, body: &SyncPlacesBody) -> SyncOutcome {
    // A full replacement that was reordered behind a newer one (or
    // delivered twice) must not clobber it.
    let stale = body.seq.is_some_and(|seq| seq <= store.places_seq);
    if !stale {
        store.places = body.places.clone();
        if let Some(seq) = body.seq {
            store.places_seq = seq;
        }
    }
    SyncOutcome {
        stored: store.places.len(),
        stale,
    }
}

/// Attaches a user label to a place (the `POST /api/v1/places/label`
/// core). `None` means the place does not exist.
pub(crate) fn apply_label(store: &mut UserStore, body: &LabelBody) -> Option<DiscoveredPlaceId> {
    let place = store.places.iter_mut().find(|p| p.id == body.place)?;
    place.label = Some(body.label.clone());
    Some(place.id)
}

/// Full replacement of the stored routes, sequence-guarded; the canonical
/// set is rebuilt from the traversals (the `POST /api/v1/routes/sync`
/// core).
pub(crate) fn apply_routes_sync(store: &mut UserStore, body: &SyncRoutesBody) -> SyncOutcome {
    if body.seq.is_some_and(|seq| seq <= store.routes_seq) {
        return SyncOutcome {
            stored: store.routes.routes().len(),
            stale: true,
        };
    }
    let mut fresh = RouteStore::new(0.5);
    for route in &body.routes {
        for start in &route.traversals {
            let _ = fresh.record(RouteObservation {
                from: route.from,
                to: route.to,
                start: *start,
                end: *start,
                geometry: route.geometry.clone(),
            });
        }
    }
    let stored = fresh.routes().len();
    store.routes = fresh;
    if let Some(seq) = body.seq {
        store.routes_seq = seq;
    }
    SyncOutcome {
        stored,
        stale: false,
    }
}

/// Per-day profile upsert with per-day sequence staleness (the
/// `POST /api/v1/profiles/sync` core).
pub(crate) fn apply_profiles_sync(store: &mut UserStore, body: &SyncProfileBody) -> ProfileOutcome {
    let day = body.profile.day;
    // Per-day upsert sequencing: a duplicate delivery or a stale version
    // reordered behind a newer one is acknowledged without re-applying,
    // so the history (and its generation) only moves for new data.
    let stale = body
        .seq
        .is_some_and(|seq| store.profile_seq.get(&day).is_some_and(|&s| seq <= s));
    if !stale {
        store.history.upsert(body.profile.clone());
        if let Some(seq) = body.seq {
            store.profile_seq.insert(day, seq);
        }
    }
    ProfileOutcome { day, stale }
}

/// Appends encounters, deduplicating re-sent prefixes through the stream
/// watermark (the `POST /api/v1/social/sync` core).
pub(crate) fn apply_social_sync(store: &mut UserStore, body: &SyncContactsBody) -> ContactsOutcome {
    let mut replayed = false;
    match body.first_seq {
        Some(first_seq) => {
            // Sequenced sync: skip the prefix already absorbed (a retried
            // buffer re-sends from its unacknowledged base), append only
            // unseen entries, and acknowledge the new watermark so the
            // client can drain its buffer. A base past the watermark
            // means the server lost state — absorb everything and resync.
            let len = body.contacts.len() as u64;
            if first_seq > store.contacts_absorbed {
                store.contacts_absorbed = first_seq;
            }
            let skip = (store.contacts_absorbed - first_seq) as usize;
            replayed = skip > 0;
            if (skip as u64) < len {
                store
                    .contacts
                    .extend(body.contacts.iter().skip(skip).cloned());
                store.contacts_absorbed = first_seq + len;
            }
        }
        None => {
            // Legacy blind extend.
            store.contacts_absorbed += body.contacts.len() as u64;
            store.contacts.extend(body.contacts.iter().cloned());
        }
    }
    ContactsOutcome {
        stored: store.contacts.len(),
        acked_upto: store.contacts_absorbed,
        replayed,
    }
}

/// Re-applies one logged mutating request directly to a store under
/// hydration. Only the `Ingest`-class paths are dispatched — the WAL
/// logs nothing else under a non-registration record — and parse
/// failures are ignored: every logged request already succeeded once.
pub(crate) fn apply_request(store: &mut UserStore, config: &GcaConfig, request: &Request) {
    fn with<B: RequestBody>(request: &Request, f: impl FnOnce(&B)) {
        if let Some(body) = B::from_payload(&request.body) {
            f(body);
        } else if let Ok(body) = request.body.parse::<B>() {
            f(&body);
        }
    }
    match request.path.as_str() {
        "/api/v1/places/discover" => with::<DiscoverBody>(request, |body| {
            let _ = apply_discover(store, config, body);
        }),
        "/api/v1/places/sync" => with::<SyncPlacesBody>(request, |body| {
            apply_places_sync(store, body);
        }),
        "/api/v1/places/label" => with::<LabelBody>(request, |body| {
            apply_label(store, body);
        }),
        "/api/v1/routes/sync" => with::<SyncRoutesBody>(request, |body| {
            apply_routes_sync(store, body);
        }),
        "/api/v1/profiles/sync" => with::<SyncProfileBody>(request, |body| {
            apply_profiles_sync(store, body);
        }),
        "/api/v1/social/sync" => with::<SyncContactsBody>(request, |body| {
            apply_social_sync(store, body);
        }),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ContactEntry;
    use pmware_world::SimTime;

    fn contact(name: &str, at_s: u64) -> ContactEntry {
        ContactEntry {
            contact: name.to_owned(),
            start: SimTime::from_seconds(at_s),
            end: SimTime::from_seconds(at_s + 60),
            place: None,
        }
    }

    #[test]
    fn replaying_a_sync_is_idempotent() {
        let mut store = UserStore::default();
        let body = SyncContactsBody {
            contacts: vec![contact("p1", 10), contact("p2", 20)],
            first_seq: Some(0),
        };
        let first = apply_social_sync(&mut store, &body);
        assert_eq!(
            (first.stored, first.acked_upto, first.replayed),
            (2, 2, false)
        );
        let again = apply_social_sync(&mut store, &body);
        assert_eq!(
            (again.stored, again.acked_upto, again.replayed),
            (2, 2, true)
        );
    }

    #[test]
    fn apply_request_routes_by_path() {
        let mut store = UserStore::default();
        let config = GcaConfig::default();
        let body = SyncContactsBody {
            contacts: vec![contact("p1", 5)],
            first_seq: Some(0),
        };
        let request = Request::post("/api/v1/social/sync", body);
        apply_request(&mut store, &config, &request);
        assert_eq!(store.contacts.len(), 1);
        assert_eq!(store.contacts_absorbed, 1);
    }
}
