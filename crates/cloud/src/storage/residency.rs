//! The LRU residency manager and the lock shards it governs.
//!
//! Residency is a deterministic sim-time LRU: every store acquisition
//! stamps the user with the acquiring request's simulated instant, and
//! when the resident population exceeds the cap the victim is the
//! *unpinned* user with the oldest stamp — ties broken by the smaller
//! user id, so a single-threaded drive always evicts in the same order.
//! Pins are held by [`super::StoreGuard`]s: a handler that is mid-request
//! on a store can never watch it evaporate underneath it.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::auth::UserId;
use crate::state::UserStore;

/// One lock shard: the resident users whose id hashes here. Direct map
/// access is confined to `storage/` (enforced by `make lint-storage`);
/// everything else goes through the engine.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    pub(crate) users: RwLock<HashMap<UserId, Arc<Mutex<UserStore>>>>,
}

/// The LRU bookkeeping: access stamps, eviction order, and pin counts.
#[derive(Debug, Default)]
pub(crate) struct ResidencyState {
    /// `(last_access_seconds, user)` — `BTreeSet` iteration order *is*
    /// eviction order (oldest stamp first, user-id tie-break).
    order: BTreeSet<(u64, u32)>,
    /// Current stamp per resident user (to relocate the `order` entry).
    stamp: HashMap<u32, u64>,
    /// Outstanding [`super::StoreGuard`] pins per user.
    pins: HashMap<u32, u32>,
}

impl ResidencyState {
    /// Stamps `user` as accessed at `now_s`, registering it if new.
    pub(crate) fn touch(&mut self, user: UserId, now_s: u64) {
        if let Some(old) = self.stamp.insert(user.0, now_s) {
            self.order.remove(&(old, user.0));
        }
        self.order.insert((now_s, user.0));
    }

    /// Whether `user` is registered as resident.
    pub(crate) fn contains(&self, user: UserId) -> bool {
        self.stamp.contains_key(&user.0)
    }

    /// Resident users tracked.
    pub(crate) fn len(&self) -> usize {
        self.stamp.len()
    }

    /// Takes a pin on `user`.
    pub(crate) fn pin(&mut self, user: UserId) {
        *self.pins.entry(user.0).or_default() += 1;
    }

    /// Releases one pin on `user`.
    pub(crate) fn unpin(&mut self, user: UserId) {
        match self.pins.get_mut(&user.0) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                self.pins.remove(&user.0);
            }
            None => debug_assert!(false, "unpin without a pin"),
        }
    }

    /// The eviction victim: the oldest-stamped unpinned resident, if any.
    pub(crate) fn victim(&self) -> Option<UserId> {
        self.order
            .iter()
            .find(|(_, user)| !self.pins.contains_key(user))
            .map(|&(_, user)| UserId(user))
    }

    /// Deregisters `user` (evicted or engine disabled).
    pub(crate) fn remove(&mut self, user: UserId) {
        if let Some(stamp) = self.stamp.remove(&user.0) {
            self.order.remove(&(stamp, user.0));
        }
    }

    /// Clears the LRU bookkeeping but keeps pin counts: pins mirror
    /// outstanding [`super::StoreGuard`]s, which outlive an engine
    /// disable and still release their pin on drop.
    pub(crate) fn reset_lru(&mut self) {
        self.order.clear();
        self.stamp.clear();
    }

    /// Resident users in user-id order (deterministic sweeps).
    pub(crate) fn users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.stamp.keys().map(|&u| UserId(u)).collect();
        users.sort();
        users
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_is_oldest_stamp_with_user_id_tie_break() {
        let mut state = ResidencyState::default();
        state.touch(UserId(5), 10);
        state.touch(UserId(2), 10);
        state.touch(UserId(9), 3);
        assert_eq!(state.victim(), Some(UserId(9)), "oldest stamp first");
        state.remove(UserId(9));
        assert_eq!(state.victim(), Some(UserId(2)), "tie broken by user id");
    }

    #[test]
    fn touch_moves_a_user_to_the_back() {
        let mut state = ResidencyState::default();
        state.touch(UserId(1), 1);
        state.touch(UserId(2), 2);
        state.touch(UserId(1), 3);
        assert_eq!(state.victim(), Some(UserId(2)));
        assert_eq!(state.len(), 2);
    }

    #[test]
    fn pins_shield_from_eviction() {
        let mut state = ResidencyState::default();
        state.touch(UserId(1), 1);
        state.touch(UserId(2), 2);
        state.pin(UserId(1));
        assert_eq!(state.victim(), Some(UserId(2)));
        state.pin(UserId(2));
        assert_eq!(state.victim(), None, "everything pinned");
        state.unpin(UserId(1));
        assert_eq!(state.victim(), Some(UserId(1)));
    }
}
