//! The cloud storage engine: WAL, compacted snapshots, LRU residency.
//!
//! Every [`UserStore`] access in the cloud flows through this subsystem
//! (enforced by `make lint-storage`). Disabled — the default — it is the
//! old sharded in-RAM map behind one atomic load, byte-identical to the
//! pre-engine behavior. Enabled via [`StorageConfig`] it adds, in
//! composable pieces:
//!
//! * **Residency cap** (`resident_cap`): at most K stores live in RAM.
//!   Acquiring a non-resident user hydrates it (from snapshot + WAL
//!   suffix); exceeding the cap evicts the deterministic sim-time-LRU
//!   victim (oldest access stamp, user-id tie-break) to a compacted
//!   snapshot. Pins held by in-flight [`StoreGuard`]s shield a store from
//!   eviction, so the cap is soft under extreme concurrent pinning.
//! * **Durability** (`store_dir`): every successful mutating request is
//!   appended to a per-shard JSONL WAL before the response is returned to
//!   the transport, snapshots park on disk instead of RAM, and
//!   [`StorageEngine::load_dir`] + registration replay rebuild the exact
//!   instance after a crash ([`crate::instance::CloudInstance::recover`]).
//! * **Compaction** (`snapshot_every_days`): on a sim-day cadence the
//!   engine refreshes every resident user's snapshot, drops WAL records
//!   the snapshots cover (registrations and token grants are exempt — they
//!   rebuild the auth registry, which snapshots do not capture), and
//!   rewrites the shard files.
//!
//! Lock order, engine-wide: residency mutex → shard `RwLock` → store
//! mutex → WAL mutex → snapshot-store mutex. The GCA config lock is
//! always cloned *before* any of these is taken. [`StoreGuard::drop`]
//! takes the residency mutex, which is safe because the store mutex a
//! guard hands out is always released before the guard itself drops
//! (later bindings and later temporaries drop first).
//!
//! Determinism: with the engine disabled, behavior is byte-identical to
//! the pre-engine cloud. Enabled, the *final* state is schedule-
//! independent (hydration restores exactly what eviction parked), while
//! eviction/hydration *counter values* are deterministic under
//! single-threaded driving — the same caveat as the shared-queue latency
//! mode.

pub(crate) mod apply;
pub(crate) mod residency;
pub(crate) mod snapshot;
pub(crate) mod wal;

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard, RwLock};
use pmware_algorithms::gca::GcaConfig;
use pmware_obs::{Counter, FieldValue, Gauge, Obs, SpanSink};
use pmware_world::SimTime;

use crate::api::{Request, Response};
use crate::auth::UserId;
use crate::payload::{Payload, RegistrationBody, RequestBody, REGISTRATION_PATH};
use crate::state::{UserStore, SHARD_COUNT};

use residency::{ResidencyState, Shard};
use snapshot::{SnapshotStore, UserSnapshot};
use wal::{WalLog, WalOp, WalRecord};

pub(crate) use snapshot::fnv64;

/// The device identity key user state is logged, snapshotted, and placed
/// under — shared by the storage engine and the federation topology.
pub(crate) fn identity_key(imei: &str, email: &str) -> String {
    format!("{imei}|{email}")
}

/// The identity key of a user the WAL never saw register (tests and
/// benches that talk to stores directly).
fn fallback_key(user: UserId) -> String {
    format!("uid:{:08}", user.0)
}

/// Storage engine configuration. All pieces are optional and composable;
/// `StorageConfig::default()` (no cap, no directory) enables the engine
/// bookkeeping without changing retention.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Maximum stores resident in RAM; `None` = unbounded (no eviction).
    pub resident_cap: Option<usize>,
    /// Durability directory for the WAL and parked snapshots; `None`
    /// keeps everything in memory (a crash loses state, as before).
    pub store_dir: Option<PathBuf>,
    /// Sim-day cadence of the snapshot+compaction sweep in durable mode;
    /// `0` disables periodic compaction (eviction still compacts).
    pub snapshot_every_days: u64,
}

impl Default for StorageConfig {
    fn default() -> StorageConfig {
        StorageConfig {
            resident_cap: None,
            store_dir: None,
            snapshot_every_days: 7,
        }
    }
}

/// Residency metrics and the span sink, bound at enable time (the lazy
/// pattern the latency model uses: disabled, the engine adds zero metric
/// keys).
#[derive(Debug)]
struct StorageMetrics {
    evictions: Counter,
    hydrations: Counter,
    resident: Gauge,
    spans: Option<Arc<SpanSink>>,
}

impl Default for StorageMetrics {
    fn default() -> StorageMetrics {
        StorageMetrics {
            evictions: Counter::noop(),
            hydrations: Counter::noop(),
            resident: Gauge::noop(),
            spans: None,
        }
    }
}

/// The durable half of the WAL: the in-memory log plus lazily opened
/// per-shard JSONL appenders.
#[derive(Debug, Default)]
struct WalState {
    log: WalLog,
    dir: Option<PathBuf>,
    files: Vec<Option<fs::File>>,
}

impl WalState {
    /// The shard file index a key's records land in. Decoupled from the
    /// user-id shard mapping on purpose: keys are stable identity
    /// strings, user ids are assigned in registration order.
    fn file_index(key: &str) -> usize {
        (fnv64(key) % SHARD_COUNT as u64) as usize
    }

    /// Appends one record to its shard file (durable mode only).
    fn persist(&mut self, record: &WalRecord) {
        let Some(dir) = &self.dir else {
            return;
        };
        let idx = Self::file_index(&record.key);
        if self.files[idx].is_none() {
            self.files[idx] = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join(format!("wal-{idx:02}.jsonl")))
                .ok();
        }
        if let Some(file) = &mut self.files[idx] {
            let line = serde_json::to_string(&record.to_json()).expect("wal record serializes");
            let _ = writeln!(file, "{line}");
            let _ = file.flush();
        }
    }

    /// Rewrites every shard file from the (compacted) in-memory log,
    /// atomically per file (write-then-rename).
    fn rewrite_files(&mut self) {
        let Some(dir) = self.dir.clone() else {
            return;
        };
        let mut lines: Vec<String> = vec![String::new(); SHARD_COUNT];
        for record in self.log.all_records() {
            let line = serde_json::to_string(&record.to_json()).expect("wal record serializes");
            let slot = &mut lines[Self::file_index(&record.key)];
            slot.push_str(&line);
            slot.push('\n');
        }
        for (idx, content) in lines.iter().enumerate() {
            let path = dir.join(format!("wal-{idx:02}.jsonl"));
            let tmp = dir.join(format!("wal-{idx:02}.jsonl.tmp"));
            // Drop the open appender before replacing the file under it.
            self.files[idx] = None;
            if fs::write(&tmp, content).is_ok() {
                let _ = fs::rename(&tmp, &path);
            }
        }
    }
}

/// Everything the engine owns, shared between the core and outstanding
/// [`StoreGuard`] pins.
#[derive(Debug)]
pub(crate) struct EngineInner {
    enabled: AtomicBool,
    /// Per-user lock shards — the resident population.
    shards: Vec<Shard>,
    config: RwLock<StorageConfig>,
    wal: Mutex<WalState>,
    snapshots: SnapshotStore,
    residency: Mutex<ResidencyState>,
    /// User → identity key, bound at registration success.
    keys: RwLock<HashMap<UserId, String>>,
    /// Identity key → user, the reverse map (re-hydration on disable,
    /// recovery rebinding).
    users_of: RwLock<HashMap<String, UserId>>,
    /// Last simulated instant seen by `handle` (seconds): the LRU stamp
    /// for accessor-path acquisitions that carry no clock of their own.
    clock: AtomicU64,
    /// Recovery replay in flight: suppress WAL logging so replayed
    /// requests are not re-logged.
    replaying: AtomicBool,
    /// Sim-day of the last compaction sweep.
    compact_day: AtomicU64,
    /// Monotonic hydration-span sequence (trace-id input).
    hydration_seq: AtomicU64,
    metrics: RwLock<StorageMetrics>,
}

/// A pinned handle to one user's store. While any guard for a user is
/// alive, the residency manager will not evict that user; the pin is
/// released on drop. `lock()` hands out the store mutex exactly like the
/// bare `Arc<Mutex<UserStore>>` the cloud used to pass around.
#[derive(Debug)]
pub(crate) struct StoreGuard {
    store: Arc<Mutex<UserStore>>,
    pin: Option<(Arc<EngineInner>, UserId)>,
}

impl StoreGuard {
    /// Locks the underlying store.
    pub(crate) fn lock(&self) -> MutexGuard<'_, UserStore> {
        self.store.lock()
    }
}

impl Drop for StoreGuard {
    fn drop(&mut self) {
        if let Some((inner, user)) = self.pin.take() {
            inner.residency.lock().unpin(user);
        }
    }
}

/// The storage engine — see the module docs.
#[derive(Debug)]
pub(crate) struct StorageEngine {
    inner: Arc<EngineInner>,
}

impl StorageEngine {
    /// A disabled engine over empty shards (the default construction).
    pub(crate) fn new() -> StorageEngine {
        StorageEngine {
            inner: Arc::new(EngineInner {
                enabled: AtomicBool::new(false),
                shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
                config: RwLock::new(StorageConfig::default()),
                wal: Mutex::new(WalState {
                    files: (0..SHARD_COUNT).map(|_| None).collect(),
                    ..WalState::default()
                }),
                snapshots: SnapshotStore::default(),
                residency: Mutex::new(ResidencyState::default()),
                keys: RwLock::new(HashMap::new()),
                users_of: RwLock::new(HashMap::new()),
                clock: AtomicU64::new(0),
                replaying: AtomicBool::new(false),
                compact_day: AtomicU64::new(0),
                hydration_seq: AtomicU64::new(0),
                metrics: RwLock::new(StorageMetrics::default()),
            }),
        }
    }

    /// Whether the engine is enabled.
    pub(crate) fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::SeqCst)
    }

    /// The last simulated instant `tick` saw (the accessor-path LRU
    /// stamp).
    pub(crate) fn clock_now(&self) -> SimTime {
        SimTime::from_seconds(self.inner.clock.load(Ordering::SeqCst))
    }

    /// Whether durable mode (a store directory) is active.
    pub(crate) fn is_durable(&self) -> bool {
        self.is_enabled() && self.inner.wal.lock().dir.is_some()
    }

    /// The shard a user's resident store lives in.
    fn shard(&self, user: UserId) -> &Shard {
        &self.inner.shards[user.0 as usize % SHARD_COUNT]
    }

    /// The identity key a user's durable state files under.
    fn key_of(&self, user: UserId) -> String {
        self.inner
            .keys
            .read()
            .get(&user)
            .cloned()
            .unwrap_or_else(|| fallback_key(user))
    }

    /// Binds `user` ↔ `key` (registration success, recovery rebinding).
    fn bind_key(&self, user: UserId, key: &str) {
        self.inner.keys.write().insert(user, key.to_owned());
        self.inner.users_of.write().insert(key.to_owned(), user);
    }

    /// Enables (`Some`) or disables (`None`) the engine at runtime.
    /// Enabling binds the residency metrics to `obs` — call after
    /// `with_obs` so they land in the shared registry. Disabling
    /// re-hydrates every parked snapshot back into RAM (using
    /// `gca_config` for engine rebuilds) and clears all engine state.
    pub(crate) fn configure(
        &self,
        config: Option<StorageConfig>,
        obs: &Obs,
        gca_config: &GcaConfig,
    ) {
        match config {
            Some(config) => self.enable(config, obs),
            None => self.disable(gca_config),
        }
    }

    fn enable(&self, config: StorageConfig, obs: &Obs) {
        {
            let mut wal = self.inner.wal.lock();
            if let Some(dir) = &config.store_dir {
                let _ = fs::create_dir_all(dir);
                wal.dir = Some(dir.clone());
            } else {
                wal.dir = None;
            }
            wal.files = (0..SHARD_COUNT).map(|_| None).collect();
        }
        self.inner.snapshots.set_dir(config.store_dir.as_deref());
        *self.inner.metrics.write() = StorageMetrics {
            evictions: obs.counter("cloud_store_evictions_total", &[]),
            hydrations: obs.counter("cloud_store_hydrations_total", &[]),
            resident: obs.gauge("cloud_store_resident_users", &[]),
            spans: obs.spans().cloned(),
        };
        *self.inner.config.write() = config;
        let now_s = self.inner.clock.load(Ordering::SeqCst);
        self.inner
            .compact_day
            .store(SimTime::from_seconds(now_s).day(), Ordering::SeqCst);
        self.inner.enabled.store(true, Ordering::SeqCst);
        // Register everything already resident with the LRU, then bring
        // the population under the cap.
        let mut res = self.inner.residency.lock();
        for shard in &self.inner.shards {
            for user in shard.users.read().keys() {
                if !res.contains(*user) {
                    res.touch(*user, now_s);
                }
            }
        }
        self.inner.metrics.read().resident.set(res.len() as i64);
        self.enforce_cap(&mut res);
    }

    fn disable(&self, gca_config: &GcaConfig) {
        if !self.inner.enabled.swap(false, Ordering::SeqCst) {
            return;
        }
        // Bring every parked user back to RAM: the disabled engine has no
        // hydration path, so state must not stay stranded in snapshots.
        for key in self.inner.snapshots.keys() {
            let user = self.inner.users_of.read().get(&key).copied().or_else(|| {
                key.strip_prefix("uid:")
                    .and_then(|raw| raw.parse::<u32>().ok())
                    .map(UserId)
            });
            let Some(user) = user else {
                continue;
            };
            let shard = self.shard(user);
            if shard.users.read().contains_key(&user) {
                continue;
            }
            let (store, _, _) = self.hydrate_build(&key, gca_config);
            shard
                .users
                .write()
                .insert(user, Arc::new(Mutex::new(store)));
        }
        for key in self.inner.snapshots.keys() {
            self.inner.snapshots.remove(&key);
        }
        // Keep pin counts: outstanding guards from the enabled era still
        // unpin on drop.
        self.inner.residency.lock().reset_lru();
        {
            let mut wal = self.inner.wal.lock();
            *wal = WalState {
                files: (0..SHARD_COUNT).map(|_| None).collect(),
                ..WalState::default()
            };
        }
        *self.inner.metrics.write() = StorageMetrics::default();
    }

    /// Clock tick + periodic compaction hook, called once per handled
    /// request. Disabled: one atomic store and one atomic load.
    pub(crate) fn tick(&self, now: SimTime) {
        self.inner.clock.store(now.as_seconds(), Ordering::SeqCst);
        if !self.inner.enabled.load(Ordering::SeqCst) {
            return;
        }
        self.maybe_compact(now);
    }

    /// Day-cadence snapshot + compaction sweep (durable mode).
    fn maybe_compact(&self, now: SimTime) {
        let every = self.inner.config.read().snapshot_every_days;
        if every == 0 || !self.is_durable() {
            return;
        }
        let day = now.day();
        let last = self.inner.compact_day.load(Ordering::SeqCst);
        if day < last.saturating_add(every) {
            return;
        }
        if self
            .inner
            .compact_day
            .compare_exchange(last, day, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        // Refresh every resident user's snapshot so the whole log prefix
        // becomes compactable.
        let users = self.inner.residency.lock().users();
        for user in users {
            let key = self.key_of(user);
            let store = self.shard(user).users.read().get(&user).cloned();
            let Some(store) = store else {
                continue;
            };
            let json = {
                let store = store.lock();
                serde_json::to_string(&UserSnapshot::from_store(&store))
                    .expect("snapshot serializes")
            };
            let wal_seq = self.inner.wal.lock().log.last_seq(&key);
            self.inner.snapshots.put(&key, wal_seq, json);
        }
        let watermarks = self.inner.snapshots.watermarks();
        let mut wal = self.inner.wal.lock();
        for (key, upto) in &watermarks {
            wal.log.compact(key, *upto);
        }
        wal.rewrite_files();
    }

    /// Acquires `user`'s store, hydrating or creating it as needed and
    /// stamping the LRU with `now`. The returned guard pins the user
    /// against eviction until dropped.
    pub(crate) fn acquire(
        &self,
        user: UserId,
        now: SimTime,
        gca_config: &RwLock<GcaConfig>,
    ) -> StoreGuard {
        if !self.inner.enabled.load(Ordering::SeqCst) {
            return StoreGuard {
                store: self.store_fast(user),
                pin: None,
            };
        }
        let now_s = now.as_seconds();
        // Fast path: already resident.
        {
            let mut res = self.inner.residency.lock();
            if res.contains(user) {
                if let Some(store) = self.shard(user).users.read().get(&user) {
                    res.touch(user, now_s);
                    res.pin(user);
                    return StoreGuard {
                        store: store.clone(),
                        pin: Some((Arc::clone(&self.inner), user)),
                    };
                }
                // Inconsistent bookkeeping (store vanished): fall through
                // and rebuild.
                res.remove(user);
            }
        }
        // Slow path: hydrate or create. The GCA config is cloned with no
        // engine lock held (lock-order rule).
        let key = self.key_of(user);
        let config = gca_config.read().clone();
        let (store, hydrated, replayed) = self.hydrate_build(&key, &config);
        let mut res = self.inner.residency.lock();
        if res.contains(user) {
            // Lost the insert race: use the winner's store.
            let store = self
                .shard(user)
                .users
                .read()
                .get(&user)
                .cloned()
                .expect("resident user has a store");
            res.touch(user, now_s);
            res.pin(user);
            return StoreGuard {
                store,
                pin: Some((Arc::clone(&self.inner), user)),
            };
        }
        let store = Arc::new(Mutex::new(store));
        self.shard(user).users.write().insert(user, store.clone());
        res.touch(user, now_s);
        res.pin(user);
        {
            let metrics = self.inner.metrics.read();
            metrics.resident.add(1);
            if hydrated {
                metrics.hydrations.inc();
                if let Some(sink) = &metrics.spans {
                    let seq = self.inner.hydration_seq.fetch_add(1, Ordering::SeqCst) + 1;
                    let trace = SpanSink::trace_id(&key, seq);
                    let id = sink.alloc(trace);
                    let at_us = now_s.saturating_mul(1_000_000);
                    sink.record(
                        trace,
                        id,
                        0,
                        "hydrate",
                        at_us,
                        at_us,
                        &[
                            ("key", FieldValue::Str(key.clone())),
                            ("wal_replayed", FieldValue::U64(replayed)),
                        ],
                    );
                }
            }
        }
        self.enforce_cap(&mut res);
        StoreGuard {
            store,
            pin: Some((Arc::clone(&self.inner), user)),
        }
    }

    /// The disabled-mode store lookup: byte-identical to the historical
    /// `store_of` (shard read fast path, write lock on first touch).
    fn store_fast(&self, user: UserId) -> Arc<Mutex<UserStore>> {
        let shard = self.shard(user);
        if let Some(store) = shard.users.read().get(&user) {
            return store.clone();
        }
        shard
            .users
            .write()
            .entry(user)
            .or_insert_with(|| Arc::new(Mutex::new(UserStore::default())))
            .clone()
    }

    /// Rebuilds a user's store from its parked snapshot plus the WAL
    /// suffix past the snapshot watermark. Returns `(store, hydrated,
    /// wal records replayed)`; `hydrated` is false for a brand-new user.
    fn hydrate_build(&self, key: &str, config: &GcaConfig) -> (UserStore, bool, u64) {
        let (mut store, watermark, had_snapshot) = match self.inner.snapshots.get(key) {
            Some((wal_seq, json)) => match serde_json::from_str::<UserSnapshot>(&json) {
                Ok(snapshot) => (snapshot.into_store(), wal_seq, true),
                Err(_) => (UserStore::default(), 0, false),
            },
            None => (UserStore::default(), 0, false),
        };
        let suffix: Vec<WalRecord> = self.inner.wal.lock().log.suffix(key, watermark);
        let mut replayed = 0;
        for record in &suffix {
            if record.is_registration() {
                continue;
            }
            if let WalOp::Request(request) = &record.op {
                apply::apply_request(&mut store, config, request);
                replayed += 1;
            }
        }
        (store, had_snapshot || replayed > 0, replayed)
    }

    /// Evicts LRU victims until the resident population fits the cap.
    /// Called with the residency lock held. Pinned users are skipped, so
    /// the cap is soft while many guards are outstanding.
    fn enforce_cap(&self, res: &mut ResidencyState) {
        let Some(cap) = self.inner.config.read().resident_cap else {
            return;
        };
        while res.len() > cap {
            let Some(victim) = res.victim() else {
                break;
            };
            self.evict_locked(res, victim);
        }
    }

    /// Parks one user to a snapshot and drops the resident store. Called
    /// with the residency lock held; `victim` must be unpinned, so no
    /// handler can hold its store mutex (mutex holders hold pins).
    fn evict_locked(&self, res: &mut ResidencyState, victim: UserId) {
        let key = self.key_of(victim);
        let store = self.shard(victim).users.read().get(&victim).cloned();
        if let Some(store) = store {
            let json = {
                let store = store.lock();
                serde_json::to_string(&UserSnapshot::from_store(&store))
                    .expect("snapshot serializes")
            };
            let wal_seq = self.inner.wal.lock().log.last_seq(&key);
            self.inner.snapshots.put(&key, wal_seq, json);
            // Drop the in-memory records the snapshot now covers — this
            // prune is what keeps capped RSS flat as history accumulates.
            self.inner.wal.lock().log.compact(&key, wal_seq);
            self.shard(victim).users.write().remove(&victim);
        }
        res.remove(victim);
        let metrics = self.inner.metrics.read();
        metrics.evictions.inc();
        metrics.resident.add(-1);
    }

    /// WAL hook, called by the dispatcher after every handled request.
    /// Registration successes bind the user's identity key; in durable
    /// mode, registrations, token rotations, and `Ingest`-class successes
    /// are appended to the log.
    pub(crate) fn record_success(
        &self,
        request: &Request,
        response: &Response,
        user: Option<UserId>,
        ingest: bool,
    ) {
        if !self.inner.enabled.load(Ordering::SeqCst)
            || self.inner.replaying.load(Ordering::SeqCst)
            || !response.is_success()
        {
            return;
        }
        if let Payload::Registered {
            user,
            token,
            expires_at,
        } = &response.body
        {
            if request.path == REGISTRATION_PATH {
                let key = match RegistrationBody::from_payload(&request.body) {
                    Some(body) => identity_key(&body.imei, &body.email),
                    None => match request.body.parse::<RegistrationBody>() {
                        Ok(body) => identity_key(&body.imei, &body.email),
                        Err(_) => fallback_key(*user),
                    },
                };
                self.bind_key(*user, &key);
                self.append_durable(&key, WalOp::request(request.clone()));
                self.append_durable(
                    &key,
                    WalOp::TokenGrant {
                        token: token.clone(),
                        expires_at: *expires_at,
                    },
                );
            }
            return;
        }
        if let Payload::TokenRefreshed { token, expires_at } = &response.body {
            if let Some(user) = user {
                self.append_durable(
                    &self.key_of(user),
                    WalOp::TokenGrant {
                        token: token.clone(),
                        expires_at: *expires_at,
                    },
                );
            }
            return;
        }
        if ingest {
            if let Some(user) = user {
                self.append_durable(&self.key_of(user), WalOp::request(request.clone()));
            }
        }
    }

    /// Appends one operation to the durable log (no-op without a store
    /// directory — cap-only mode needs no log, eviction snapshots are
    /// complete).
    fn append_durable(&self, key: &str, op: WalOp) {
        let mut wal = self.inner.wal.lock();
        if wal.dir.is_none() {
            return;
        }
        let record = wal.log.append(key, op.compacted());
        wal.persist(&record);
    }

    // ---- recovery (driven by `CloudInstance::recover`) -------------------

    /// Loads the WAL shard files and parked snapshots from the configured
    /// store directory (crash recovery; call on a freshly enabled,
    /// still-empty engine).
    pub(crate) fn load_dir(&self) {
        let dir = {
            let mut wal = self.inner.wal.lock();
            let Some(dir) = wal.dir.clone() else {
                return;
            };
            for idx in 0..SHARD_COUNT {
                let Ok(text) = fs::read_to_string(dir.join(format!("wal-{idx:02}.jsonl"))) else {
                    continue;
                };
                for line in text.lines().filter(|l| !l.trim().is_empty()) {
                    let Ok(value) = serde_json::from_str::<serde_json::Value>(line) else {
                        continue;
                    };
                    if let Ok(record) = WalRecord::from_json(&value) {
                        wal.log.insert_loaded(record);
                    }
                }
            }
            wal.log.sort();
            dir
        };
        self.inner.snapshots.load(&dir);
    }

    /// Keys with recoverable state (WAL records or a parked snapshot), in
    /// key order — the deterministic recovery sweep order.
    pub(crate) fn recovery_keys(&self) -> Vec<String> {
        let mut keys = self.inner.wal.lock().log.keys();
        for key in self.inner.snapshots.keys() {
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        keys.sort();
        keys
    }

    /// All WAL records of `key`, in sequence order.
    pub(crate) fn records_of(&self, key: &str) -> Vec<WalRecord> {
        self.inner.wal.lock().log.suffix(key, 0)
    }

    /// Marks a recovery replay as in flight (suppresses WAL logging).
    pub(crate) fn set_replaying(&self, replaying: bool) {
        self.inner.replaying.store(replaying, Ordering::SeqCst);
    }

    /// Rebinds a recovered registration: maps `user` ↔ `key` and drops
    /// the empty default store the replayed registration materialized, so
    /// the next touch hydrates lazily from snapshot + WAL under `key`.
    pub(crate) fn rebind_recovered(&self, user: UserId, key: &str) {
        self.bind_key(user, key);
        let removed = self.shard(user).users.write().remove(&user).is_some();
        let mut res = self.inner.residency.lock();
        if res.contains(user) {
            res.remove(user);
            if removed {
                self.inner.metrics.read().resident.add(-1);
            }
        }
    }

    // ---- views -----------------------------------------------------------

    /// Stores currently resident in RAM.
    pub(crate) fn resident_users(&self) -> usize {
        if self.is_enabled() {
            self.inner.residency.lock().len()
        } else {
            self.inner.shards.iter().map(|s| s.users.read().len()).sum()
        }
    }

    /// Whether `user`'s store is resident (always true for a touched user
    /// while the engine is disabled).
    pub(crate) fn is_resident(&self, user: UserId) -> bool {
        if self.is_enabled() {
            self.inner.residency.lock().contains(user)
        } else {
            self.shard(user).users.read().contains_key(&user)
        }
    }

    /// Users evicted so far (0 while disabled).
    pub(crate) fn eviction_count(&self) -> u64 {
        self.inner.metrics.read().evictions.get()
    }

    /// Hydrations performed so far (0 while disabled).
    pub(crate) fn hydration_count(&self) -> u64 {
        self.inner.metrics.read().hydrations.get()
    }

    /// Drops every cached discovery engine, resident and parked (GCA
    /// config change).
    pub(crate) fn invalidate_gca(&self) {
        for shard in &self.inner.shards {
            let stores: Vec<_> = shard.users.read().values().cloned().collect();
            for store in stores {
                store.lock().gca = None;
            }
        }
        for key in self.inner.snapshots.keys() {
            self.inner
                .snapshots
                .edit_snapshot(&key, UserSnapshot::clear_gca);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> StorageEngine {
        StorageEngine::new()
    }

    fn gca_lock() -> RwLock<GcaConfig> {
        RwLock::new(GcaConfig::default())
    }

    #[test]
    fn disabled_engine_matches_legacy_store_of() {
        let engine = engine();
        let gca = gca_lock();
        let guard = engine.acquire(UserId(3), SimTime::EPOCH, &gca);
        guard.lock().places_seq = 9;
        drop(guard);
        let guard = engine.acquire(UserId(3), SimTime::EPOCH, &gca);
        assert_eq!(guard.lock().places_seq, 9);
        assert_eq!(engine.resident_users(), 1);
        assert!(engine.is_resident(UserId(3)));
        assert_eq!(engine.eviction_count(), 0);
    }

    #[test]
    fn cap_evicts_lru_and_hydrates_back() {
        let engine = engine();
        let gca = gca_lock();
        engine.configure(
            Some(StorageConfig {
                resident_cap: Some(2),
                ..StorageConfig::default()
            }),
            &Obs::new(),
            &GcaConfig::default(),
        );
        for (i, at) in [(1u32, 10u64), (2, 20), (3, 30)] {
            let guard = engine.acquire(UserId(i), SimTime::from_seconds(at), &gca);
            guard.lock().places_seq = u64::from(i) * 100;
        }
        // User 1 (oldest stamp) was evicted to a snapshot.
        assert_eq!(engine.resident_users(), 2);
        assert!(!engine.is_resident(UserId(1)));
        assert_eq!(engine.eviction_count(), 1);
        // Touching it again hydrates the parked state byte-for-byte.
        let guard = engine.acquire(UserId(1), SimTime::from_seconds(40), &gca);
        assert_eq!(guard.lock().places_seq, 100);
        assert_eq!(engine.hydration_count(), 1);
        // And pushed out user 2, now the LRU.
        assert!(!engine.is_resident(UserId(2)));
    }

    #[test]
    fn pinned_guards_shield_from_eviction() {
        let engine = engine();
        let gca = gca_lock();
        engine.configure(
            Some(StorageConfig {
                resident_cap: Some(1),
                ..StorageConfig::default()
            }),
            &Obs::new(),
            &GcaConfig::default(),
        );
        let pinned = engine.acquire(UserId(1), SimTime::from_seconds(1), &gca);
        let _other = engine.acquire(UserId(2), SimTime::from_seconds(2), &gca);
        // User 1 is older but pinned; user 2 is pinned too, so the cap is
        // soft until a guard drops.
        assert!(engine.is_resident(UserId(1)));
        drop(pinned);
        let _third = engine.acquire(UserId(3), SimTime::from_seconds(3), &gca);
        assert!(!engine.is_resident(UserId(1)), "unpinned LRU evicted");
    }

    #[test]
    fn disabling_rehydrates_parked_users() {
        let engine = engine();
        let gca = gca_lock();
        engine.configure(
            Some(StorageConfig {
                resident_cap: Some(1),
                ..StorageConfig::default()
            }),
            &Obs::new(),
            &GcaConfig::default(),
        );
        {
            let guard = engine.acquire(UserId(1), SimTime::from_seconds(1), &gca);
            guard.lock().routes_seq = 7;
        }
        let _second = engine.acquire(UserId(2), SimTime::from_seconds(2), &gca);
        assert!(!engine.is_resident(UserId(1)));
        engine.configure(None, &Obs::new(), &GcaConfig::default());
        // Back to plain resident maps: both users present, state intact.
        assert_eq!(engine.resident_users(), 2);
        let guard = engine.acquire(UserId(1), SimTime::EPOCH, &gca);
        assert_eq!(guard.lock().routes_seq, 7);
    }
}
