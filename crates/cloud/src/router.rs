//! The declarative route table — the single source of truth for dispatch.
//!
//! Every endpoint of the cloud instance is one [`Route`] row: method, path
//! shape, auth requirement, admission-control [`RateClass`], the stable
//! metric label, and the handler function. Dispatch, the per-endpoint
//! metric dimension ([`ENDPOINT_LABELS`]), 404-vs-405 semantics, and the
//! admission controller's class lookup are all derived from this one
//! table, so adding an endpoint is a single row — there is no second,
//! hand-maintained match to drift out of sync (the `endpoint_index`
//! hazard of earlier revisions).

use crate::api::{Method, Request, Response};
use crate::handlers::{self, Ctx, Handler};
use crate::payload::{
    self, ArrivalBody, BodyDecoder, DiscoverBody, GeolocateBody, GeolocateSignatureBody, LabelBody,
    NextVisitBody, PlaceOnlyBody, RegistrationBody, RouteQueryBody, SocialQueryBody,
    SyncContactsBody, SyncPlacesBody, SyncProfileBody, SyncRoutesBody,
};

/// Admission-control class of a route: which token bucket a request draws
/// from when the deterministic admission controller is enabled. Classes
/// mirror the cost and urgency of the work behind the endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RateClass {
    /// Registration and token refresh — cheap, availability-critical.
    Auth,
    /// Bulk ingest: offloads and syncs that move client state up.
    Ingest,
    /// Interactive reads: lists, fetches, geolocation.
    Query,
    /// Analytics and prediction queries — the expensive tier.
    Analytics,
}

/// All rate classes, in a stable order (metric label order).
pub const ALL_RATE_CLASSES: [RateClass; 4] = [
    RateClass::Auth,
    RateClass::Ingest,
    RateClass::Query,
    RateClass::Analytics,
];

impl RateClass {
    /// Stable lower-case name, used as the `class` metric label.
    pub fn label(self) -> &'static str {
        match self {
            RateClass::Auth => "auth",
            RateClass::Ingest => "ingest",
            RateClass::Query => "query",
            RateClass::Analytics => "analytics",
        }
    }
}

/// Authentication requirement of a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteAuth {
    /// No token required (registration only).
    Public,
    /// A valid, unexpired bearer token is required.
    Bearer,
}

/// Path shape of a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathSpec {
    /// The path must equal this string exactly.
    Exact(&'static str),
    /// The path must start with this prefix; the remainder is a handler
    /// argument (e.g. `/api/v1/profiles/{day}`).
    Prefix(&'static str),
}

impl PathSpec {
    fn matches(self, path: &str) -> bool {
        match self {
            PathSpec::Exact(p) => p == path,
            PathSpec::Prefix(p) => path.starts_with(p),
        }
    }
}

/// One row of the route table.
#[derive(Clone, Copy)]
pub struct Route {
    /// HTTP-style method.
    pub method: Method,
    /// Path shape.
    pub path: PathSpec,
    /// Whether a bearer token is required.
    pub auth: RouteAuth,
    /// Admission-control class.
    pub rate_class: RateClass,
    /// Stable endpoint label (the `endpoint` metric dimension).
    pub label: &'static str,
    /// Handler function (see [`crate::handlers`]).
    pub(crate) handler: Handler,
    /// Typed-body decoder for the wire boundary (see
    /// [`crate::payload::Payload::from_json`]).
    pub(crate) decode: BodyDecoder,
}

impl std::fmt::Debug for Route {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Route")
            .field("method", &self.method)
            .field("path", &self.path)
            .field("auth", &self.auth)
            .field("rate_class", &self.rate_class)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// Shorthand row constructor, so the table below stays tabular.
const fn route(
    method: Method,
    path: PathSpec,
    auth: RouteAuth,
    rate_class: RateClass,
    label: &'static str,
    handler: Handler,
    decode: BodyDecoder,
) -> Route {
    Route {
        method,
        path,
        auth,
        rate_class,
        label,
        handler,
        decode,
    }
}

use Method::{Get, Post};
use PathSpec::{Exact, Prefix};
use RateClass::{Analytics, Auth, Ingest, Query};
use RouteAuth::{Bearer, Public};

/// The route table. Ordering is load-bearing twice over: resolution takes
/// the first match (so exact paths shadow the profiles prefix row), and
/// the row index **is** the endpoint's metric-label index — append new
/// rows rather than reordering, or historical metric dumps stop lining
/// up.
pub const ROUTES: [Route; 21] = [
    route(
        Post,
        Exact("/api/v1/registration"),
        Public,
        Auth,
        "register",
        handlers::registration::register,
        payload::decode::<RegistrationBody>,
    ),
    route(
        Post,
        Exact("/api/v1/token/refresh"),
        Bearer,
        Auth,
        "token_refresh",
        handlers::registration::token_refresh,
        payload::decode_none,
    ),
    route(
        Post,
        Exact("/api/v1/places/discover"),
        Bearer,
        Ingest,
        "places_discover",
        handlers::places::discover,
        payload::decode::<DiscoverBody>,
    ),
    route(
        Post,
        Exact("/api/v1/places/sync"),
        Bearer,
        Ingest,
        "places_sync",
        handlers::places::sync,
        payload::decode::<SyncPlacesBody>,
    ),
    route(
        Get,
        Exact("/api/v1/places"),
        Bearer,
        Query,
        "places_list",
        handlers::places::list,
        payload::decode_none,
    ),
    route(
        Post,
        Exact("/api/v1/places/label"),
        Bearer,
        Ingest,
        "places_label",
        handlers::places::label,
        payload::decode::<LabelBody>,
    ),
    route(
        Post,
        Exact("/api/v1/routes/sync"),
        Bearer,
        Ingest,
        "routes_sync",
        handlers::routes::sync,
        payload::decode::<SyncRoutesBody>,
    ),
    route(
        Get,
        Exact("/api/v1/routes"),
        Bearer,
        Query,
        "routes_list",
        handlers::routes::list,
        payload::decode_none,
    ),
    route(
        Post,
        Exact("/api/v1/routes/query"),
        Bearer,
        Query,
        "routes_query",
        handlers::routes::query,
        payload::decode::<RouteQueryBody>,
    ),
    route(
        Post,
        Exact("/api/v1/profiles/sync"),
        Bearer,
        Ingest,
        "profiles_sync",
        handlers::profiles::sync,
        payload::decode::<SyncProfileBody>,
    ),
    route(
        Get,
        Prefix(handlers::profiles::DAY_PREFIX),
        Bearer,
        Query,
        "profiles_get",
        handlers::profiles::get_day,
        payload::decode_none,
    ),
    route(
        Post,
        Exact("/api/v1/social/sync"),
        Bearer,
        Ingest,
        "social_sync",
        handlers::social::sync,
        payload::decode::<SyncContactsBody>,
    ),
    route(
        Post,
        Exact("/api/v1/social/query"),
        Bearer,
        Query,
        "social_query",
        handlers::social::query,
        payload::decode::<SocialQueryBody>,
    ),
    route(
        Post,
        Exact("/api/v1/misc/geolocate"),
        Bearer,
        Query,
        "geolocate",
        handlers::geolocate::by_cell,
        payload::decode::<GeolocateBody>,
    ),
    route(
        Post,
        Exact("/api/v1/misc/geolocate_signature"),
        Bearer,
        Query,
        "geolocate_signature",
        handlers::geolocate::by_signature,
        payload::decode::<GeolocateSignatureBody>,
    ),
    route(
        Post,
        Exact("/api/v1/analytics/arrival"),
        Bearer,
        Analytics,
        "analytics_arrival",
        handlers::analytics::arrival,
        payload::decode::<ArrivalBody>,
    ),
    route(
        Post,
        Exact("/api/v1/analytics/next_visit"),
        Bearer,
        Analytics,
        "analytics_next_visit",
        handlers::analytics::next_visit,
        payload::decode::<NextVisitBody>,
    ),
    route(
        Post,
        Exact("/api/v1/analytics/frequency"),
        Bearer,
        Analytics,
        "analytics_frequency",
        handlers::analytics::frequency,
        payload::decode::<PlaceOnlyBody>,
    ),
    route(
        Post,
        Exact("/api/v1/analytics/activity"),
        Bearer,
        Analytics,
        "analytics_activity",
        handlers::analytics::activity,
        payload::decode_none,
    ),
    route(
        Post,
        Exact("/api/v1/analytics/next_place"),
        Bearer,
        Analytics,
        "analytics_next_place",
        handlers::analytics::next_place,
        payload::decode::<PlaceOnlyBody>,
    ),
    // The federation heartbeat: public so the topology router can probe
    // an instance without holding any user's token, and it runs through
    // the full layer stack so an injected outage answers 503 — which is
    // exactly how a dead instance is detected.
    route(
        Get,
        Exact("/api/v1/health"),
        Public,
        Query,
        "health",
        handlers::health::status,
        payload::decode_none,
    ),
];

/// Number of endpoint metric labels: one per route plus `other` (unrouted
/// paths).
pub const ENDPOINT_COUNT: usize = ROUTES.len() + 1;

/// Index of the `other` label — requests that match no route exactly.
pub const OTHER_ENDPOINT: usize = ROUTES.len();

/// Stable endpoint labels, the `endpoint` metric dimension — **derived**
/// from the route table at compile time (row order), closing the silent
/// drift hazard of the old hand-maintained duplicate match.
pub const ENDPOINT_LABELS: [&str; ENDPOINT_COUNT] = {
    let mut labels = ["other"; ENDPOINT_COUNT];
    let mut i = 0;
    while i < ROUTES.len() {
        labels[i] = ROUTES[i].label;
        i += 1;
    }
    labels
};

/// Outcome of resolving `(method, path)` against the table.
#[derive(Debug, Clone, Copy)]
pub enum Resolution {
    /// A route matched; `index` is its row (= metric label index).
    Matched {
        /// Row index in [`ROUTES`].
        index: usize,
        /// The matched route.
        route: &'static Route,
    },
    /// The path is known but not under this method; `allow` lists the
    /// methods that would match (the 405 `allow` response field).
    MethodNotAllowed {
        /// Methods the path does accept.
        allow: &'static [Method],
    },
    /// No route knows this path.
    NotFound,
}

/// Resolves a request against the route table: first row whose method and
/// path both match wins; a path-only match yields 405 with the allowed
/// methods; otherwise 404.
pub fn resolve(method: Method, path: &str) -> Resolution {
    let mut allow_get = false;
    let mut allow_post = false;
    for (index, route) in ROUTES.iter().enumerate() {
        if !route.path.matches(path) {
            continue;
        }
        if route.method == method {
            return Resolution::Matched { index, route };
        }
        match route.method {
            Method::Get => allow_get = true,
            Method::Post => allow_post = true,
        }
    }
    match (allow_get, allow_post) {
        (false, false) => Resolution::NotFound,
        (true, false) => Resolution::MethodNotAllowed {
            allow: &[Method::Get],
        },
        (false, true) => Resolution::MethodNotAllowed {
            allow: &[Method::Post],
        },
        (true, true) => Resolution::MethodNotAllowed {
            allow: &[Method::Get, Method::Post],
        },
    }
}

/// Metric-label index for a request: the matched route's row, or
/// [`OTHER_ENDPOINT`] for 404/405 paths (bounded cardinality by
/// construction; a wrong-method request keeps the historical `other`
/// label).
pub fn endpoint_index(method: Method, path: &str) -> usize {
    match resolve(method, path) {
        Resolution::Matched { index, .. } => index,
        _ => OTHER_ENDPOINT,
    }
}

/// The terminal service of the middleware stack: resolve the route, build
/// the handler context, and invoke the handler. Auth enforcement happens
/// in the layers above; the dispatcher only re-derives the caller's
/// identity for the handler context.
pub(crate) fn dispatch(
    core: &crate::state::CloudCore,
    request: &Request,
    now: pmware_world::SimTime,
) -> Response {
    match resolve(request.method, request.path.as_str()) {
        Resolution::Matched { route, .. } => {
            let user = match route.auth {
                RouteAuth::Public => None,
                RouteAuth::Bearer => {
                    let Some(token) = request.token.as_deref() else {
                        return Response::unauthorized("missing bearer token");
                    };
                    match core.tokens.read().validate(token, now) {
                        Some(user) => Some(user),
                        None => {
                            return Response::unauthorized("invalid or expired token");
                        }
                    }
                }
            };
            let ctx = Ctx {
                core,
                user,
                token: request.token.as_deref(),
                now,
            };
            let response = (route.handler)(&ctx, request);
            // Storage-engine WAL hook: successful mutating requests are
            // logged *after* the handler, so a logged record is always a
            // request that actually shaped state. One atomic load while
            // the engine is disabled.
            core.storage.record_success(
                request,
                &response,
                user,
                route.rate_class == RateClass::Ingest,
            );
            response
        }
        Resolution::MethodNotAllowed { allow } => Response::method_not_allowed(allow),
        Resolution::NotFound => Response::not_found(format!("no route for {}", request.path)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_derive_from_the_table_in_row_order() {
        // The historical label set, exactly — metric keys must not drift.
        let expected = [
            "register",
            "token_refresh",
            "places_discover",
            "places_sync",
            "places_list",
            "places_label",
            "routes_sync",
            "routes_list",
            "routes_query",
            "profiles_sync",
            "profiles_get",
            "social_sync",
            "social_query",
            "geolocate",
            "geolocate_signature",
            "analytics_arrival",
            "analytics_next_visit",
            "analytics_frequency",
            "analytics_activity",
            "analytics_next_place",
            "health",
            "other",
        ];
        assert_eq!(ENDPOINT_LABELS.as_slice(), expected.as_slice());
        assert_eq!(ENDPOINT_LABELS[OTHER_ENDPOINT], "other");
    }

    #[test]
    fn labels_are_unique() {
        for (i, a) in ENDPOINT_LABELS.iter().enumerate() {
            for b in ENDPOINT_LABELS.iter().skip(i + 1) {
                assert_ne!(a, b, "duplicate endpoint label");
            }
        }
    }

    #[test]
    fn exact_routes_shadow_the_profiles_prefix() {
        // POST /profiles/sync is its own row, not the GET prefix route.
        assert_eq!(endpoint_index(Method::Post, "/api/v1/profiles/sync"), 9);
        assert_eq!(endpoint_index(Method::Get, "/api/v1/profiles/3"), 10);
    }

    #[test]
    fn resolution_distinguishes_404_from_405() {
        assert!(matches!(
            resolve(Method::Get, "/api/v1/nope"),
            Resolution::NotFound
        ));
        match resolve(Method::Get, "/api/v1/places/sync") {
            Resolution::MethodNotAllowed { allow } => assert_eq!(allow, &[Method::Post]),
            other => panic!("expected 405, got {other:?}"),
        }
        match resolve(Method::Post, "/api/v1/places") {
            Resolution::MethodNotAllowed { allow } => assert_eq!(allow, &[Method::Get]),
            other => panic!("expected 405, got {other:?}"),
        }
        // Wrong-method paths keep the bounded `other` metric label.
        assert_eq!(
            endpoint_index(Method::Get, "/api/v1/places/sync"),
            OTHER_ENDPOINT
        );
    }

    #[test]
    fn wrong_method_on_the_profiles_prefix_is_405() {
        // POST /api/v1/profiles/3 hits the prefix row path-wise but only
        // GET is served there.
        match resolve(Method::Post, "/api/v1/profiles/3") {
            Resolution::MethodNotAllowed { allow } => assert_eq!(allow, &[Method::Get]),
            other => panic!("expected 405, got {other:?}"),
        }
    }
}
