//! Shared server state: per-user stores, lock shards, registry-backed
//! metrics, and the [`CloudCore`] bundle every middleware layer and
//! handler operates on.
//!
//! Splitting this out of `instance.rs` is what lets the service be a
//! *stack*: layers and the router terminal each hold an `Arc<CloudCore>`
//! and touch exactly the state they need, instead of one monolith owning
//! both the state and every behavior.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::{Mutex, RwLock};
use pmware_algorithms::gca::{GcaConfig, IncrementalGca};
use pmware_algorithms::route::RouteStore;
use pmware_algorithms::signature::DiscoveredPlace;
use pmware_obs::{Counter, Obs};
use pmware_world::SimTime;
use rand::rngs::StdRng;

use crate::admission::AdmissionControl;
use crate::analytics::ProfileHistory;
use crate::auth::{TokenStore, UserId};
use crate::geolocate::CellDatabase;
use crate::latency::LatencyControl;
use crate::predict::MarkovPredictor;
use crate::profile::ContactEntry;
use crate::router::{ENDPOINT_COUNT, ENDPOINT_LABELS};
use crate::storage::{StorageEngine, StoreGuard};

/// Number of per-user lock shards.
pub const SHARD_COUNT: usize = 16;

/// Per-user server-side state.
#[derive(Debug)]
pub(crate) struct UserStore {
    pub(crate) places: Vec<DiscoveredPlace>,
    pub(crate) routes: RouteStore,
    pub(crate) history: ProfileHistory,
    pub(crate) contacts: Vec<ContactEntry>,
    /// Persistent incremental discovery engine: each offload folds its
    /// suffix in instead of re-clustering (and forgetting) from scratch.
    /// Created lazily on first offload with the instance's GCA config.
    pub(crate) gca: Option<IncrementalGca>,
    /// Memoized Markov model, tagged with the [`ProfileHistory`]
    /// generation it was trained at; a profile upsert bumps the
    /// generation, which invalidates this entry on the next query.
    pub(crate) next_place: Option<(u64, MarkovPredictor)>,
    /// Observations absorbed through the sequenced discover path: a
    /// duplicated or re-sent offload whose `start` falls behind this
    /// watermark has its already-seen prefix skipped instead of being
    /// double-absorbed.
    pub(crate) absorbed_upto: u64,
    /// Contacts absorbed through the sequenced social sync; the dual of
    /// `absorbed_upto` for encounters.
    pub(crate) contacts_absorbed: u64,
    /// Highest sync sequence accepted per profile day: a stale (reordered
    /// or duplicated) upsert is ignored rather than re-applied.
    pub(crate) profile_seq: HashMap<u64, u64>,
    /// Highest sequence accepted for the places full-replacement sync.
    pub(crate) places_seq: u64,
    /// Highest sequence accepted for the routes full-replacement sync.
    pub(crate) routes_seq: u64,
}

impl Default for UserStore {
    fn default() -> Self {
        UserStore {
            places: Vec::new(),
            routes: RouteStore::new(0.5),
            history: ProfileHistory::new(),
            contacts: Vec::new(),
            gca: None,
            next_place: None,
            absorbed_upto: 0,
            contacts_absorbed: 0,
            profile_seq: HashMap::new(),
            places_seq: 0,
            routes_seq: 0,
        }
    }
}

/// Registry-backed cloud counters.
///
/// Two registries are involved on purpose. Per-**endpoint** requests,
/// idempotent-replay counts, admission denials, and the analytics cache
/// hit/miss counters are order-independent aggregates, so they may bind
/// to a study-wide shared registry via `CloudInstance::with_obs`.
/// Per-**shard** counts stay in the instance's private registry always:
/// the user-id → shard mapping depends on registration order, which races
/// across thread schedules, and admitting it into a shared snapshot would
/// break the byte-identical determinism guarantee.
#[derive(Debug)]
pub(crate) struct CloudMetrics {
    /// Private always-on registry backing the legacy snapshot views.
    pub(crate) private: Obs,
    /// The registry aggregate metrics bind to (the shared study registry
    /// after `with_obs`, else the private one). Kept so late enablers —
    /// the latency model resolves its histograms at `set_latency` time,
    /// not construction time — bind to the same registry. Lazy resolution
    /// is what keeps a disabled model from adding metric keys.
    pub(crate) shared: Obs,
    pub(crate) shard_requests: Vec<Counter>,
    /// Indexed by [`crate::router::endpoint_index`].
    pub(crate) endpoint_requests: Vec<Counter>,
    pub(crate) replay_discover: Counter,
    pub(crate) replay_places_sync: Counter,
    pub(crate) replay_routes_sync: Counter,
    pub(crate) replay_profiles_sync: Counter,
    pub(crate) replay_social_sync: Counter,
    pub(crate) cache_hits: Counter,
    pub(crate) cache_misses: Counter,
    /// Admission-control denials, per rate class (order-independent: each
    /// user's request stream is sequential, so denial counts do not race
    /// across thread schedules).
    pub(crate) admission_denied: Vec<Counter>,
    /// Wall-clock latency per endpoint, bench builds only.
    #[cfg(feature = "wallclock")]
    pub(crate) endpoint_nanos: Vec<pmware_obs::Histogram>,
}

impl CloudMetrics {
    pub(crate) fn new() -> CloudMetrics {
        let private = Obs::new().for_actor("cloud");
        Self::resolve(private.clone(), private)
    }

    pub(crate) fn resolve(private: Obs, obs: Obs) -> CloudMetrics {
        let shard_requests = (0..SHARD_COUNT)
            .map(|i| {
                let shard = format!("{i:02}");
                private.counter("cloud_shard_requests_total", &[("shard", &shard)])
            })
            .collect();
        let endpoint_requests: Vec<Counter> = ENDPOINT_LABELS
            .iter()
            .map(|label| obs.counter("cloud_requests_total", &[("endpoint", label)]))
            .collect();
        debug_assert_eq!(endpoint_requests.len(), ENDPOINT_COUNT);
        let admission_denied = crate::router::ALL_RATE_CLASSES
            .iter()
            .map(|class| obs.counter("cloud_admission_denied_total", &[("class", class.label())]))
            .collect();
        #[cfg(feature = "wallclock")]
        let endpoint_nanos = ENDPOINT_LABELS
            .iter()
            .map(|label| {
                obs.histogram(
                    "cloud_endpoint_nanos",
                    &[("endpoint", label)],
                    &pmware_obs::profiling::NANO_BOUNDS,
                )
            })
            .collect();
        CloudMetrics {
            shared: obs.clone(),
            shard_requests,
            endpoint_requests,
            replay_discover: obs.counter("cloud_replays_total", &[("endpoint", "places_discover")]),
            replay_places_sync: obs.counter("cloud_replays_total", &[("endpoint", "places_sync")]),
            replay_routes_sync: obs.counter("cloud_replays_total", &[("endpoint", "routes_sync")]),
            replay_profiles_sync: obs
                .counter("cloud_replays_total", &[("endpoint", "profiles_sync")]),
            replay_social_sync: obs.counter("cloud_replays_total", &[("endpoint", "social_sync")]),
            cache_hits: obs.counter("cloud_analytics_cache_total", &[("result", "hit")]),
            cache_misses: obs.counter("cloud_analytics_cache_total", &[("result", "miss")]),
            admission_denied,
            #[cfg(feature = "wallclock")]
            endpoint_nanos,
            private,
        }
    }

    /// The admission-denial counter for a rate class.
    pub(crate) fn admission_denied(&self, class: crate::router::RateClass) -> &Counter {
        let slot = crate::router::ALL_RATE_CLASSES
            .iter()
            .position(|c| *c == class)
            .expect("known class");
        &self.admission_denied[slot]
    }
}

/// Everything the middleware stack and the handlers operate on. The
/// layers each hold an `Arc<CloudCore>`; `CloudInstance` is construction,
/// public accessors, and the stack itself.
#[derive(Debug)]
pub(crate) struct CloudCore {
    pub(crate) tokens: RwLock<TokenStore>,
    /// The storage engine every `UserStore` access flows through: the
    /// sharded resident maps plus (when enabled) the WAL, snapshots, and
    /// the LRU residency manager. See [`crate::storage`].
    pub(crate) storage: StorageEngine,
    pub(crate) cells: CellDatabase,
    pub(crate) gca_config: RwLock<GcaConfig>,
    pub(crate) rng: Mutex<StdRng>,
    pub(crate) outage: AtomicBool,
    pub(crate) admission: AdmissionControl,
    /// The sim-time latency model: per-endpoint service draws, queueing,
    /// and load shedding (see [`crate::latency`]). Disabled by default.
    pub(crate) latency: LatencyControl,
    pub(crate) metrics: CloudMetrics,
    /// Users whose state has been migrated to another instance during a
    /// federation failover or drain. The relocation layer answers their
    /// authenticated requests with 421 so the federated endpoint refreshes
    /// its topology instead of mutating abandoned state. A user re-adopted
    /// by this instance (fail-back) is removed from the set.
    pub(crate) relocated: RwLock<HashSet<UserId>>,
}

impl CloudCore {
    /// Whether an outage is currently injected.
    pub(crate) fn outage(&self) -> bool {
        self.outage.load(Ordering::SeqCst)
    }

    /// The per-user store at simulated instant `now`, created (or
    /// hydrated from its parked snapshot) if not resident. The guard pins
    /// the user against eviction while held.
    pub(crate) fn store_at(&self, user: UserId, now: SimTime) -> StoreGuard {
        self.storage.acquire(user, now, &self.gca_config)
    }

    /// [`CloudCore::store_at`] stamped with the engine's last-seen
    /// clock — the accessor-path spelling for callers that carry no
    /// simulated instant of their own.
    pub(crate) fn store_of(&self, user: UserId) -> StoreGuard {
        self.store_at(user, self.storage.clock_now())
    }
}
