//! The prediction engine (§2.3.2).
//!
//! Answers the paper's three example queries over a user's stored history:
//!
//! 1. *"What is the likely time at which the user typically reaches home in
//!    the evening?"* → [`predict_arrival_in_window`].
//! 2. *"When will be the next visit of the user for a given place A?"* →
//!    [`predict_next_visit`].
//! 3. *"How frequently user visit shopping malls?"* →
//!    [`ProfileHistory::visits_per_week`] (exposed through the API).
//!
//! plus a first-order Markov [`MarkovPredictor`] over place transitions,
//! the standard substrate for "where next" queries.

use std::collections::BTreeMap;

use pmware_algorithms::signature::DiscoveredPlaceId;
use pmware_world::time::DAY;
use pmware_world::SimTime;
use serde::{Deserialize, Serialize};

use crate::analytics::ProfileHistory;

/// Predicted arrival instant at a place within a time-of-day window.
///
/// Returns `None` when the history holds no arrival in that window.
pub fn predict_arrival_in_window(
    history: &ProfileHistory,
    place: DiscoveredPlaceId,
    window: (u64, u64),
) -> Option<u64> {
    history.typical_arrival_second_of_day(place, Some(window))
}

/// Predicts the next visit to `place` strictly after `now`.
///
/// Uses the weekday pattern: for each of the next 14 days, if the place
/// was historically visited on that weekday, the predicted arrival is the
/// historical median arrival second-of-day; the first such instant after
/// `now` wins. Returns `None` for never-visited places.
pub fn predict_next_visit(
    history: &ProfileHistory,
    place: DiscoveredPlaceId,
    now: SimTime,
) -> Option<SimTime> {
    let hist = history.weekday_histogram(place);
    if hist.iter().all(|&n| n == 0) {
        return None;
    }
    // Median arrival per weekday (falling back to the overall median).
    let overall = history.typical_arrival_second_of_day(place, None)?;
    let mut per_weekday: [Option<u64>; 7] = [None; 7];
    {
        let mut buckets: [Vec<u64>; 7] = Default::default();
        for arrival in history.arrivals_iter(place) {
            let idx = (arrival.as_seconds() / DAY % 7) as usize;
            buckets[idx].push(arrival.seconds_of_day());
        }
        for (idx, mut bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                bucket.sort_unstable();
                per_weekday[idx] = Some(bucket[bucket.len() / 2]);
            }
        }
    }
    for offset in 0..14u64 {
        let day = now.day() + offset;
        let weekday_idx = (day % 7) as usize;
        if hist[weekday_idx] == 0 {
            continue;
        }
        let second = per_weekday[weekday_idx].unwrap_or(overall);
        let candidate = SimTime::from_seconds(day * DAY + second);
        if candidate > now {
            return Some(candidate);
        }
    }
    None
}

/// First-order Markov model over place-to-place transitions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MarkovPredictor {
    transitions: BTreeMap<DiscoveredPlaceId, BTreeMap<DiscoveredPlaceId, u32>>,
}

impl MarkovPredictor {
    /// Trains on the consecutive place pairs of every stored day.
    pub fn train(history: &ProfileHistory) -> MarkovPredictor {
        let mut model = MarkovPredictor::default();
        for profile in history.iter() {
            for w in profile.places.windows(2) {
                *model
                    .transitions
                    .entry(w[0].place)
                    .or_default()
                    .entry(w[1].place)
                    .or_insert(0) += 1;
            }
        }
        model
    }

    /// Number of distinct source places.
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Successor distribution from `place`, most probable first.
    /// Empty when the place was never a transition source.
    pub fn predict_next(&self, place: DiscoveredPlaceId) -> Vec<(DiscoveredPlaceId, f64)> {
        let Some(next) = self.transitions.get(&place) else {
            return Vec::new();
        };
        let total: u32 = next.values().sum();
        let mut out: Vec<(DiscoveredPlaceId, f64)> = next
            .iter()
            .map(|(p, n)| (*p, *n as f64 / total as f64))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite probabilities"));
        out
    }

    /// The single most probable successor.
    pub fn most_likely_next(&self, place: DiscoveredPlaceId) -> Option<DiscoveredPlaceId> {
        self.predict_next(place).first().map(|(p, _)| *p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{MobilityProfile, PlaceEntry};

    fn entry(place: u32, day: u64, hour: u64) -> PlaceEntry {
        PlaceEntry {
            place: DiscoveredPlaceId(place),
            arrival: SimTime::from_day_time(day, hour, 0, 0),
            departure: SimTime::from_day_time(day, hour + 1, 0, 0),
        }
    }

    /// Weekday routine home(0) → work(1) → gym(2, Tue/Thu) → home(0);
    /// weekends at home only.
    fn history() -> ProfileHistory {
        let mut h = ProfileHistory::new();
        for day in 0..14 {
            let weekday = SimTime::from_day_time(day, 0, 0, 0).weekday();
            let mut p = MobilityProfile::new(day);
            p.places.push(entry(0, day, 0));
            if !weekday.is_weekend() {
                p.places.push(entry(1, day, 9));
                if day % 7 == 1 || day % 7 == 3 {
                    p.places.push(entry(2, day, 18));
                }
                p.places.push(entry(0, day, 20));
            }
            h.upsert(p);
        }
        h
    }

    #[test]
    fn markov_learns_routine() {
        let h = history();
        let m = MarkovPredictor::train(&h);
        assert!(m.state_count() >= 2);
        // From home the most likely next place is work (10 weekday
        // transitions vs none to the gym directly).
        assert_eq!(
            m.most_likely_next(DiscoveredPlaceId(0)),
            Some(DiscoveredPlaceId(1))
        );
        // From work: gym on 4 days, home on 6 → home wins.
        assert_eq!(
            m.most_likely_next(DiscoveredPlaceId(1)),
            Some(DiscoveredPlaceId(0))
        );
        let dist = m.predict_next(DiscoveredPlaceId(1));
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Distribution is sorted descending.
        for w in dist.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn markov_unknown_place_is_empty() {
        let m = MarkovPredictor::train(&history());
        assert!(m.predict_next(DiscoveredPlaceId(99)).is_empty());
        assert_eq!(m.most_likely_next(DiscoveredPlaceId(99)), None);
    }

    #[test]
    fn next_visit_prediction_respects_weekday_pattern() {
        let h = history();
        // Gym visits happen Tue/Thu at 18h. From Monday noon of week 3 the
        // next gym visit is Tuesday (day 15) 18:00.
        let now = SimTime::from_day_time(14, 12, 0, 0);
        let next = predict_next_visit(&h, DiscoveredPlaceId(2), now).unwrap();
        assert_eq!(next, SimTime::from_day_time(15, 18, 0, 0));
    }

    #[test]
    fn next_visit_later_today_if_time_remains() {
        let h = history();
        // Work visit at 9h; asked at 7h the prediction is today.
        let now = SimTime::from_day_time(14, 7, 0, 0);
        let next = predict_next_visit(&h, DiscoveredPlaceId(1), now).unwrap();
        assert_eq!(next, SimTime::from_day_time(14, 9, 0, 0));
        // Asked at 10h, it is tomorrow.
        let now = SimTime::from_day_time(14, 10, 0, 0);
        let next = predict_next_visit(&h, DiscoveredPlaceId(1), now).unwrap();
        assert_eq!(next, SimTime::from_day_time(15, 9, 0, 0));
    }

    #[test]
    fn never_visited_place_has_no_prediction() {
        let h = history();
        assert!(predict_next_visit(&h, DiscoveredPlaceId(42), SimTime::EPOCH).is_none());
    }

    #[test]
    fn evening_home_arrival_query() {
        let h = history();
        let s = predict_arrival_in_window(&h, DiscoveredPlaceId(0), (15, 24)).unwrap();
        assert_eq!(s / 3_600, 20);
        // No evening arrivals at work.
        assert!(predict_arrival_in_window(&h, DiscoveredPlaceId(1), (15, 24)).is_none());
    }
}
