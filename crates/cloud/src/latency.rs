//! Sim-time request latency: per-endpoint service-time draws plus
//! deterministic queueing and load shedding.
//!
//! The paper's Azure deployment measured request latency with a
//! stopwatch; a simulated deployment has no wall clock, so latency must
//! be *modeled*. Each endpoint gets a deterministic service-time
//! distribution (`base + seeded jitter`, integer microseconds), and every
//! instance runs a queue in front of its handlers: a request's completion
//! is `arrival + queue wait + service draw`. The numbers land in
//! `cloud_request_latency_us{endpoint,class}` histograms, in the health
//! probe (`queue_depth`, `p99_us`), and — when shedding is configured —
//! in 429 answers whose `retry_after_s` is the queue's actual drain time.
//!
//! # Determinism
//!
//! Everything here is a pure function of `(seed, endpoint, arrival
//! second)` and each user's own sequential request stream:
//!
//! * The **service draw** has no user or token component — tokens and
//!   user-id assignment race across thread schedules, so nothing
//!   metric-visible may derive from them.
//! * The default queue mode, [`QueueMode::PerUser`], gives every
//!   validated user an independent lane. A lane is only ever touched by
//!   its own user's (sequential) request stream, so waits, sheds, and
//!   histogram observations are schedule-independent, and the aggregates
//!   are commutative — byte-identical exports at any thread count.
//! * [`QueueMode::Shared`] is a single per-instance FIFO — the honest
//!   model for capacity planning (cross-user contention is the whole
//!   point) — and is therefore only meaningful under a single-threaded
//!   driver, where arrival order is the program order.
//!
//! Requests without a validated user (public registration, invalid
//! tokens) are never queued: their cost is the bare service draw. Queuing
//! them would couple users through a shared lane keyed on nothing.
//!
//! Disabled (the default), the model is one relaxed atomic load per
//! request and adds **zero** metric keys, so existing golden exports are
//! byte-unmodified.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;
use pmware_obs::{Counter, Histogram, Obs};
use pmware_world::{SimDuration, SimTime};

use crate::auth::UserId;
use crate::router::{RateClass, ENDPOINT_COUNT, ROUTES};

/// Histogram bucket upper bounds for request latency, in microseconds:
/// 100µs to 5s, roughly ×2.5 per step. Everything slower lands in the
/// overflow bucket.
pub const LATENCY_BOUNDS_US: [u64; 15] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

/// Service-time distribution of one endpoint: `base_us` plus a seeded
/// draw in `[0, jitter_us]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndpointCost {
    /// Minimum service time, microseconds.
    pub base_us: u64,
    /// Jitter span: the draw adds `0..=jitter_us` microseconds.
    pub jitter_us: u64,
}

impl EndpointCost {
    /// A cost of `base_us` plus up to `jitter_us` of seeded jitter.
    pub const fn new(base_us: u64, jitter_us: u64) -> EndpointCost {
        EndpointCost { base_us, jitter_us }
    }
}

/// Queueing discipline of an instance (see the module docs for the
/// determinism trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueMode {
    /// One independent FIFO lane per validated user (the default):
    /// schedule-independent, byte-identical at any thread count.
    PerUser,
    /// One FIFO for the whole instance: models cross-user contention,
    /// meaningful only under a single-threaded driver.
    Shared,
}

/// Queue configuration: discipline plus the shed threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Queueing discipline.
    pub mode: QueueMode,
    /// Shed requests arriving at a queue already holding this many
    /// unfinished requests; `0` never sheds.
    pub shed_depth: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            mode: QueueMode::PerUser,
            shed_depth: 0,
        }
    }
}

/// The latency model of one instance: a seed, a service-time cost per
/// endpoint (indexed by [`crate::router::endpoint_index`]), and the queue
/// discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyProfile {
    /// Seed folded into every service-time draw.
    pub seed: u64,
    /// Per-endpoint cost, indexed like [`crate::router::ENDPOINT_LABELS`]
    /// (the last slot covers unrouted `other` requests).
    pub costs: [EndpointCost; ENDPOINT_COUNT],
    /// Queueing discipline and shed threshold.
    pub queue: QueueConfig,
}

impl LatencyProfile {
    /// The same cost for every endpoint.
    pub fn uniform(seed: u64, base_us: u64, jitter_us: u64) -> LatencyProfile {
        LatencyProfile {
            seed,
            costs: [EndpointCost::new(base_us, jitter_us); ENDPOINT_COUNT],
            queue: QueueConfig::default(),
        }
    }

    /// Endpoint costs shaped like the paper's Azure tiers: auth and
    /// discovery are the expensive writes, syncs sit in the middle,
    /// queries are cheap, analytics pay for model work, and the health
    /// probe is near-free.
    pub fn calibrated(seed: u64) -> LatencyProfile {
        let mut profile = LatencyProfile::uniform(seed, 800, 400);
        for (index, route) in ROUTES.iter().enumerate() {
            profile.costs[index] = match route.label {
                "register" | "token_refresh" => EndpointCost::new(2_500, 1_000),
                "places_discover" => EndpointCost::new(5_000, 2_500),
                "health" => EndpointCost::new(50, 25),
                _ => match route.rate_class {
                    RateClass::Ingest => EndpointCost::new(1_500, 750),
                    RateClass::Analytics => EndpointCost::new(2_000, 1_000),
                    RateClass::Auth | RateClass::Query => EndpointCost::new(800, 400),
                },
            };
        }
        profile
    }

    /// Overrides one endpoint's cost (by route-table index).
    pub fn with_cost(mut self, endpoint: usize, cost: EndpointCost) -> LatencyProfile {
        self.costs[endpoint] = cost;
        self
    }

    /// Overrides the queue configuration.
    pub fn with_queue(mut self, queue: QueueConfig) -> LatencyProfile {
        self.queue = queue;
        self
    }
}

/// The latency verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOutcome {
    /// Model disabled: the request costs nothing.
    Pass,
    /// The request waited `queue_us` then took `service_us` to serve.
    Timed {
        /// Microseconds spent queued before service began.
        queue_us: u64,
        /// Microseconds of service time.
        service_us: u64,
    },
    /// The queue was over its shed threshold; retry when it drains.
    Shed {
        /// Simulated delay until the queue has drained.
        retry_after: SimDuration,
    },
}

/// One FIFO lane: the completion instants (absolute µs) of its admitted,
/// not-yet-finished requests. Arrivals drain finished entries first, so
/// `len()` after a drain *is* the queue depth.
#[derive(Debug, Default)]
struct Lane {
    completions: VecDeque<u64>,
}

impl Lane {
    /// Drops completions at or before `now_us`; returns the depth left.
    fn drain(&mut self, now_us: u64) -> u64 {
        while self.completions.front().is_some_and(|&c| c <= now_us) {
            self.completions.pop_front();
        }
        self.completions.len() as u64
    }

    /// Admits a request arriving at `arrival_us` needing `service_us`,
    /// unless the post-drain depth has reached `shed_depth` (0 = never
    /// shed). Returns the queue wait, or the drain hint on shed.
    fn admit(&mut self, arrival_us: u64, service_us: u64, shed_depth: u64) -> Result<u64, u64> {
        let depth = self.drain(arrival_us);
        let busy_until = self.completions.back().copied().unwrap_or(arrival_us);
        if shed_depth > 0 && depth >= shed_depth {
            return Err(busy_until.saturating_sub(arrival_us));
        }
        let start = busy_until.max(arrival_us);
        self.completions.push_back(start + service_us);
        Ok(start - arrival_us)
    }
}

#[derive(Debug)]
struct LatencyState {
    profile: LatencyProfile,
    /// Per-user lanes ([`QueueMode::PerUser`]).
    lanes: HashMap<UserId, Lane>,
    /// The single instance lane ([`QueueMode::Shared`]).
    shared: Lane,
    /// Local cumulative histogram over [`LATENCY_BOUNDS_US`] (plus an
    /// overflow slot), all endpoints merged — the health probe's p99 is
    /// read from here, never from the (possibly shared) registry.
    buckets: [u64; LATENCY_BOUNDS_US.len() + 1],
    observed: u64,
    /// Registry histograms per endpoint, resolved at enable time — a
    /// disabled model must add zero metric keys.
    histograms: Vec<Histogram>,
    shed_total: Counter,
    /// Local shed count — the accessor must work even when the registry
    /// counter is a no-op (metrics disabled).
    sheds: u64,
}

/// The per-instance latency controller. Disabled by default (one relaxed
/// atomic load per request); [`LatencyControl::enable`] installs a
/// [`LatencyProfile`] and resolves the latency histograms against the
/// instance's metrics registry.
#[derive(Debug)]
pub struct LatencyControl {
    enabled: AtomicBool,
    state: Mutex<LatencyState>,
}

impl Default for LatencyControl {
    fn default() -> Self {
        LatencyControl {
            enabled: AtomicBool::new(false),
            state: Mutex::new(LatencyState {
                profile: LatencyProfile::uniform(0, 0, 0),
                lanes: HashMap::new(),
                shared: Lane::default(),
                buckets: [0; LATENCY_BOUNDS_US.len() + 1],
                observed: 0,
                histograms: Vec::new(),
                shed_total: Counter::noop(),
                sheds: 0,
            }),
        }
    }
}

/// FNV-flavored service-time jitter: deterministic in
/// `(seed, endpoint, arrival second)` — deliberately **not** in the user
/// (see the module docs).
fn jitter(seed: u64, endpoint: usize, second: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    h = (h ^ endpoint as u64).wrapping_mul(0x0000_0100_0000_01b3);
    h = (h ^ second).wrapping_mul(0x0000_0100_0000_01b3);
    h ^= h >> 33;
    h
}

impl LatencyControl {
    /// Installs `profile`, resolves the latency surfaces against `obs`
    /// (`cloud_request_latency_us{endpoint,class}` histograms and the
    /// `cloud_queue_shed_total` counter), and enables the model. All
    /// queues start empty.
    pub fn enable(&self, profile: LatencyProfile, obs: &Obs) {
        let mut state = self.state.lock();
        state.histograms = ROUTES
            .iter()
            .map(|route| (route.label, route.rate_class))
            .chain(std::iter::once(("other", RateClass::Query)))
            .map(|(label, class)| {
                obs.histogram(
                    "cloud_request_latency_us",
                    &[("class", class.label()), ("endpoint", label)],
                    &LATENCY_BOUNDS_US,
                )
            })
            .collect();
        state.shed_total = obs.counter("cloud_queue_shed_total", &[]);
        state.lanes.clear();
        state.shared = Lane::default();
        state.buckets = [0; LATENCY_BOUNDS_US.len() + 1];
        state.observed = 0;
        state.sheds = 0;
        state.profile = profile;
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Disables the model (queues are dropped; already-recorded metric
    /// keys keep their values, like every other registry counter).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
        let mut state = self.state.lock();
        state.lanes.clear();
        state.shared = Lane::default();
    }

    /// Whether the model is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Times one request hitting `endpoint` at simulated instant `now`.
    /// `user` is the *validated* caller — `None` (public or bad-token
    /// requests) skips queueing and pays only the service draw.
    pub fn process(&self, endpoint: usize, user: Option<UserId>, now: SimTime) -> QueueOutcome {
        if !self.is_enabled() {
            return QueueOutcome::Pass;
        }
        let mut state = self.state.lock();
        let second = now.as_seconds();
        let arrival_us = second.saturating_mul(1_000_000);
        let cost = state.profile.costs[endpoint.min(ENDPOINT_COUNT - 1)];
        let service_us =
            cost.base_us + jitter(state.profile.seed, endpoint, second) % (cost.jitter_us + 1);
        let shed_depth = state.profile.queue.shed_depth;
        let admitted = match (state.profile.queue.mode, user) {
            (_, None) => Ok(0),
            (QueueMode::PerUser, Some(user)) => state
                .lanes
                .entry(user)
                .or_default()
                .admit(arrival_us, service_us, shed_depth),
            (QueueMode::Shared, Some(_)) => state.shared.admit(arrival_us, service_us, shed_depth),
        };
        match admitted {
            Ok(queue_us) => {
                let total = queue_us + service_us;
                let slot = LATENCY_BOUNDS_US.partition_point(|&b| b < total);
                state.buckets[slot] += 1;
                state.observed += 1;
                if let Some(histogram) = state.histograms.get(endpoint) {
                    histogram.observe(total);
                }
                QueueOutcome::Timed {
                    queue_us,
                    service_us,
                }
            }
            Err(drain_us) => {
                state.shed_total.inc();
                state.sheds += 1;
                QueueOutcome::Shed {
                    retry_after: SimDuration::from_seconds(drain_us.div_ceil(1_000_000).max(1)),
                }
            }
        }
    }

    /// The health probe's view: `(queue depth, p99 latency µs)` at `now`.
    /// Depth is the count of admitted, unfinished requests (summed over
    /// lanes in [`QueueMode::PerUser`]); p99 comes from the local
    /// cumulative histogram (0 before any observation, the largest bound
    /// is reported for overflow). `(0, 0)` while disabled.
    pub fn health_stats(&self, now: SimTime) -> (u64, u64) {
        if !self.is_enabled() {
            return (0, 0);
        }
        let mut state = self.state.lock();
        let now_us = now.as_seconds().saturating_mul(1_000_000);
        let depth = match state.profile.queue.mode {
            QueueMode::Shared => state.shared.drain(now_us),
            QueueMode::PerUser => {
                let mut depth = 0;
                for lane in state.lanes.values_mut() {
                    depth += lane.drain(now_us);
                }
                depth
            }
        };
        (depth, Self::p99(&state))
    }

    /// Total requests shed so far.
    pub fn shed_count(&self) -> u64 {
        self.state.lock().sheds
    }

    fn p99(state: &LatencyState) -> u64 {
        if state.observed == 0 {
            return 0;
        }
        // ceil(0.99 · observed) without floats.
        let rank = state.observed.saturating_mul(99).div_ceil(100).max(1);
        let mut seen = 0;
        for (slot, count) in state.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return LATENCY_BOUNDS_US
                    .get(slot)
                    .copied()
                    .unwrap_or(LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1]);
            }
        }
        LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_seconds(s)
    }

    fn enabled(profile: LatencyProfile) -> LatencyControl {
        let control = LatencyControl::default();
        control.enable(profile, &Obs::disabled());
        control
    }

    #[test]
    fn disabled_passes_everything() {
        let control = LatencyControl::default();
        assert_eq!(
            control.process(0, Some(UserId(1)), t(5)),
            QueueOutcome::Pass
        );
        assert_eq!(control.health_stats(t(5)), (0, 0));
    }

    #[test]
    fn service_draw_is_deterministic_and_bounded() {
        let control = enabled(LatencyProfile::uniform(7, 1_000, 500));
        let QueueOutcome::Timed {
            queue_us,
            service_us,
        } = control.process(2, None, t(100))
        else {
            panic!("expected a timed outcome");
        };
        assert_eq!(queue_us, 0, "unvalidated requests never queue");
        assert!((1_000..=1_500).contains(&service_us), "{service_us}");
        // Same (seed, endpoint, second) ⇒ same draw.
        let again = enabled(LatencyProfile::uniform(7, 1_000, 500));
        assert_eq!(
            again.process(2, None, t(100)),
            control.process(2, None, t(100))
        );
        // A different seed moves the jitter.
        let other = enabled(LatencyProfile::uniform(8, 1_000, 0));
        let QueueOutcome::Timed { service_us, .. } = other.process(2, None, t(100)) else {
            panic!("expected a timed outcome");
        };
        assert_eq!(service_us, 1_000, "zero jitter is exactly base");
    }

    #[test]
    fn per_user_lanes_queue_independently() {
        let control = enabled(LatencyProfile::uniform(1, 600_000, 0));
        // Two back-to-back requests from one user in the same second: the
        // second waits for the first.
        let QueueOutcome::Timed { queue_us, .. } = control.process(3, Some(UserId(1)), t(10))
        else {
            panic!()
        };
        assert_eq!(queue_us, 0);
        let QueueOutcome::Timed { queue_us, .. } = control.process(3, Some(UserId(1)), t(10))
        else {
            panic!()
        };
        assert_eq!(queue_us, 600_000);
        // A different user's lane is empty.
        let QueueOutcome::Timed { queue_us, .. } = control.process(3, Some(UserId(2)), t(10))
        else {
            panic!()
        };
        assert_eq!(queue_us, 0);
    }

    #[test]
    fn shared_mode_couples_users_and_sheds() {
        let profile = LatencyProfile::uniform(1, 2_000_000, 0).with_queue(QueueConfig {
            mode: QueueMode::Shared,
            shed_depth: 2,
        });
        let control = enabled(profile);
        assert!(matches!(
            control.process(3, Some(UserId(1)), t(0)),
            QueueOutcome::Timed { queue_us: 0, .. }
        ));
        // Second request (other user!) waits behind the first.
        assert!(matches!(
            control.process(3, Some(UserId(2)), t(0)),
            QueueOutcome::Timed {
                queue_us: 2_000_000,
                ..
            }
        ));
        // Third arrival sees depth 2 == shed_depth: shed, with the drain
        // time (4 s of backlog) as the hint.
        let QueueOutcome::Shed { retry_after } = control.process(3, Some(UserId(1)), t(0)) else {
            panic!("expected a shed");
        };
        assert_eq!(retry_after.as_seconds(), 4);
        assert_eq!(control.shed_count(), 1);
        // After the backlog drains, the queue admits again.
        assert!(matches!(
            control.process(3, Some(UserId(1)), t(4)),
            QueueOutcome::Timed { queue_us: 0, .. }
        ));
    }

    #[test]
    fn health_stats_report_depth_and_p99() {
        let control = enabled(LatencyProfile::uniform(1, 400, 0));
        for _ in 0..3 {
            control.process(3, Some(UserId(1)), t(0));
        }
        let (depth, p99) = control.health_stats(t(0));
        assert_eq!(depth, 3, "three unfinished requests in the lane");
        // Latencies are 400, 800, 1200 µs → p99 is the 1200 µs one,
        // reported as its bucket bound.
        assert_eq!(p99, 2_500);
        // After everything drains the depth drops to zero; p99 persists.
        let (depth, p99) = control.health_stats(t(10));
        assert_eq!(depth, 0);
        assert_eq!(p99, 2_500);
    }

    #[test]
    fn enable_resolves_registry_histograms() {
        let obs = Obs::new();
        let control = LatencyControl::default();
        control.enable(LatencyProfile::uniform(1, 300, 0), &obs);
        control.process(4, Some(UserId(1)), t(0));
        let json = obs.metrics_json().unwrap();
        assert!(
            json.contains(
                "cloud_request_latency_us{class=\\\"query\\\",endpoint=\\\"places_list\\\"}"
            ) || json.contains("cloud_request_latency_us"),
            "{json}"
        );
    }

    #[test]
    fn same_schedule_same_outcomes() {
        let run = || {
            let control = enabled(LatencyProfile::uniform(9, 700, 300));
            (0..50u64)
                .map(|i| control.process((i % 21) as usize, Some(UserId((i % 3) as u32)), t(i / 2)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
