//! Batched delta-compressed offload encoding for the GCA discover
//! endpoint.
//!
//! A nightly offload ships a contiguous slice of the device's GSM log.
//! Serialized naively, every observation repeats a full [`CellGlobalId`]
//! (four fields) and an absolute timestamp, even though consecutive
//! samples usually sit seconds apart in the same handful of cells. The
//! batched encoding exploits both regularities:
//!
//! * **Cell dictionary** — each distinct cell appears once, in first-seen
//!   order (the [`Interner`] discipline); per-observation cell references
//!   are dense `u32` symbols into that dictionary.
//! * **Delta timestamps** — the first observation's time is absolute
//!   (`t0`); every later one stores the signed difference from its
//!   predecessor, which JSON renders in a couple of digits instead of ten.
//!
//! Decoding is exact: [`ObservationBatch::decode`] reconstructs the very
//! `Vec<GsmObservation>` that was encoded, field for field, so a cloud
//! absorbing a batched offload reaches a state byte-identical to one fed
//! the plain array. The `start` idempotency key and the server-side
//! watermark seams are untouched — batching only changes how the suffix
//! is spelled on the wire, never what it means.

use pmware_world::intern::Interner;
use pmware_world::tower::NetworkLayer;
use pmware_world::{CellGlobalId, GsmObservation, SimTime};
use serde::{Deserialize, Serialize};

/// A delta-compressed, dictionary-coded slice of a GSM observation
/// stream. Produced by [`ObservationBatch::encode`]; the columns are
/// parallel (all have one entry per observation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationBatch {
    /// Distinct cells in first-seen order; `cell[i]` indexes this table.
    pub cells: Vec<CellGlobalId>,
    /// Absolute time of the first observation, in seconds. Zero when the
    /// batch is empty.
    pub t0: u64,
    /// Signed per-observation delta from the previous timestamp (the
    /// first entry is always zero). Signed so a non-monotonic log still
    /// round-trips exactly.
    pub dt: Vec<i64>,
    /// Per-observation dictionary symbol.
    pub cell: Vec<u32>,
    /// Per-observation radio-access layer.
    pub layer: Vec<NetworkLayer>,
    /// Per-observation signal strength.
    pub rssi_dbm: Vec<f64>,
}

impl ObservationBatch {
    /// Encodes a contiguous observation slice.
    pub fn encode(observations: &[GsmObservation]) -> ObservationBatch {
        let mut cells = Interner::new();
        let mut dt = Vec::with_capacity(observations.len());
        let mut cell = Vec::with_capacity(observations.len());
        let mut layer = Vec::with_capacity(observations.len());
        let mut rssi_dbm = Vec::with_capacity(observations.len());
        let t0 = observations.first().map_or(0, |obs| obs.time.as_seconds());
        let mut prev = t0;
        for obs in observations {
            let t = obs.time.as_seconds();
            dt.push(t.wrapping_sub(prev) as i64);
            prev = t;
            cell.push(cells.intern(&obs.cell));
            layer.push(obs.layer);
            rssi_dbm.push(obs.rssi_dbm);
        }
        ObservationBatch {
            cells: cells.values().to_vec(),
            t0,
            dt,
            cell,
            layer,
            rssi_dbm,
        }
    }

    /// Reconstructs the encoded observations exactly.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed column when the parallel
    /// arrays disagree in length or a symbol escapes the dictionary — a
    /// batch from a confused (or hostile) client must not panic the
    /// server.
    pub fn decode(&self) -> Result<Vec<GsmObservation>, String> {
        let n = self.dt.len();
        if self.cell.len() != n || self.layer.len() != n || self.rssi_dbm.len() != n {
            return Err(format!(
                "ragged batch: dt={} cell={} layer={} rssi={}",
                n,
                self.cell.len(),
                self.layer.len(),
                self.rssi_dbm.len()
            ));
        }
        let mut observations = Vec::with_capacity(n);
        let mut t = self.t0;
        for i in 0..n {
            t = t.wrapping_add(self.dt[i] as u64);
            let cell = *self
                .cells
                .get(self.cell[i] as usize)
                .ok_or_else(|| format!("symbol {} outside dictionary", self.cell[i]))?;
            observations.push(GsmObservation {
                time: SimTime::from_seconds(t),
                cell,
                layer: self.layer[i],
                rssi_dbm: self.rssi_dbm[i],
            });
        }
        Ok(observations)
    }

    /// Number of observations in the batch.
    pub fn len(&self) -> usize {
        self.dt.len()
    }

    /// Whether the batch carries no observations.
    pub fn is_empty(&self) -> bool {
        self.dt.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_world::{CellId, Lac, Plmn};

    fn obs(t: u64, cid: u32, rssi: f64) -> GsmObservation {
        GsmObservation {
            time: SimTime::from_seconds(t),
            cell: CellGlobalId {
                plmn: Plmn { mcc: 262, mnc: 1 },
                lac: Lac(7),
                cell: CellId(cid),
            },
            layer: if cid.is_multiple_of(2) {
                NetworkLayer::G2
            } else {
                NetworkLayer::G3
            },
            rssi_dbm: rssi,
        }
    }

    #[test]
    fn round_trips_exactly() {
        let log = vec![
            obs(60, 10, -71.5),
            obs(120, 10, -70.0),
            obs(180, 11, -88.25),
            obs(240, 10, -69.0),
            obs(360, 12, -90.125),
        ];
        let batch = ObservationBatch::encode(&log);
        assert_eq!(batch.cells.len(), 3, "dictionary holds distinct cells");
        assert_eq!(batch.dt[0], 0);
        assert_eq!(batch.decode().unwrap(), log);
    }

    #[test]
    fn empty_batch_round_trips() {
        let batch = ObservationBatch::encode(&[]);
        assert!(batch.is_empty());
        assert_eq!(batch.decode().unwrap(), Vec::new());
    }

    #[test]
    fn non_monotonic_times_round_trip() {
        let log = vec![obs(600, 1, -60.0), obs(60, 2, -61.0), obs(600, 1, -62.0)];
        let batch = ObservationBatch::encode(&log);
        assert_eq!(batch.decode().unwrap(), log);
    }

    #[test]
    fn serde_round_trips() {
        let log = vec![obs(60, 10, -71.5), obs(75, 11, -80.0)];
        let batch = ObservationBatch::encode(&log);
        let json = serde_json::to_string(&batch).unwrap();
        let back: ObservationBatch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, batch);
        assert_eq!(back.decode().unwrap(), log);
    }

    /// The point of the encoding: a realistic day of samples (one per
    /// minute, a handful of cells) must serialize to well under half the
    /// plain-array JSON. Run with `--nocapture` to see the byte counts.
    #[test]
    fn batched_encoding_halves_the_wire_size() {
        let log: Vec<GsmObservation> = (0..1_440)
            .map(|i| obs(28_800 + i * 60, 10 + (i % 5) as u32, -70.0 - (i % 7) as f64))
            .collect();
        let plain = serde_json::to_string(&log).unwrap().len();
        let batched = serde_json::to_string(&ObservationBatch::encode(&log))
            .unwrap()
            .len();
        println!("wire bytes for 1440 observations: plain={plain} batched={batched}");
        assert!(
            batched * 2 < plain,
            "batched encoding must be under half the plain size ({batched} vs {plain})"
        );
    }

    #[test]
    fn single_sample_batch_round_trips() {
        let log = vec![obs(86_400, 3, -55.5)];
        let batch = ObservationBatch::encode(&log);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.t0, 86_400);
        assert_eq!(batch.dt, vec![0]);
        assert_eq!(batch.cells.len(), 1);
        assert_eq!(batch.decode().unwrap(), log);
    }

    /// Timestamp deltas at the wrapping boundaries of the u64↔i64 cast:
    /// a log straddling `i64::MAX` seconds produces deltas that only
    /// round-trip because both directions use wrapping arithmetic. No
    /// panic, exact reconstruction.
    #[test]
    fn wrapping_boundary_deltas_round_trip() {
        let log = vec![
            obs(u64::MAX - 1, 1, -60.0),
            obs(u64::MAX, 1, -61.0),
            obs(0, 2, -62.0), // wraps forward past u64::MAX
            obs(5, 2, -63.0),
            obs(u64::MAX, 1, -64.0), // wraps backward
        ];
        let batch = ObservationBatch::encode(&log);
        assert_eq!(batch.decode().unwrap(), log);

        // A delta of exactly i64::MIN survives the cast round trip too.
        let far = vec![obs(1 << 63, 3, -50.0), obs(0, 3, -51.0)];
        let batch = ObservationBatch::encode(&far);
        assert_eq!(batch.dt[1], i64::MIN);
        assert_eq!(batch.decode().unwrap(), far);
    }

    /// A hostile batch with extreme column values must return `Err` (or
    /// reconstruct harmlessly), never panic — the server feeds decode
    /// straight from the wire.
    #[test]
    fn hostile_extreme_batches_never_panic() {
        // Dictionary symbol u32::MAX on an otherwise valid batch.
        let mut batch = ObservationBatch::encode(&[obs(60, 1, -60.0)]);
        batch.cell[0] = u32::MAX;
        let err = batch.decode().unwrap_err();
        assert!(err.contains("outside dictionary"), "{err}");

        // Empty dictionary with a non-empty observation column.
        let mut batch = ObservationBatch::encode(&[obs(60, 1, -60.0)]);
        batch.cells.clear();
        assert!(batch.decode().is_err());

        // Extreme t0 and delta columns decode without panicking.
        let mut batch = ObservationBatch::encode(&[obs(0, 1, -60.0), obs(1, 1, -60.0)]);
        batch.t0 = u64::MAX;
        batch.dt = vec![i64::MIN, i64::MAX];
        let decoded = batch.decode().unwrap();
        assert_eq!(decoded.len(), 2);
    }

    #[test]
    fn ragged_batch_is_an_error_not_a_panic() {
        let mut batch = ObservationBatch::encode(&[obs(60, 1, -60.0)]);
        batch.rssi_dbm.clear();
        assert!(batch.decode().is_err());
        let mut batch = ObservationBatch::encode(&[obs(60, 1, -60.0)]);
        batch.cell[0] = 99;
        assert!(batch.decode().is_err());
    }
}
