//! The cloud instance: a middleware stack over shared state.
//!
//! §2.3 of the paper: the cloud instance *"is responsible for storing and
//! managing long-term human mobility patterns, helping mobile service in
//! place/route discovery process, as well as performing advanced analytics
//! and prediction operations"*. The authors ran it as a Django/Apache
//! service on Windows Azure; here it is an in-process server speaking the
//! same REST/JSON shape.
//!
//! [`CloudInstance`] no longer contains any endpoint logic. It is:
//!
//! * **state** — an `Arc<`[`CloudCore`]`>` (token store, user shards, cell
//!   database, GCA config, admission controller, metrics), shared with
//!   every layer;
//! * **the stack** — outage → request metrics → latency queue →
//!   admission control → auth → relocation → shard accounting
//!   ([`crate::layer`]), bottoming out in the route-table dispatcher
//!   ([`crate::router`]);
//! * **construction and accessors** — builders (`with_obs`,
//!   `with_admission`) plus the snapshot views tests and benches read.
//!
//! Concurrency model (unchanged from the pre-stack revisions): per-user
//! state lives in [`SHARD_COUNT`] lock shards keyed by `UserId`, the
//! token registry is behind a read-write lock (validation — the hot path
//! — takes the read side), the cell database is immutable, and the outage
//! flag and token RNG use an atomic and a small mutex. All methods take
//! `&self`; [`SharedCloud`] is the cheap cloneable handle clients hold.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use pmware_algorithms::gca::GcaConfig;
use pmware_algorithms::signature::DiscoveredPlace;
use pmware_obs::Obs;
use pmware_world::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::admission::AdmissionConfig;
use crate::api::{Request, Response};
use crate::auth::{DeviceIdentity, TokenStore, UserId};
use crate::geolocate::CellDatabase;
use crate::latency::LatencyProfile;
use crate::layer::{
    AdmissionLayer, AuthLayer, Layer, Next, OutageLayer, QueueLayer, RelocationLayer,
    RequestMetricsLayer, RouterService, ShardAccountingLayer,
};
use crate::profile::{ContactEntry, MobilityProfile};
use crate::state::{CloudCore, CloudMetrics};
use crate::storage::{StorageConfig, StorageEngine};

pub use crate::state::SHARD_COUNT;

/// The PMWare cloud instance (PCI).
///
/// All methods take `&self`: the instance synchronizes internally (see the
/// module docs) and can be driven from many threads at once through
/// [`SharedCloud`].
///
/// # Examples
///
/// ```
/// use pmware_cloud::{CellDatabase, CloudInstance, Request};
/// use pmware_world::SimTime;
/// use serde_json::json;
///
/// let cloud = CloudInstance::new(CellDatabase::new(), 1);
/// let req = Request::post(
///     "/api/v1/registration",
///     json!({"imei": "350123", "email": "a@example.com"}),
/// );
/// let resp = cloud.handle(&req, SimTime::EPOCH);
/// assert!(resp.is_success());
/// assert!(resp.json()["token"].is_string());
/// ```
#[derive(Debug)]
pub struct CloudInstance {
    core: Arc<CloudCore>,
    layers: Vec<Arc<dyn Layer>>,
    service: RouterService,
}

/// Cloneable, thread-safe handle to a [`CloudInstance`].
///
/// Derefs to the instance, so every `CloudInstance` method is available on
/// the handle directly:
///
/// ```
/// use pmware_cloud::{CellDatabase, CloudInstance, SharedCloud};
///
/// let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::new(), 7));
/// let for_thread = cloud.clone(); // same instance, cheap to clone
/// assert_eq!(cloud.user_count(), 0);
/// assert_eq!(for_thread.user_count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SharedCloud(Arc<CloudInstance>);

impl SharedCloud {
    /// Wraps an instance into a shareable handle.
    pub fn new(instance: CloudInstance) -> Self {
        SharedCloud(Arc::new(instance))
    }
}

impl From<CloudInstance> for SharedCloud {
    fn from(instance: CloudInstance) -> Self {
        SharedCloud::new(instance)
    }
}

impl std::ops::Deref for SharedCloud {
    type Target = CloudInstance;

    fn deref(&self) -> &CloudInstance {
        &self.0
    }
}

impl CloudInstance {
    /// Creates an instance with a 24-hour token TTL.
    pub fn new(cells: CellDatabase, seed: u64) -> Self {
        Self::assemble(CloudCore {
            tokens: RwLock::new(TokenStore::new(SimDuration::from_hours(24))),
            storage: StorageEngine::new(),
            cells,
            gca_config: RwLock::new(GcaConfig::default()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            outage: AtomicBool::new(false),
            admission: Default::default(),
            latency: Default::default(),
            metrics: CloudMetrics::new(),
            relocated: RwLock::new(HashSet::new()),
        })
    }

    /// Builds the layer stack over a core. Order is load-bearing — see
    /// DESIGN.md §5f: outage answers before anything is counted (byte
    /// compatibility with the pre-stack monolith), request metrics sit
    /// above admission so shed 429s stay visible per endpoint, admission
    /// sheds before auth spends effort, and shard accounting attributes
    /// only requests that passed auth.
    fn assemble(core: CloudCore) -> CloudInstance {
        let core = Arc::new(core);
        let layers: Vec<Arc<dyn Layer>> = vec![
            Arc::new(OutageLayer {
                core: Arc::clone(&core),
            }),
            Arc::new(RequestMetricsLayer {
                core: Arc::clone(&core),
            }),
            Arc::new(QueueLayer {
                core: Arc::clone(&core),
            }),
            Arc::new(AdmissionLayer {
                core: Arc::clone(&core),
            }),
            Arc::new(AuthLayer {
                core: Arc::clone(&core),
            }),
            Arc::new(RelocationLayer {
                core: Arc::clone(&core),
            }),
            Arc::new(ShardAccountingLayer {
                core: Arc::clone(&core),
            }),
        ];
        let service = RouterService {
            core: Arc::clone(&core),
        };
        CloudInstance {
            core,
            layers,
            service,
        }
    }

    /// Binds the instance's aggregate counters (per-endpoint requests,
    /// replay counts, analytics cache hits, admission denials) to `obs`,
    /// carrying anything already recorded. Per-shard counts stay private —
    /// see [`crate::state`]. A builder, meant to run before the instance
    /// is wrapped in a [`SharedCloud`]:
    ///
    /// ```
    /// use pmware_cloud::{CellDatabase, CloudInstance, SharedCloud};
    /// use pmware_obs::Obs;
    ///
    /// let obs = Obs::new();
    /// let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::new(), 1).with_obs(&obs));
    /// ```
    pub fn with_obs(self, obs: &Obs) -> CloudInstance {
        let CloudInstance {
            core,
            layers,
            service,
        } = self;
        // The stack holds the only other `Arc`s to the core; drop it so
        // the core can be unwrapped and its metrics rebound.
        drop(layers);
        drop(service);
        let mut core = Arc::try_unwrap(core)
            .expect("with_obs is a builder: call it before sharing the instance");
        let private = core.metrics.private.clone();
        let obs = obs.clone().metrics_or(&private);
        let previous = std::mem::replace(&mut core.metrics, CloudMetrics::resolve(private, obs));
        for (new, old) in core
            .metrics
            .endpoint_requests
            .iter()
            .zip(previous.endpoint_requests.iter())
            .chain(
                core.metrics
                    .admission_denied
                    .iter()
                    .zip(previous.admission_denied.iter()),
            )
        {
            let v = old.get();
            if v > 0 {
                new.set(v);
            }
        }
        for (new, old) in [
            (&core.metrics.replay_discover, &previous.replay_discover),
            (
                &core.metrics.replay_places_sync,
                &previous.replay_places_sync,
            ),
            (
                &core.metrics.replay_routes_sync,
                &previous.replay_routes_sync,
            ),
            (
                &core.metrics.replay_profiles_sync,
                &previous.replay_profiles_sync,
            ),
            (
                &core.metrics.replay_social_sync,
                &previous.replay_social_sync,
            ),
            (&core.metrics.cache_hits, &previous.cache_hits),
            (&core.metrics.cache_misses, &previous.cache_misses),
        ] {
            let v = old.get();
            if v > 0 {
                new.set(v);
            }
        }
        Self::assemble(core)
    }

    /// Enables the deterministic admission controller with `config`, as a
    /// builder. Off by default; see [`CloudInstance::set_admission`].
    pub fn with_admission(self, config: AdmissionConfig) -> CloudInstance {
        self.set_admission(Some(config));
        self
    }

    /// Enables the sim-time latency model with `profile`, as a builder.
    /// Off by default; see [`CloudInstance::set_latency`].
    pub fn with_latency(self, profile: LatencyProfile) -> CloudInstance {
        self.set_latency(Some(profile));
        self
    }

    /// Enables the storage engine with `config`, as a builder. Off by
    /// default; see [`CloudInstance::set_storage`].
    pub fn with_storage(self, config: StorageConfig) -> CloudInstance {
        self.set_storage(Some(config));
        self
    }

    /// Enables (`Some`) or disables (`None`) the storage engine at
    /// runtime: LRU residency under `resident_cap`, the durable WAL and
    /// on-disk snapshots under `store_dir`, and the day-cadence
    /// snapshot+compaction sweep. Enabling binds the
    /// `cloud_store_resident_users` gauge and the eviction/hydration
    /// counters to the instance's registry — call after
    /// [`CloudInstance::with_obs`] so they land in the shared one.
    /// Disabling re-hydrates every parked snapshot back into RAM.
    /// Disabled (the default) the engine is byte-identical to the
    /// historical in-RAM store path.
    pub fn set_storage(&self, config: Option<StorageConfig>) {
        let gca = self.core.gca_config.read().clone();
        self.core
            .storage
            .configure(config, &self.core.metrics.shared, &gca);
    }

    /// Rebuilds an instance from a durable store directory after a crash.
    ///
    /// `config.store_dir` must point at the directory a previous
    /// durable-mode instance wrote. The WAL shard files and parked
    /// snapshots are loaded, every logged registration is replayed (in
    /// identity-key order) to re-mint users and auth state, and the
    /// tokens the dead instance issued are re-adopted so clients' live
    /// sessions keep validating. User *stores* are not rebuilt eagerly:
    /// each hydrates on first touch from its snapshot plus the WAL suffix
    /// — recovery cost is O(users) registrations, not O(history).
    pub fn recover(
        cells: CellDatabase,
        seed: u64,
        config: StorageConfig,
        now: SimTime,
    ) -> CloudInstance {
        let instance = CloudInstance::new(cells, seed);
        instance.set_storage(Some(config));
        instance.core.storage.load_dir();
        instance.core.storage.set_replaying(true);
        let mut adoptions: Vec<(UserId, String, SimTime)> = Vec::new();
        for key in instance.core.storage.recovery_keys() {
            let records = instance.core.storage.records_of(&key);
            let mut registered: Option<UserId> = None;
            let summary = crate::storage::wal::replay_session(
                &records,
                |request| {
                    let response = instance.handle(request, now);
                    if let crate::payload::Payload::Registered { user, .. } = &response.body {
                        registered = Some(*user);
                    }
                    response
                },
                // Skip every non-registration record: stores hydrate
                // lazily from snapshot + WAL suffix on first touch.
                u64::MAX,
                |_, _| {},
            );
            if let Some(user) = registered {
                instance.core.storage.rebind_recovered(user, &key);
                for (token, expires_at) in summary.grants {
                    adoptions.push((user, token, expires_at));
                }
            }
        }
        instance.core.storage.set_replaying(false);
        // Graft the logged token grants only after *every* key has
        // replayed: replayed registrations re-mint from the original
        // seed, so a mint later in the loop can reproduce the very token
        // string a grant already bound — grants must have the last word.
        {
            let mut tokens = instance.core.tokens.write();
            for (user, token, expires_at) in adoptions {
                tokens.adopt(user, &token, expires_at);
            }
        }
        instance
    }

    /// Stores currently resident in RAM (all touched users while the
    /// storage engine is disabled).
    pub fn resident_users(&self) -> usize {
        self.core.storage.resident_users()
    }

    /// Whether `user`'s store is resident in RAM (as opposed to parked in
    /// a snapshot). Always true for a touched user while the storage
    /// engine is disabled.
    pub fn is_resident(&self, user: UserId) -> bool {
        self.core.storage.is_resident(user)
    }

    /// Users evicted to snapshots so far.
    pub fn eviction_count(&self) -> u64 {
        self.core.storage.eviction_count()
    }

    /// Stores hydrated from snapshots/WAL so far.
    pub fn hydration_count(&self) -> u64 {
        self.core.storage.hydration_count()
    }

    /// Enables (`Some`) or disables (`None`) the sim-time latency model
    /// at runtime. Enabling resets all queues and binds the
    /// `cloud_request_latency_us{endpoint,class}` histograms and the
    /// `cloud_queue_shed_total` counter to the instance's registry — call
    /// after [`CloudInstance::with_obs`] so they land in the shared one.
    /// Disabled (the default) the model adds zero metric keys and zero
    /// cost beyond one atomic load per request.
    pub fn set_latency(&self, profile: Option<LatencyProfile>) {
        match profile {
            Some(profile) => self.core.latency.enable(profile, &self.core.metrics.shared),
            None => self.core.latency.disable(),
        }
    }

    /// The instance's current queue depth (admitted, unfinished requests)
    /// at simulated instant `now`; 0 while the latency model is disabled.
    pub fn queue_depth(&self, now: SimTime) -> u64 {
        self.core.latency.health_stats(now).0
    }

    /// p99 request latency observed so far, in microseconds (bucket
    /// bound); 0 while the latency model is disabled.
    pub fn latency_p99_us(&self) -> u64 {
        // Depth needs a clock; p99 does not — pass the epoch and take
        // only the quantile half of the pair.
        self.core.latency.health_stats(SimTime::EPOCH).1
    }

    /// Requests shed by the queue layer so far.
    pub fn queue_shed_count(&self) -> u64 {
        self.core.latency.shed_count()
    }

    /// Enables (`Some`) or disables (`None`) admission control at
    /// runtime. Enabling resets all token buckets; requests over budget
    /// are answered 429 with a `retry_after_s` hint.
    pub fn set_admission(&self, config: Option<AdmissionConfig>) {
        match config {
            Some(config) => self.core.admission.enable(config),
            None => self.core.admission.disable(),
        }
    }

    /// Fault injection for tests and resilience experiments: while an
    /// outage is active every request fails with 503, as if the Azure
    /// instance were unreachable. The phone must keep working (§2.3.1's
    /// offload has a local fallback).
    pub fn set_outage(&self, outage: bool) {
        self.core.outage.store(outage, Ordering::SeqCst);
    }

    /// Whether an outage is currently injected.
    pub fn outage(&self) -> bool {
        self.core.outage()
    }

    /// Overrides the GCA configuration used by the discovery offload.
    ///
    /// Per-user incremental engines were built under the old parameters,
    /// so they are dropped; each user's next offload starts a fresh
    /// engine (intended as a deployment-setup call, not a hot reconfig).
    pub fn set_gca_config(&self, config: GcaConfig) {
        *self.core.gca_config.write() = config;
        // The config write lock is released before any user lock is taken
        // (same lock-order rule as the discover endpoint). The engine
        // invalidates resident *and* parked (snapshotted) engines.
        self.core.storage.invalidate_gca();
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.core.tokens.read().user_count()
    }

    /// Number of per-user lock shards.
    pub fn shard_count(&self) -> usize {
        SHARD_COUNT
    }

    /// Authenticated requests handled so far, broken down by shard — a
    /// snapshot view over the metrics registry.
    ///
    /// Unauthenticated `/api/v1/registration` requests never reach a
    /// shard and are **not** counted here; since they still cost the
    /// server work, they are counted in the metrics registry under
    /// `cloud_requests_total{endpoint="register"}`.
    pub fn shard_request_counts(&self) -> Vec<u64> {
        self.core
            .metrics
            .shard_requests
            .iter()
            .map(|c| c.get())
            .collect()
    }

    /// Total authenticated requests handled so far. Registrations are
    /// excluded — see [`CloudInstance::shard_request_counts`].
    pub fn total_requests(&self) -> u64 {
        self.shard_request_counts().iter().sum()
    }

    /// Admission-control denials so far, summed over rate classes.
    pub fn admission_denials(&self) -> u64 {
        self.core
            .metrics
            .admission_denied
            .iter()
            .map(|c| c.get())
            .sum()
    }

    /// Observations held by `user`'s discovery engine. The chaos suite's
    /// duplicate-absorb invariant: this never exceeds the client's own
    /// GSM log length, no matter how often offloads are retried,
    /// duplicated, or reordered.
    pub fn observation_count(&self, user: UserId) -> usize {
        let store = self.core.store_of(user);
        let store = store.lock();
        store
            .gca
            .as_ref()
            .map_or(0, |engine| engine.observation_count())
    }

    /// Social encounters stored for `user` — the dual invariant for
    /// contacts (each encounter is absorbed exactly once).
    pub fn contact_count(&self, user: UserId) -> usize {
        self.core.store_of(user).lock().contacts.len()
    }

    /// Snapshot of `user`'s stored contacts.
    pub fn contacts_of(&self, user: UserId) -> Vec<ContactEntry> {
        self.core.store_of(user).lock().contacts.clone()
    }

    /// Snapshot of `user`'s stored places.
    pub fn places_of(&self, user: UserId) -> Vec<DiscoveredPlace> {
        self.core.store_of(user).lock().places.clone()
    }

    /// Snapshot of `user`'s stored day profiles, ordered by day.
    pub fn profiles_of(&self, user: UserId) -> Vec<MobilityProfile> {
        let store = self.core.store_of(user);
        let store = store.lock();
        store.history.iter().cloned().collect()
    }

    /// Marks `user`'s state as migrated away: the relocation layer will
    /// answer their authenticated requests with
    /// [`crate::STATUS_MISDIRECTED`] until (if ever) the user is adopted
    /// back. Driven by the federation [`crate::topology::TopologyRouter`]
    /// at failover/drain time.
    pub fn mark_relocated(&self, user: UserId) {
        self.core.relocated.write().insert(user);
    }

    /// Transplants a live client session onto this instance after a
    /// migration replay: looks up the user the replayed WAL registered
    /// under `identity`, grafts the client's current `token` onto it, and
    /// clears any relocation mark (fail-back). Returns the local
    /// [`UserId`] now answering for the session, or `None` if no replay
    /// registered the identity here.
    pub fn adopt_session(
        &self,
        identity: &DeviceIdentity,
        token: &str,
        expires_at: SimTime,
    ) -> Option<UserId> {
        let user = {
            let mut tokens = self.core.tokens.write();
            let user = tokens.user_of(identity)?;
            tokens.adopt(user, token, expires_at);
            user
        };
        self.core.relocated.write().remove(&user);
        Some(user)
    }

    /// Handles one request at simulated instant `now` — the single entry
    /// point, exactly like an HTTP dispatcher: the request runs down the
    /// middleware stack into the route-table dispatcher.
    pub fn handle(&self, request: &Request, now: SimTime) -> Response {
        // Storage-engine clock tick (accessor-path LRU stamps) and the
        // day-cadence compaction hook; an atomic store + load when the
        // engine is disabled.
        self.core.storage.tick(now);
        Next::new(&self.layers, &self.service).run(request, now)
    }
}

// The once-empty ProfileHistory fallback of earlier revisions is gone:
// `store_of` creates a (default) store on first touch, so analytics
// endpoints always have a history to read.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CloudInstance>();
    assert_send_sync::<SharedCloud>();
};
