//! The cloud instance: endpoint routing and per-user storage.
//!
//! [`CloudInstance`] is internally synchronized so that many simulated
//! phones can talk to one server **concurrently**, exactly like the real
//! multi-tenant Azure deployment of §2.3:
//!
//! * per-user state lives in [`SHARD_COUNT`] lock shards keyed by
//!   [`UserId`], so requests from different users proceed in parallel and
//!   only requests for the *same* user serialize;
//! * the token registry is behind a read-write lock (validation — the hot
//!   path — takes the read side);
//! * the cell database is immutable after construction and needs no lock;
//! * fault injection and the token RNG use an atomic flag and a small
//!   mutex respectively.
//!
//! [`SharedCloud`] is the cheap, cloneable handle (`Arc` under the hood)
//! that clients hold; it is `Send + Sync` and replaces the external
//! `Arc<Mutex<CloudInstance>>` wrapper of earlier revisions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use pmware_obs::{Counter, Obs};
use pmware_algorithms::gca::{GcaConfig, IncrementalGca};
use pmware_algorithms::route::{CanonicalRoute, RouteStore};
use pmware_algorithms::signature::{DiscoveredPlace, DiscoveredPlaceId};
use pmware_world::{CellGlobalId, CellId, GsmObservation, Lac, Plmn, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Deserialize;
use serde_json::json;
#[cfg(test)]
use serde_json::Value;

use crate::analytics::ProfileHistory;
use crate::api::{Method, Request, Response};
use crate::auth::{DeviceIdentity, TokenStore, UserId};
use crate::geolocate::CellDatabase;
use crate::predict::{self, MarkovPredictor};
use crate::profile::{ContactEntry, MobilityProfile};

/// Number of per-user lock shards.
pub const SHARD_COUNT: usize = 16;

/// Per-user server-side state.
#[derive(Debug)]
struct UserStore {
    places: Vec<DiscoveredPlace>,
    routes: RouteStore,
    history: ProfileHistory,
    contacts: Vec<ContactEntry>,
    /// Persistent incremental discovery engine: each offload folds its
    /// suffix in instead of re-clustering (and forgetting) from scratch.
    /// Created lazily on first offload with the instance's GCA config.
    gca: Option<IncrementalGca>,
    /// Memoized Markov model, tagged with the [`ProfileHistory`]
    /// generation it was trained at; a profile upsert bumps the
    /// generation, which invalidates this entry on the next query.
    next_place: Option<(u64, MarkovPredictor)>,
    /// Observations absorbed through the sequenced discover path: a
    /// duplicated or re-sent offload whose `start` falls behind this
    /// watermark has its already-seen prefix skipped instead of being
    /// double-absorbed.
    absorbed_upto: u64,
    /// Contacts absorbed through the sequenced social sync; the dual of
    /// `absorbed_upto` for encounters.
    contacts_absorbed: u64,
    /// Highest sync sequence accepted per profile day: a stale (reordered
    /// or duplicated) upsert is ignored rather than re-applied.
    profile_seq: HashMap<u64, u64>,
    /// Highest sequence accepted for the places full-replacement sync.
    places_seq: u64,
    /// Highest sequence accepted for the routes full-replacement sync.
    routes_seq: u64,
}

impl Default for UserStore {
    fn default() -> Self {
        UserStore {
            places: Vec::new(),
            routes: RouteStore::new(0.5),
            history: ProfileHistory::new(),
            contacts: Vec::new(),
            gca: None,
            next_place: None,
            absorbed_upto: 0,
            contacts_absorbed: 0,
            profile_seq: HashMap::new(),
            places_seq: 0,
            routes_seq: 0,
        }
    }
}

/// One lock shard: the users whose id hashes here. The per-shard request
/// counter that used to live here moved to the metrics registry (see
/// [`CloudMetrics`]).
#[derive(Debug, Default)]
struct Shard {
    users: RwLock<HashMap<UserId, Arc<Mutex<UserStore>>>>,
}

/// Stable endpoint labels, the `endpoint` metric dimension. One entry per
/// routed endpoint family plus `register` (unauthenticated) and `other`
/// (unrouted paths) — bounded cardinality by construction.
const ENDPOINT_LABELS: [&str; 21] = [
    "register",
    "token_refresh",
    "places_discover",
    "places_sync",
    "places_list",
    "places_label",
    "routes_sync",
    "routes_list",
    "routes_query",
    "profiles_sync",
    "profiles_get",
    "social_sync",
    "social_query",
    "geolocate",
    "geolocate_signature",
    "analytics_arrival",
    "analytics_next_visit",
    "analytics_frequency",
    "analytics_activity",
    "analytics_next_place",
    "other",
];

/// Index of an endpoint label in [`ENDPOINT_LABELS`].
fn endpoint_index(method: Method, path: &str) -> usize {
    match (method, path) {
        (Method::Post, "/api/v1/registration") => 0,
        (Method::Post, "/api/v1/token/refresh") => 1,
        (Method::Post, "/api/v1/places/discover") => 2,
        (Method::Post, "/api/v1/places/sync") => 3,
        (Method::Get, "/api/v1/places") => 4,
        (Method::Post, "/api/v1/places/label") => 5,
        (Method::Post, "/api/v1/routes/sync") => 6,
        (Method::Get, "/api/v1/routes") => 7,
        (Method::Post, "/api/v1/routes/query") => 8,
        (Method::Post, "/api/v1/profiles/sync") => 9,
        (Method::Get, p) if p.starts_with("/api/v1/profiles/") => 10,
        (Method::Post, "/api/v1/social/sync") => 11,
        (Method::Post, "/api/v1/social/query") => 12,
        (Method::Post, "/api/v1/misc/geolocate") => 13,
        (Method::Post, "/api/v1/misc/geolocate_signature") => 14,
        (Method::Post, "/api/v1/analytics/arrival") => 15,
        (Method::Post, "/api/v1/analytics/next_visit") => 16,
        (Method::Post, "/api/v1/analytics/frequency") => 17,
        (Method::Post, "/api/v1/analytics/activity") => 18,
        (Method::Post, "/api/v1/analytics/next_place") => 19,
        _ => ENDPOINT_LABELS.len() - 1,
    }
}

/// Registry-backed cloud counters.
///
/// Two registries are involved on purpose. Per-**endpoint** requests,
/// idempotent-replay counts, and the analytics cache hit/miss counters
/// are order-independent aggregates, so they may bind to a study-wide
/// shared registry via [`CloudInstance::with_obs`]. Per-**shard** counts
/// stay in the instance's private registry always: the user-id → shard
/// mapping depends on registration order, which races across thread
/// schedules, and admitting it into a shared snapshot would break the
/// byte-identical determinism guarantee.
#[derive(Debug)]
struct CloudMetrics {
    /// Private always-on registry backing the legacy snapshot views.
    private: Obs,
    shard_requests: Vec<Counter>,
    /// Indexed by [`endpoint_index`].
    endpoint_requests: Vec<Counter>,
    replay_discover: Counter,
    replay_places_sync: Counter,
    replay_routes_sync: Counter,
    replay_profiles_sync: Counter,
    replay_social_sync: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    /// Wall-clock latency per endpoint, bench builds only.
    #[cfg(feature = "wallclock")]
    endpoint_nanos: Vec<pmware_obs::Histogram>,
}

impl CloudMetrics {
    fn new() -> CloudMetrics {
        let private = Obs::new().for_actor("cloud");
        Self::resolve(private.clone(), private)
    }

    fn resolve(private: Obs, obs: Obs) -> CloudMetrics {
        let shard_requests = (0..SHARD_COUNT)
            .map(|i| {
                let shard = format!("{i:02}");
                private.counter("cloud_shard_requests_total", &[("shard", &shard)])
            })
            .collect();
        let endpoint_requests = ENDPOINT_LABELS
            .iter()
            .map(|label| obs.counter("cloud_requests_total", &[("endpoint", label)]))
            .collect();
        #[cfg(feature = "wallclock")]
        let endpoint_nanos = ENDPOINT_LABELS
            .iter()
            .map(|label| {
                obs.histogram(
                    "cloud_endpoint_nanos",
                    &[("endpoint", label)],
                    &pmware_obs::profiling::NANO_BOUNDS,
                )
            })
            .collect();
        CloudMetrics {
            shard_requests,
            endpoint_requests,
            replay_discover: obs.counter("cloud_replays_total", &[("endpoint", "places_discover")]),
            replay_places_sync: obs.counter("cloud_replays_total", &[("endpoint", "places_sync")]),
            replay_routes_sync: obs.counter("cloud_replays_total", &[("endpoint", "routes_sync")]),
            replay_profiles_sync: obs
                .counter("cloud_replays_total", &[("endpoint", "profiles_sync")]),
            replay_social_sync: obs.counter("cloud_replays_total", &[("endpoint", "social_sync")]),
            cache_hits: obs.counter("cloud_analytics_cache_total", &[("result", "hit")]),
            cache_misses: obs.counter("cloud_analytics_cache_total", &[("result", "miss")]),
            #[cfg(feature = "wallclock")]
            endpoint_nanos,
            private,
        }
    }
}

/// The PMWare cloud instance (PCI).
///
/// All methods take `&self`: the instance synchronizes internally (see the
/// module docs) and can be driven from many threads at once through
/// [`SharedCloud`].
///
/// # Examples
///
/// ```
/// use pmware_cloud::{CellDatabase, CloudInstance, Request};
/// use pmware_world::SimTime;
/// use serde_json::json;
///
/// let cloud = CloudInstance::new(CellDatabase::new(), 1);
/// let req = Request::post(
///     "/api/v1/registration",
///     json!({"imei": "350123", "email": "a@example.com"}),
/// );
/// let resp = cloud.handle(&req, SimTime::EPOCH);
/// assert!(resp.is_success());
/// assert!(resp.body["token"].is_string());
/// ```
#[derive(Debug)]
pub struct CloudInstance {
    tokens: RwLock<TokenStore>,
    shards: Vec<Shard>,
    cells: CellDatabase,
    gca_config: RwLock<GcaConfig>,
    rng: Mutex<StdRng>,
    outage: AtomicBool,
    metrics: CloudMetrics,
}

/// Cloneable, thread-safe handle to a [`CloudInstance`].
///
/// Derefs to the instance, so every `CloudInstance` method is available on
/// the handle directly:
///
/// ```
/// use pmware_cloud::{CellDatabase, CloudInstance, SharedCloud};
///
/// let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::new(), 7));
/// let for_thread = cloud.clone(); // same instance, cheap to clone
/// assert_eq!(cloud.user_count(), 0);
/// assert_eq!(for_thread.user_count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SharedCloud(Arc<CloudInstance>);

impl SharedCloud {
    /// Wraps an instance into a shareable handle.
    pub fn new(instance: CloudInstance) -> Self {
        SharedCloud(Arc::new(instance))
    }
}

impl From<CloudInstance> for SharedCloud {
    fn from(instance: CloudInstance) -> Self {
        SharedCloud::new(instance)
    }
}

impl std::ops::Deref for SharedCloud {
    type Target = CloudInstance;

    fn deref(&self) -> &CloudInstance {
        &self.0
    }
}

#[derive(Deserialize)]
struct RegistrationBody {
    imei: String,
    email: String,
}

#[derive(Deserialize)]
struct DiscoverBody {
    observations: Vec<GsmObservation>,
    /// Stream offset of `observations[0]` in the client's full GSM log.
    /// When present the endpoint is idempotent: already-absorbed prefixes
    /// are skipped. Absent for legacy (unsequenced) clients.
    #[serde(default)]
    start: Option<u64>,
}

#[derive(Deserialize)]
struct SyncPlacesBody {
    places: Vec<DiscoveredPlace>,
    /// Monotonic client sync sequence; a stale full replacement (reordered
    /// behind a newer one) is ignored.
    #[serde(default)]
    seq: Option<u64>,
}

#[derive(Deserialize)]
struct LabelBody {
    place: DiscoveredPlaceId,
    label: String,
}

#[derive(Deserialize)]
struct SyncRoutesBody {
    routes: Vec<CanonicalRoute>,
    /// Monotonic client sync sequence (see [`SyncPlacesBody::seq`]).
    #[serde(default)]
    seq: Option<u64>,
}

#[derive(Deserialize)]
struct RouteQueryBody {
    from: DiscoveredPlaceId,
    to: DiscoveredPlaceId,
}

#[derive(Deserialize)]
struct SyncProfileBody {
    profile: MobilityProfile,
    /// Monotonic client sync sequence; an older version of the same day
    /// arriving late (reorder) or twice (duplicate) is ignored, so the
    /// history generation only moves for genuinely new data.
    #[serde(default)]
    seq: Option<u64>,
}

#[derive(Deserialize)]
struct SyncContactsBody {
    contacts: Vec<ContactEntry>,
    /// Stream offset of `contacts[0]` in the client's encounter stream.
    /// When present the endpoint deduplicates re-sent prefixes and the
    /// response carries `acked_upto` so the client can drain its buffer.
    #[serde(default)]
    first_seq: Option<u64>,
}

#[derive(Deserialize)]
struct SocialQueryBody {
    place: Option<DiscoveredPlaceId>,
}

#[derive(Deserialize)]
struct GeolocateBody {
    mcc: u16,
    mnc: u16,
    lac: u16,
    cid: u32,
}

#[derive(Deserialize)]
struct GeolocateSignatureBody {
    cells: Vec<CellGlobalId>,
}

#[derive(Deserialize)]
struct ArrivalBody {
    place: DiscoveredPlaceId,
    window: Option<(u64, u64)>,
}

#[derive(Deserialize)]
struct NextVisitBody {
    place: DiscoveredPlaceId,
    now: SimTime,
}

#[derive(Deserialize)]
struct PlaceOnlyBody {
    place: DiscoveredPlaceId,
}

impl CloudInstance {
    /// Creates an instance with a 24-hour token TTL.
    pub fn new(cells: CellDatabase, seed: u64) -> Self {
        CloudInstance {
            tokens: RwLock::new(TokenStore::new(SimDuration::from_hours(24))),
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            cells,
            gca_config: RwLock::new(GcaConfig::default()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            outage: AtomicBool::new(false),
            metrics: CloudMetrics::new(),
        }
    }

    /// Binds the instance's aggregate counters (per-endpoint requests,
    /// replay counts, analytics cache hits) to `obs`, carrying anything
    /// already recorded. Per-shard counts stay private — see
    /// [`CloudMetrics`]. A builder, meant to run before the instance is
    /// wrapped in a [`SharedCloud`]:
    ///
    /// ```
    /// use pmware_cloud::{CellDatabase, CloudInstance, SharedCloud};
    /// use pmware_obs::Obs;
    ///
    /// let obs = Obs::new();
    /// let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::new(), 1).with_obs(&obs));
    /// ```
    pub fn with_obs(mut self, obs: &Obs) -> CloudInstance {
        let private = self.metrics.private.clone();
        let obs = obs.clone().metrics_or(&private);
        let previous = std::mem::replace(&mut self.metrics, CloudMetrics::resolve(private, obs));
        for (new, old) in self
            .metrics
            .endpoint_requests
            .iter()
            .zip(previous.endpoint_requests.iter())
        {
            let v = old.get();
            if v > 0 {
                new.set(v);
            }
        }
        for (new, old) in [
            (&self.metrics.replay_discover, &previous.replay_discover),
            (&self.metrics.replay_places_sync, &previous.replay_places_sync),
            (&self.metrics.replay_routes_sync, &previous.replay_routes_sync),
            (&self.metrics.replay_profiles_sync, &previous.replay_profiles_sync),
            (&self.metrics.replay_social_sync, &previous.replay_social_sync),
            (&self.metrics.cache_hits, &previous.cache_hits),
            (&self.metrics.cache_misses, &previous.cache_misses),
        ] {
            let v = old.get();
            if v > 0 {
                new.set(v);
            }
        }
        self
    }

    /// Fault injection for tests and resilience experiments: while an
    /// outage is active every request fails with 503, as if the Azure
    /// instance were unreachable. The phone must keep working (§2.3.1's
    /// offload has a local fallback).
    pub fn set_outage(&self, outage: bool) {
        self.outage.store(outage, Ordering::SeqCst);
    }

    /// Whether an outage is currently injected.
    pub fn outage(&self) -> bool {
        self.outage.load(Ordering::SeqCst)
    }

    /// Overrides the GCA configuration used by the discovery offload.
    ///
    /// Per-user incremental engines were built under the old parameters,
    /// so they are dropped; each user's next offload starts a fresh
    /// engine (intended as a deployment-setup call, not a hot reconfig).
    pub fn set_gca_config(&self, config: GcaConfig) {
        *self.gca_config.write() = config;
        // The config write lock is released before any user lock is taken
        // (same lock-order rule as the discover endpoint).
        for shard in &self.shards {
            let users: Vec<_> = shard.users.read().values().cloned().collect();
            for store in users {
                store.lock().gca = None;
            }
        }
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.tokens.read().user_count()
    }

    /// Number of per-user lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Authenticated requests handled so far, broken down by shard — a
    /// snapshot view over the metrics registry.
    ///
    /// Unauthenticated `/api/v1/registration` requests never reach a
    /// shard and are **not** counted here; since they still cost the
    /// server work, they are counted in the metrics registry under
    /// `cloud_requests_total{endpoint="register"}`.
    pub fn shard_request_counts(&self) -> Vec<u64> {
        self.metrics.shard_requests.iter().map(|c| c.get()).collect()
    }

    /// Total authenticated requests handled so far. Registrations are
    /// excluded — see [`CloudInstance::shard_request_counts`].
    pub fn total_requests(&self) -> u64 {
        self.shard_request_counts().iter().sum()
    }

    /// Observations held by `user`'s discovery engine. The chaos suite's
    /// duplicate-absorb invariant: this never exceeds the client's own
    /// GSM log length, no matter how often offloads are retried,
    /// duplicated, or reordered.
    pub fn observation_count(&self, user: UserId) -> usize {
        let store = self.store_of(user);
        let store = store.lock();
        store.gca.as_ref().map_or(0, |engine| engine.observation_count())
    }

    /// Social encounters stored for `user` — the dual invariant for
    /// contacts (each encounter is absorbed exactly once).
    pub fn contact_count(&self, user: UserId) -> usize {
        self.store_of(user).lock().contacts.len()
    }

    /// Snapshot of `user`'s stored contacts.
    pub fn contacts_of(&self, user: UserId) -> Vec<ContactEntry> {
        self.store_of(user).lock().contacts.clone()
    }

    /// Snapshot of `user`'s stored places.
    pub fn places_of(&self, user: UserId) -> Vec<DiscoveredPlace> {
        self.store_of(user).lock().places.clone()
    }

    /// Snapshot of `user`'s stored day profiles, ordered by day.
    pub fn profiles_of(&self, user: UserId) -> Vec<MobilityProfile> {
        let store = self.store_of(user);
        let store = store.lock();
        store.history.iter().cloned().collect()
    }

    /// The shard a user's state lives in.
    fn shard(&self, user: UserId) -> &Shard {
        &self.shards[user.0 as usize % self.shards.len()]
    }

    /// The per-user store, creating it if absent. Fast path is a shard
    /// read lock; the write lock is only taken on first touch.
    fn store_of(&self, user: UserId) -> Arc<Mutex<UserStore>> {
        let shard = self.shard(user);
        if let Some(store) = shard.users.read().get(&user) {
            return store.clone();
        }
        shard
            .users
            .write()
            .entry(user)
            .or_insert_with(|| Arc::new(Mutex::new(UserStore::default())))
            .clone()
    }

    /// Handles one request at simulated instant `now` — the single entry
    /// point, exactly like an HTTP dispatcher.
    pub fn handle(&self, request: &Request, now: SimTime) -> Response {
        if self.outage() {
            return Response { status: 503, body: json!({"error": "service unavailable"}) };
        }
        let path = request.path.as_str();
        let endpoint = endpoint_index(request.method, path);
        self.metrics.endpoint_requests[endpoint].inc();
        #[cfg(feature = "wallclock")]
        let timer = pmware_obs::profiling::WallTimer::start();
        let response = self.route(request, path, now);
        #[cfg(feature = "wallclock")]
        timer.record(&self.metrics.endpoint_nanos[endpoint]);
        response
    }

    /// Routes one request (everything in [`CloudInstance::handle`] past
    /// the accounting preamble).
    fn route(&self, request: &Request, path: &str, now: SimTime) -> Response {
        // Unauthenticated endpoints.
        if let (Method::Post, "/api/v1/registration") = (request.method, path) {
            return self.register(request, now);
        }

        // Everything else requires a valid token.
        let Some(token) = request.token.as_deref() else {
            return Response::unauthorized("missing bearer token");
        };
        let Some(user) = self.tokens.read().validate(token, now) else {
            return Response::unauthorized("invalid or expired token");
        };
        self.metrics.shard_requests[user.0 as usize % self.shards.len()].inc();

        match (request.method, path) {
            (Method::Post, "/api/v1/token/refresh") => {
                let refreshed = self
                    .tokens
                    .write()
                    .refresh(token, now, &mut *self.rng.lock());
                match refreshed {
                    Some(t) => Response::ok(json!({
                        "token": t.token,
                        "expires_at": t.expires_at,
                    })),
                    None => Response::unauthorized("token not refreshable"),
                }
            }
            (Method::Post, "/api/v1/places/discover") => {
                self.with_body::<DiscoverBody>(request, |body| {
                    // Clone the config before taking the user lock (lock
                    // order: config lock is never held across a store
                    // lock). Absorbing under the user lock only serializes
                    // this user's own requests — other users live behind
                    // other mutexes.
                    let config = self.gca_config.read().clone();
                    let store = self.store_of(user);
                    let mut store = store.lock();
                    match body.start {
                        Some(start) => {
                            // Sequenced offload: `start` is the batch's
                            // offset in the client's observation stream.
                            // A duplicated or retried delivery re-sends a
                            // prefix the engine already absorbed — skip
                            // it; only the unseen tail is folded in. A
                            // start past the watermark means the server
                            // lost its engine (config reset): restart
                            // from this batch, which is authoritative.
                            let len = body.observations.len() as u64;
                            if start > store.absorbed_upto || store.gca.is_none() {
                                store.gca = Some(IncrementalGca::new(config));
                                store.absorbed_upto = start;
                            }
                            let skip = (store.absorbed_upto - start) as usize;
                            if skip > 0 {
                                self.metrics.replay_discover.inc();
                            }
                            if (skip as u64) < len {
                                store.absorbed_upto = start + len;
                                let engine =
                                    store.gca.as_mut().expect("engine ensured above");
                                engine.absorb(&body.observations[skip..]);
                                store.places = engine.places().places;
                            }
                        }
                        None => {
                            // Legacy unsequenced offload: a batch that
                            // rewinds behind the absorbed stream means
                            // the client restarted or re-sent history —
                            // start over from exactly this batch.
                            // Otherwise fold the suffix into the
                            // accumulated engine.
                            let rewinds = match (&store.gca, body.observations.first()) {
                                (Some(engine), Some(first)) => {
                                    engine.last_time().is_some_and(|t| first.time < t)
                                }
                                _ => false,
                            };
                            if rewinds || store.gca.is_none() {
                                store.gca = Some(IncrementalGca::new(config));
                                store.absorbed_upto = 0;
                            }
                            store.absorbed_upto += body.observations.len() as u64;
                            let engine = store.gca.as_mut().expect("engine ensured above");
                            engine.absorb(&body.observations);
                            store.places = engine.places().places;
                        }
                    }
                    Response::ok(json!({
                        "places": store.places,
                        "absorbed_upto": store.absorbed_upto,
                    }))
                })
            }
            (Method::Post, "/api/v1/places/sync") => {
                self.with_body::<SyncPlacesBody>(request, |body| {
                    let store = self.store_of(user);
                    let mut store = store.lock();
                    // A full replacement that was reordered behind a newer
                    // one (or delivered twice) must not clobber it.
                    let stale =
                        body.seq.is_some_and(|seq| seq <= store.places_seq);
                    if stale {
                        self.metrics.replay_places_sync.inc();
                    }
                    if !stale {
                        store.places = body.places;
                        if let Some(seq) = body.seq {
                            store.places_seq = seq;
                        }
                    }
                    Response::ok(json!({ "stored": store.places.len(), "stale": stale }))
                })
            }
            (Method::Get, "/api/v1/places") => {
                let store = self.store_of(user);
                let places = store.lock().places.clone();
                Response::ok(json!({ "places": places }))
            }
            (Method::Post, "/api/v1/places/label") => {
                self.with_body::<LabelBody>(request, |body| {
                    let store = self.store_of(user);
                    let mut store = store.lock();
                    match store.places.iter_mut().find(|p| p.id == body.place) {
                        Some(place) => {
                            place.label = Some(body.label);
                            Response::ok(json!({ "labelled": place.id }))
                        }
                        None => Response::not_found("unknown place"),
                    }
                })
            }
            (Method::Post, "/api/v1/routes/sync") => {
                self.with_body::<SyncRoutesBody>(request, |body| {
                    {
                        let store = self.store_of(user);
                        let store = store.lock();
                        if body.seq.is_some_and(|seq| seq <= store.routes_seq) {
                            self.metrics.replay_routes_sync.inc();
                            return Response::ok(json!({
                                "stored": store.routes.routes().len(),
                                "stale": true,
                            }));
                        }
                    }
                    let mut fresh = RouteStore::new(0.5);
                    for route in body.routes {
                        for start in &route.traversals {
                            let _ = fresh.record(
                                pmware_algorithms::route::RouteObservation {
                                    from: route.from,
                                    to: route.to,
                                    start: *start,
                                    end: *start,
                                    geometry: route.geometry.clone(),
                                },
                            );
                        }
                    }
                    let stored = fresh.routes().len();
                    let store = self.store_of(user);
                    let mut store = store.lock();
                    store.routes = fresh;
                    if let Some(seq) = body.seq {
                        store.routes_seq = seq;
                    }
                    Response::ok(json!({ "stored": stored, "stale": false }))
                })
            }
            (Method::Get, "/api/v1/routes") => {
                let store = self.store_of(user);
                let routes = store.lock().routes.routes().to_vec();
                Response::ok(json!({ "routes": routes }))
            }
            (Method::Post, "/api/v1/routes/query") => {
                self.with_body::<RouteQueryBody>(request, |body| {
                    let store = self.store_of(user);
                    let store = store.lock();
                    let routes: Vec<CanonicalRoute> = store
                        .routes
                        .between(body.from, body.to)
                        .into_iter()
                        .cloned()
                        .collect();
                    Response::ok(json!({ "routes": routes }))
                })
            }
            (Method::Post, "/api/v1/profiles/sync") => {
                self.with_body::<SyncProfileBody>(request, |body| {
                    let day = body.profile.day;
                    let store = self.store_of(user);
                    let mut store = store.lock();
                    // Per-day upsert sequencing: a duplicate delivery or a
                    // stale version reordered behind a newer one is
                    // acknowledged without re-applying, so the history
                    // (and its generation) only moves for new data.
                    let stale = body.seq.is_some_and(|seq| {
                        store.profile_seq.get(&day).is_some_and(|&s| seq <= s)
                    });
                    if stale {
                        self.metrics.replay_profiles_sync.inc();
                    }
                    if !stale {
                        store.history.upsert(body.profile);
                        if let Some(seq) = body.seq {
                            store.profile_seq.insert(day, seq);
                        }
                    }
                    Response::ok(json!({ "synced_day": day, "stale": stale }))
                })
            }
            (Method::Get, p) if p.starts_with("/api/v1/profiles/") => {
                let day: Result<u64, _> = p["/api/v1/profiles/".len()..].parse();
                match day {
                    Err(_) => Response::bad_request("day must be an integer"),
                    Ok(day) => {
                        let store = self.store_of(user);
                        let store = store.lock();
                        match store.history.day(day) {
                            Some(profile) => Response::ok(json!({ "profile": profile })),
                            None => Response::not_found("no profile for that day"),
                        }
                    }
                }
            }
            (Method::Post, "/api/v1/social/sync") => {
                self.with_body::<SyncContactsBody>(request, |body| {
                    let store = self.store_of(user);
                    let mut store = store.lock();
                    match body.first_seq {
                        Some(first_seq) => {
                            // Sequenced sync: skip the prefix already
                            // absorbed (a retried buffer re-sends from its
                            // unacknowledged base), append only unseen
                            // entries, and acknowledge the new watermark
                            // so the client can drain its buffer. A base
                            // past the watermark means the server lost
                            // state — absorb everything and resync.
                            let len = body.contacts.len() as u64;
                            if first_seq > store.contacts_absorbed {
                                store.contacts_absorbed = first_seq;
                            }
                            let skip = (store.contacts_absorbed - first_seq) as usize;
                            if skip > 0 {
                                self.metrics.replay_social_sync.inc();
                            }
                            if (skip as u64) < len {
                                store.contacts.extend(
                                    body.contacts.into_iter().skip(skip),
                                );
                                store.contacts_absorbed = first_seq + len;
                            }
                        }
                        None => {
                            // Legacy blind extend.
                            store.contacts_absorbed += body.contacts.len() as u64;
                            store.contacts.extend(body.contacts);
                        }
                    }
                    Response::ok(json!({
                        "stored": store.contacts.len(),
                        "acked_upto": store.contacts_absorbed,
                    }))
                })
            }
            (Method::Post, "/api/v1/social/query") => {
                self.with_body::<SocialQueryBody>(request, |body| {
                    let store = self.store_of(user);
                    let store = store.lock();
                    let contacts: Vec<ContactEntry> = store
                        .contacts
                        .iter()
                        .filter(|c| match body.place {
                            Some(p) => c.place == Some(p),
                            None => true,
                        })
                        .cloned()
                        .collect();
                    Response::ok(json!({ "contacts": contacts }))
                })
            }
            (Method::Post, "/api/v1/misc/geolocate") => {
                self.with_body::<GeolocateBody>(request, |body| {
                    let cell = CellGlobalId {
                        plmn: Plmn { mcc: body.mcc, mnc: body.mnc },
                        lac: Lac(body.lac),
                        cell: CellId(body.cid),
                    };
                    match self.cells.locate(cell) {
                        Some(p) => Response::ok(json!({
                            "latitude": p.latitude(),
                            "longitude": p.longitude(),
                        })),
                        None => Response::not_found("unknown cell"),
                    }
                })
            }
            (Method::Post, "/api/v1/misc/geolocate_signature") => {
                self.with_body::<GeolocateSignatureBody>(request, |body| {
                    match self.cells.locate_signature(body.cells.iter()) {
                        Some(p) => Response::ok(json!({
                            "latitude": p.latitude(),
                            "longitude": p.longitude(),
                        })),
                        None => Response::not_found("no known cells in signature"),
                    }
                })
            }
            (Method::Post, "/api/v1/analytics/arrival") => {
                self.with_body::<ArrivalBody>(request, |body| {
                    let window = body.window.unwrap_or((0, 24));
                    let store = self.store_of(user);
                    let store = store.lock();
                    match predict::predict_arrival_in_window(
                        &store.history,
                        body.place,
                        window,
                    ) {
                        Some(s) => Response::ok(json!({ "second_of_day": s })),
                        None => Response::not_found("no arrivals in window"),
                    }
                })
            }
            (Method::Post, "/api/v1/analytics/next_visit") => {
                self.with_body::<NextVisitBody>(request, |body| {
                    let store = self.store_of(user);
                    let store = store.lock();
                    match predict::predict_next_visit(&store.history, body.place, body.now)
                    {
                        Some(t) => Response::ok(json!({ "time": t })),
                        None => Response::not_found("no visit pattern for place"),
                    }
                })
            }
            (Method::Post, "/api/v1/analytics/frequency") => {
                self.with_body::<PlaceOnlyBody>(request, |body| {
                    let store = self.store_of(user);
                    let store = store.lock();
                    Response::ok(json!({
                        "visits_per_week": store.history.visits_per_week(body.place),
                        "visit_count": store.history.visit_count(body.place),
                    }))
                })
            }
            (Method::Post, "/api/v1/analytics/activity") => {
                let store = self.store_of(user);
                let store = store.lock();
                Response::ok(json!({
                    "mean_daily_moving_minutes": store.history.mean_daily_moving_minutes(),
                }))
            }
            (Method::Post, "/api/v1/analytics/next_place") => {
                self.with_body::<PlaceOnlyBody>(request, |body| {
                    let store = self.store_of(user);
                    let mut store = store.lock();
                    // Retrain only when the history generation moved on
                    // since the cached model was built; repeat queries
                    // against an unchanged history are retrain-free.
                    let generation = store.history.generation();
                    let stale =
                        store.next_place.as_ref().map(|(g, _)| *g) != Some(generation);
                    if stale {
                        self.metrics.cache_misses.inc();
                        let model = MarkovPredictor::train(&store.history);
                        store.next_place = Some((generation, model));
                    } else {
                        self.metrics.cache_hits.inc();
                    }
                    let (_, model) =
                        store.next_place.as_ref().expect("cache filled above");
                    Response::ok(json!({
                        "predictions": model.predict_next(body.place),
                    }))
                })
            }
            _ => Response::not_found(format!("no route for {path}")),
        }
    }

    fn register(&self, request: &Request, now: SimTime) -> Response {
        let body: RegistrationBody = match serde_json::from_value(request.body.clone()) {
            Ok(b) => b,
            Err(e) => return Response::bad_request(format!("invalid body: {e}")),
        };
        if body.imei.is_empty() || body.email.is_empty() {
            return Response::bad_request("imei and email are required");
        }
        let identity = DeviceIdentity { imei: body.imei, email: body.email };
        let (user, token) = self
            .tokens
            .write()
            .register(identity, now, &mut *self.rng.lock());
        // Materialize the store so first touch happens under registration,
        // not on the hot request path.
        let _ = self.store_of(user);
        Response::ok(json!({
            "user": user,
            "token": token.token,
            "expires_at": token.expires_at,
        }))
    }

    fn with_body<B: serde::de::DeserializeOwned>(
        &self,
        request: &Request,
        f: impl FnOnce(B) -> Response,
    ) -> Response {
        match serde_json::from_value::<B>(request.body.clone()) {
            Ok(body) => f(body),
            Err(e) => Response::bad_request(format!("invalid body: {e}")),
        }
    }
}

// The once-empty ProfileHistory fallback of earlier revisions is gone:
// `store_of` creates a (default) store on first touch, so analytics
// endpoints always have a history to read.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CloudInstance>();
    assert_send_sync::<SharedCloud>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PlaceEntry;
    use pmware_world::builder::{RegionProfile, WorldBuilder};

    fn cloud() -> CloudInstance {
        CloudInstance::new(CellDatabase::new(), 42)
    }

    fn register(cloud: &CloudInstance, n: u32, now: SimTime) -> String {
        let req = Request::post(
            "/api/v1/registration",
            json!({"imei": format!("imei-{n}"), "email": format!("u{n}@x.com")}),
        );
        let resp = cloud.handle(&req, now);
        assert!(resp.is_success(), "{resp:?}");
        resp.body["token"].as_str().unwrap().to_owned()
    }

    #[test]
    fn registration_and_auth_flow() {
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        assert_eq!(c.user_count(), 1);

        // Authenticated GET works.
        let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), now);
        assert!(resp.is_success());

        // Missing token → 401.
        let resp = c.handle(&Request::get("/api/v1/places"), now);
        assert_eq!(resp.status, 401);

        // Bogus token → 401.
        let resp = c.handle(&Request::get("/api/v1/places").with_token("tok-x"), now);
        assert_eq!(resp.status, 401);

        // Expired token → 401.
        let later = now + SimDuration::from_hours(25);
        let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), later);
        assert_eq!(resp.status, 401);
    }

    #[test]
    fn registration_requires_identity() {
        let c = cloud();
        let resp = c.handle(
            &Request::post("/api/v1/registration", json!({"imei": "", "email": ""})),
            SimTime::EPOCH,
        );
        assert_eq!(resp.status, 400);
        let resp = c.handle(
            &Request::post("/api/v1/registration", json!({"nope": 1})),
            SimTime::EPOCH,
        );
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn token_refresh_rotates() {
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        let resp = c.handle(
            &Request::post("/api/v1/token/refresh", Value::Null).with_token(&token),
            now + SimDuration::from_hours(20),
        );
        assert!(resp.is_success());
        let new_token = resp.body["token"].as_str().unwrap().to_owned();
        assert_ne!(new_token, token);
        // The old token no longer validates.
        let resp = c.handle(
            &Request::get("/api/v1/places").with_token(&token),
            now + SimDuration::from_hours(21),
        );
        assert_eq!(resp.status, 401);
    }

    #[test]
    fn gca_offload_discovers_and_stores() {
        use pmware_world::tower::NetworkLayer;
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        // Synthetic oscillating stream (same shape as the GCA unit tests).
        let cell = |id: u32| CellGlobalId {
            plmn: Plmn { mcc: 404, mnc: 45 },
            lac: Lac(1),
            cell: CellId(id),
        };
        let observations: Vec<GsmObservation> = (0..40)
            .map(|m| GsmObservation {
                time: SimTime::from_seconds(m * 60),
                cell: if m % 3 == 1 { cell(2) } else { cell(1) },
                layer: NetworkLayer::G2,
                rssi_dbm: -70.0,
            })
            .collect();
        let resp = c.handle(
            &Request::post(
                "/api/v1/places/discover",
                json!({ "observations": observations }),
            )
            .with_token(&token),
            now,
        );
        assert!(resp.is_success(), "{resp:?}");
        let places = resp.body["places"].as_array().unwrap();
        assert_eq!(places.len(), 1);
        // And the places are now listed.
        let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), now);
        assert_eq!(resp.body["places"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn discover_absorbs_suffixes_without_forgetting_places() {
        use pmware_world::tower::NetworkLayer;
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        let cell = |id: u32| CellGlobalId {
            plmn: Plmn { mcc: 404, mnc: 45 },
            lac: Lac(1),
            cell: CellId(id),
        };
        let obs = |minute: u64, id: u32| GsmObservation {
            time: SimTime::from_seconds(minute * 60),
            cell: cell(id),
            layer: NetworkLayer::G2,
            rssi_dbm: -70.0,
        };
        // Night 1: a 40-minute stay at place {1,2}.
        let night1: Vec<GsmObservation> =
            (0..40).map(|m| obs(m, if m % 3 == 1 { 2 } else { 1 })).collect();
        let resp = c.handle(
            &Request::post("/api/v1/places/discover", json!({ "observations": night1 }))
                .with_token(&token),
            now,
        );
        assert!(resp.is_success(), "{resp:?}");
        assert_eq!(resp.body["places"].as_array().unwrap().len(), 1);
        // Night 2 offloads ONLY the new suffix: a stay somewhere else.
        // Before the persistent per-user engine this *replaced* the stored
        // places, silently forgetting place {1,2}.
        let night2: Vec<GsmObservation> =
            (100..140).map(|m| obs(m, if m % 3 == 1 { 6 } else { 5 })).collect();
        let resp = c.handle(
            &Request::post("/api/v1/places/discover", json!({ "observations": night2 }))
                .with_token(&token),
            now,
        );
        assert!(resp.is_success(), "{resp:?}");
        let places = resp.body["places"].as_array().unwrap();
        assert_eq!(places.len(), 2, "suffix offload must keep night-1 places");
        // And the reply matches one batch clustering of the whole stream.
        let full: Vec<GsmObservation> = (0..40)
            .map(|m| obs(m, if m % 3 == 1 { 2 } else { 1 }))
            .chain((100..140).map(|m| obs(m, if m % 3 == 1 { 6 } else { 5 })))
            .collect();
        let batch =
            pmware_algorithms::gca::discover_places(&full, &GcaConfig::default());
        assert_eq!(places.len(), batch.places.len());
    }

    #[test]
    fn discover_rewind_restarts_from_the_new_batch() {
        use pmware_world::tower::NetworkLayer;
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        let cell = |id: u32| CellGlobalId {
            plmn: Plmn { mcc: 404, mnc: 45 },
            lac: Lac(1),
            cell: CellId(id),
        };
        let stream: Vec<GsmObservation> = (0..40)
            .map(|m| GsmObservation {
                time: SimTime::from_seconds(m * 60),
                cell: if m % 3 == 1 { cell(2) } else { cell(1) },
                layer: NetworkLayer::G2,
                rssi_dbm: -70.0,
            })
            .collect();
        let req = Request::post(
            "/api/v1/places/discover",
            json!({ "observations": stream }),
        )
        .with_token(&token);
        // Re-sending the same from-zero batch (a client that restarted and
        // re-clusters its full log) must not double-count: the engine
        // restarts from the rewound batch.
        let first = c.handle(&req, now);
        let second = c.handle(&req, now);
        assert!(second.is_success());
        assert_eq!(first.body, second.body);
        assert_eq!(second.body["places"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn next_place_cache_invalidates_on_profile_upsert() {
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        let sync = |day: u64, route: &[u32]| {
            let mut profile = MobilityProfile::new(day);
            for (i, &p) in route.iter().enumerate() {
                profile.places.push(PlaceEntry {
                    place: DiscoveredPlaceId(p),
                    arrival: SimTime::from_day_time(day, 8 + 2 * i as u64, 0, 0),
                    departure: SimTime::from_day_time(day, 9 + 2 * i as u64, 0, 0),
                });
            }
            let resp = c.handle(
                &Request::post("/api/v1/profiles/sync", json!({ "profile": profile }))
                    .with_token(&token),
                now,
            );
            assert!(resp.is_success());
        };
        let next = || {
            let resp = c.handle(
                &Request::post("/api/v1/analytics/next_place", json!({"place": 0}))
                    .with_token(&token),
                now,
            );
            assert!(resp.is_success());
            resp.body["predictions"].as_array().unwrap()[0][0]
                .as_u64()
                .unwrap()
        };
        // Two days of 0 → 1: the model (and its cache) says 1.
        sync(0, &[0, 1]);
        sync(1, &[0, 1]);
        assert_eq!(next(), 1);
        assert_eq!(next(), 1, "repeat query served from the memoized model");
        // Three days of 0 → 2 flip the majority: the upsert bumps the
        // history generation, so the cached model must be retrained.
        sync(2, &[0, 2]);
        sync(3, &[0, 2]);
        sync(4, &[0, 2]);
        assert_eq!(next(), 2, "stale cached model would still answer 1");
    }

    #[test]
    fn place_labelling() {
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        let place = DiscoveredPlace::new(
            DiscoveredPlaceId(0),
            pmware_algorithms::signature::PlaceSignature::WifiAps(Default::default()),
            vec![],
        );
        let resp = c.handle(
            &Request::post("/api/v1/places/sync", json!({ "places": [place] }))
                .with_token(&token),
            now,
        );
        assert!(resp.is_success());
        let resp = c.handle(
            &Request::post(
                "/api/v1/places/label",
                json!({"place": 0, "label": "Home"}),
            )
            .with_token(&token),
            now,
        );
        assert!(resp.is_success(), "{resp:?}");
        let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), now);
        assert_eq!(resp.body["places"][0]["label"], "Home");
        // Unknown place → 404.
        let resp = c.handle(
            &Request::post(
                "/api/v1/places/label",
                json!({"place": 9, "label": "X"}),
            )
            .with_token(&token),
            now,
        );
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn profile_sync_and_fetch() {
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        let mut profile = MobilityProfile::new(2);
        profile.places.push(PlaceEntry {
            place: DiscoveredPlaceId(0),
            arrival: SimTime::from_day_time(2, 9, 0, 0),
            departure: SimTime::from_day_time(2, 17, 0, 0),
        });
        let resp = c.handle(
            &Request::post("/api/v1/profiles/sync", json!({ "profile": profile }))
                .with_token(&token),
            now,
        );
        assert!(resp.is_success());
        let resp = c.handle(
            &Request::get("/api/v1/profiles/2").with_token(&token),
            now,
        );
        assert!(resp.is_success());
        assert_eq!(resp.body["profile"]["day"], 2);
        // Missing day → 404; malformed day → 400.
        assert_eq!(
            c.handle(&Request::get("/api/v1/profiles/9").with_token(&token), now)
                .status,
            404
        );
        assert_eq!(
            c.handle(&Request::get("/api/v1/profiles/xyz").with_token(&token), now)
                .status,
            400
        );
    }

    #[test]
    fn analytics_endpoints_answer_the_papers_queries() {
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        // Two weeks of evening home arrivals at 18h.
        for day in 0..14 {
            let mut profile = MobilityProfile::new(day);
            profile.places.push(PlaceEntry {
                place: DiscoveredPlaceId(1),
                arrival: SimTime::from_day_time(day, 9, 0, 0),
                departure: SimTime::from_day_time(day, 17, 0, 0),
            });
            profile.places.push(PlaceEntry {
                place: DiscoveredPlaceId(0),
                arrival: SimTime::from_day_time(day, 18, 0, 0),
                departure: SimTime::from_day_time(day, 23, 0, 0),
            });
            let resp = c.handle(
                &Request::post("/api/v1/profiles/sync", json!({ "profile": profile }))
                    .with_token(&token),
                now,
            );
            assert!(resp.is_success());
        }
        // Query 1: evening home arrival.
        let resp = c.handle(
            &Request::post(
                "/api/v1/analytics/arrival",
                json!({"place": 0, "window": [15, 24]}),
            )
            .with_token(&token),
            now,
        );
        assert!(resp.is_success());
        assert_eq!(resp.body["second_of_day"].as_u64().unwrap() / 3_600, 18);
        // Query 2: next visit to place 1.
        let resp = c.handle(
            &Request::post(
                "/api/v1/analytics/next_visit",
                json!({"place": 1, "now": SimTime::from_day_time(14, 0, 0, 0)}),
            )
            .with_token(&token),
            now,
        );
        assert!(resp.is_success(), "{resp:?}");
        // Query 3: frequency.
        let resp = c.handle(
            &Request::post("/api/v1/analytics/frequency", json!({"place": 0}))
                .with_token(&token),
            now,
        );
        assert!(resp.is_success());
        assert!((resp.body["visits_per_week"].as_f64().unwrap() - 7.0).abs() < 1e-9);
        // Markov next place from work is home.
        let resp = c.handle(
            &Request::post("/api/v1/analytics/next_place", json!({"place": 1}))
                .with_token(&token),
            now,
        );
        assert!(resp.is_success());
        let preds = resp.body["predictions"].as_array().unwrap();
        assert_eq!(preds[0][0], 0);
    }

    #[test]
    fn geolocation_endpoint_uses_cell_database() {
        let world = WorldBuilder::new(RegionProfile::test_tiny()).seed(3).build();
        let tower = &world.towers()[0];
        let c = CloudInstance::new(CellDatabase::from_world(&world), 1);
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        let cell = tower.cell();
        let resp = c.handle(
            &Request::post(
                "/api/v1/misc/geolocate",
                json!({
                    "mcc": cell.plmn.mcc,
                    "mnc": cell.plmn.mnc,
                    "lac": cell.lac.0,
                    "cid": cell.cell.0,
                }),
            )
            .with_token(&token),
            now,
        );
        assert!(resp.is_success());
        let lat = resp.body["latitude"].as_f64().unwrap();
        assert!((lat - tower.position().latitude()).abs() < 1e-9);
        // Unknown cell → 404.
        let resp = c.handle(
            &Request::post(
                "/api/v1/misc/geolocate",
                json!({"mcc": 1, "mnc": 1, "lac": 1, "cid": 1}),
            )
            .with_token(&token),
            now,
        );
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn social_sync_and_query_by_place() {
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        let contacts = vec![
            ContactEntry {
                contact: "peer-1".into(),
                start: SimTime::from_seconds(0),
                end: SimTime::from_seconds(600),
                place: Some(DiscoveredPlaceId(0)),
            },
            ContactEntry {
                contact: "peer-2".into(),
                start: SimTime::from_seconds(0),
                end: SimTime::from_seconds(600),
                place: Some(DiscoveredPlaceId(1)),
            },
        ];
        let resp = c.handle(
            &Request::post("/api/v1/social/sync", json!({ "contacts": contacts }))
                .with_token(&token),
            now,
        );
        assert!(resp.is_success());
        // Targeted query: only workplace contacts (§2.2.2 targeted sensing).
        let resp = c.handle(
            &Request::post("/api/v1/social/query", json!({"place": 0}))
                .with_token(&token),
            now,
        );
        let got = resp.body["contacts"].as_array().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0]["contact"], "peer-1");
        // Unfiltered query returns everything.
        let resp = c.handle(
            &Request::post("/api/v1/social/query", json!({"place": null}))
                .with_token(&token),
            now,
        );
        assert_eq!(resp.body["contacts"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn sequenced_discover_skips_absorbed_prefixes() {
        use pmware_world::tower::NetworkLayer;
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        let cell = |id: u32| CellGlobalId {
            plmn: Plmn { mcc: 404, mnc: 45 },
            lac: Lac(1),
            cell: CellId(id),
        };
        let obs = |minute: u64, id: u32| GsmObservation {
            time: SimTime::from_seconds(minute * 60),
            cell: cell(id),
            layer: NetworkLayer::G2,
            rssi_dbm: -70.0,
        };
        let stream: Vec<GsmObservation> =
            (0..40).map(|m| obs(m, if m % 3 == 1 { 2 } else { 1 })).collect();
        let discover = |observations: &[GsmObservation], start: u64| {
            c.handle(
                &Request::post(
                    "/api/v1/places/discover",
                    json!({ "observations": observations, "start": start }),
                )
                .with_token(&token),
                now,
            )
        };
        // First offload absorbs everything.
        let first = discover(&stream, 0);
        assert!(first.is_success(), "{first:?}");
        assert_eq!(first.body["absorbed_upto"], 40);
        let user = UserId(0);
        assert_eq!(c.observation_count(user), 40);
        // A duplicated delivery of the same batch absorbs nothing new.
        let dup = discover(&stream, 0);
        assert_eq!(dup.body, first.body);
        assert_eq!(c.observation_count(user), 40, "duplicate must not double-absorb");
        // A retried send overlapping the watermark absorbs only the tail.
        let tail: Vec<GsmObservation> =
            (30..50).map(|m| obs(m, if m % 3 == 1 { 2 } else { 1 })).collect();
        let resp = discover(&tail, 30);
        assert!(resp.is_success());
        assert_eq!(resp.body["absorbed_upto"], 50);
        assert_eq!(c.observation_count(user), 50);
    }

    #[test]
    fn sequenced_contacts_deduplicate_resent_buffers() {
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        let user = UserId(0);
        let entry = |n: u64| ContactEntry {
            contact: format!("peer-{n}"),
            start: SimTime::from_seconds(n * 100),
            end: SimTime::from_seconds(n * 100 + 60),
            place: None,
        };
        let sync = |contacts: &[ContactEntry], first_seq: u64| {
            c.handle(
                &Request::post(
                    "/api/v1/social/sync",
                    json!({ "contacts": contacts, "first_seq": first_seq }),
                )
                .with_token(&token),
                now,
            )
        };
        // The regression the pending_contacts fix needs: a client whose
        // sync "failed" (response lost) re-sends the WHOLE buffer plus a
        // new entry. Before sequencing this doubled peer-0 and peer-1.
        let batch: Vec<ContactEntry> = (0..2).map(entry).collect();
        let resp = sync(&batch, 0);
        assert!(resp.is_success());
        assert_eq!(resp.body["acked_upto"], 2);
        let resent: Vec<ContactEntry> = (0..3).map(entry).collect();
        let resp = sync(&resent, 0);
        assert!(resp.is_success());
        assert_eq!(resp.body["acked_upto"], 3);
        assert_eq!(c.contact_count(user), 3, "re-sent prefix must be skipped");
        let stored = c.contacts_of(user);
        let names: Vec<&str> = stored.iter().map(|e| e.contact.as_str()).collect();
        assert_eq!(names, ["peer-0", "peer-1", "peer-2"]);
        // A pure duplicate delivery is a no-op.
        let resp = sync(&resent, 0);
        assert_eq!(resp.body["acked_upto"], 3);
        assert_eq!(c.contact_count(user), 3);
    }

    #[test]
    fn stale_profile_and_snapshot_syncs_are_ignored() {
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        let profile = |day: u64, visits: u32| {
            let mut p = MobilityProfile::new(day);
            for i in 0..visits {
                p.places.push(PlaceEntry {
                    place: DiscoveredPlaceId(i),
                    arrival: SimTime::from_day_time(day, 8 + u64::from(i), 0, 0),
                    departure: SimTime::from_day_time(day, 9 + u64::from(i), 0, 0),
                });
            }
            p
        };
        let sync = |p: &MobilityProfile, seq: u64| {
            c.handle(
                &Request::post(
                    "/api/v1/profiles/sync",
                    json!({ "profile": p, "seq": seq }),
                )
                .with_token(&token),
                now,
            )
        };
        // Newer version of day 0 lands first (reorder), stale one follows.
        assert_eq!(sync(&profile(0, 2), 5).body["stale"], false);
        let resp = sync(&profile(0, 1), 3);
        assert!(resp.is_success());
        assert_eq!(resp.body["stale"], true);
        let fetched = c.handle(
            &Request::get("/api/v1/profiles/0").with_token(&token),
            now,
        );
        assert_eq!(
            fetched.body["profile"]["places"].as_array().unwrap().len(),
            2,
            "stale sync must not clobber the newer profile"
        );
        // Same for the places full replacement.
        let place = DiscoveredPlace::new(
            DiscoveredPlaceId(0),
            pmware_algorithms::signature::PlaceSignature::WifiAps(Default::default()),
            vec![],
        );
        let resp = c.handle(
            &Request::post(
                "/api/v1/places/sync",
                json!({ "places": [place], "seq": 7 }),
            )
            .with_token(&token),
            now,
        );
        assert_eq!(resp.body["stale"], false);
        let resp = c.handle(
            &Request::post("/api/v1/places/sync", json!({ "places": [], "seq": 6 }))
                .with_token(&token),
            now,
        );
        assert_eq!(resp.body["stale"], true);
        let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), now);
        assert_eq!(resp.body["places"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn users_are_isolated() {
        let c = cloud();
        let now = SimTime::EPOCH;
        let t0 = register(&c, 0, now);
        let t1 = register(&c, 1, now);
        let place = DiscoveredPlace::new(
            DiscoveredPlaceId(0),
            pmware_algorithms::signature::PlaceSignature::WifiAps(Default::default()),
            vec![],
        );
        c.handle(
            &Request::post("/api/v1/places/sync", json!({ "places": [place] }))
                .with_token(&t0),
            now,
        );
        let resp = c.handle(&Request::get("/api/v1/places").with_token(&t1), now);
        assert_eq!(resp.body["places"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn unknown_route_is_404() {
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        let resp = c.handle(&Request::get("/api/v1/nope").with_token(&token), now);
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn malformed_body_is_400() {
        let c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        let resp = c.handle(
            &Request::post("/api/v1/places/sync", json!({"wrong": true}))
                .with_token(&token),
            now,
        );
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn request_counters_attribute_to_user_shards() {
        let c = cloud();
        let now = SimTime::EPOCH;
        let t0 = register(&c, 0, now); // UserId(0) → shard 0
        let t1 = register(&c, 1, now); // UserId(1) → shard 1
        assert_eq!(c.total_requests(), 0, "registration is unauthenticated");
        for _ in 0..3 {
            c.handle(&Request::get("/api/v1/places").with_token(&t0), now);
        }
        c.handle(&Request::get("/api/v1/places").with_token(&t1), now);
        let counts = c.shard_request_counts();
        assert_eq!(counts.len(), SHARD_COUNT);
        assert_eq!(counts[0], 3);
        assert_eq!(counts[1], 1);
        assert_eq!(c.total_requests(), 4);
    }

    #[test]
    fn registrations_count_under_the_register_endpoint_label() {
        let obs = Obs::new();
        let c = cloud().with_obs(&obs);
        let now = SimTime::EPOCH;
        let t0 = register(&c, 0, now);
        let _t1 = register(&c, 1, now);
        c.handle(&Request::get("/api/v1/places").with_token(&t0), now);
        // Legacy views keep their authenticated-only promise...
        assert_eq!(c.total_requests(), 1);
        // ...while the registry sees the registrations too.
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(snap.counter_value("cloud_requests_total{endpoint=\"register\"}"), 2);
        assert_eq!(snap.counter_value("cloud_requests_total{endpoint=\"places_list\"}"), 1);
        // Shard attribution stays out of the shared registry (its labels
        // depend on registration order, which is racy under threads).
        assert_eq!(snap.counter_sum_with_prefix("cloud_shard_requests_total"), 0);
    }

    #[test]
    fn replay_and_cache_metrics_fire() {
        let obs = Obs::new();
        let c = cloud().with_obs(&obs);
        let now = SimTime::EPOCH;
        let token = register(&c, 0, now);
        // Stale places sync (same seq twice) → one replay.
        let sync = Request::post("/api/v1/places/sync", json!({"places": [], "seq": 1}))
            .with_token(&token);
        assert!(c.handle(&sync, now).is_success());
        assert!(c.handle(&sync, now).is_success());
        // next_place: first query trains (miss), second hits the memo.
        let query = Request::post("/api/v1/analytics/next_place", json!({"place": 0}))
            .with_token(&token);
        assert!(c.handle(&query, now).is_success());
        assert!(c.handle(&query, now).is_success());
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(snap.counter_value("cloud_replays_total{endpoint=\"places_sync\"}"), 1);
        assert_eq!(snap.counter_value("cloud_analytics_cache_total{result=\"miss\"}"), 1);
        assert_eq!(snap.counter_value("cloud_analytics_cache_total{result=\"hit\"}"), 1);
    }

    #[test]
    fn shared_cloud_serves_threads_concurrently() {
        let shared = SharedCloud::new(cloud());
        let now = SimTime::EPOCH;
        let tokens: Vec<String> =
            (0..4).map(|n| register(&shared, n, now)).collect();
        std::thread::scope(|s| {
            for (n, token) in tokens.iter().enumerate() {
                let shared = shared.clone();
                s.spawn(move || {
                    let place = DiscoveredPlace::new(
                        DiscoveredPlaceId(n as u32),
                        pmware_algorithms::signature::PlaceSignature::WifiAps(
                            Default::default(),
                        ),
                        vec![],
                    );
                    let resp = shared.handle(
                        &Request::post(
                            "/api/v1/places/sync",
                            json!({ "places": [place] }),
                        )
                        .with_token(token),
                        now,
                    );
                    assert!(resp.is_success());
                });
            }
        });
        // Every user sees exactly their own single place.
        for (n, token) in tokens.iter().enumerate() {
            let resp =
                shared.handle(&Request::get("/api/v1/places").with_token(token), now);
            let places = resp.body["places"].as_array().unwrap();
            assert_eq!(places.len(), 1, "user {n}");
            assert_eq!(places[0]["id"], n as u64);
        }
    }
}
