//! The cloud instance: endpoint routing and per-user storage.

use std::collections::HashMap;

use pmware_algorithms::gca::{self, GcaConfig};
use pmware_algorithms::route::{CanonicalRoute, RouteStore};
use pmware_algorithms::signature::{DiscoveredPlace, DiscoveredPlaceId};
use pmware_world::{CellGlobalId, CellId, GsmObservation, Lac, Plmn, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Deserialize;
use serde_json::json;
#[cfg(test)]
use serde_json::Value;

use crate::analytics::ProfileHistory;
use crate::api::{Method, Request, Response};
use crate::auth::{DeviceIdentity, TokenStore, UserId};
use crate::geolocate::CellDatabase;
use crate::predict::{self, MarkovPredictor};
use crate::profile::{ContactEntry, MobilityProfile};

/// Per-user server-side state.
#[derive(Debug)]
struct UserStore {
    places: Vec<DiscoveredPlace>,
    routes: RouteStore,
    history: ProfileHistory,
    contacts: Vec<ContactEntry>,
}

impl Default for UserStore {
    fn default() -> Self {
        UserStore {
            places: Vec::new(),
            routes: RouteStore::new(0.5),
            history: ProfileHistory::new(),
            contacts: Vec::new(),
        }
    }
}

/// The PMWare cloud instance (PCI).
///
/// # Examples
///
/// ```
/// use pmware_cloud::{CellDatabase, CloudInstance, Request};
/// use pmware_world::SimTime;
/// use serde_json::json;
///
/// let mut cloud = CloudInstance::new(CellDatabase::new(), 1);
/// let req = Request::post(
///     "/api/v1/registration",
///     json!({"imei": "350123", "email": "a@example.com"}),
/// );
/// let resp = cloud.handle(&req, SimTime::EPOCH);
/// assert!(resp.is_success());
/// assert!(resp.body["token"].is_string());
/// ```
#[derive(Debug)]
pub struct CloudInstance {
    tokens: TokenStore,
    users: HashMap<UserId, UserStore>,
    cells: CellDatabase,
    gca_config: GcaConfig,
    rng: StdRng,
    outage: bool,
}

#[derive(Deserialize)]
struct RegistrationBody {
    imei: String,
    email: String,
}

#[derive(Deserialize)]
struct DiscoverBody {
    observations: Vec<GsmObservation>,
}

#[derive(Deserialize)]
struct SyncPlacesBody {
    places: Vec<DiscoveredPlace>,
}

#[derive(Deserialize)]
struct LabelBody {
    place: DiscoveredPlaceId,
    label: String,
}

#[derive(Deserialize)]
struct SyncRoutesBody {
    routes: Vec<CanonicalRoute>,
}

#[derive(Deserialize)]
struct RouteQueryBody {
    from: DiscoveredPlaceId,
    to: DiscoveredPlaceId,
}

#[derive(Deserialize)]
struct SyncProfileBody {
    profile: MobilityProfile,
}

#[derive(Deserialize)]
struct SyncContactsBody {
    contacts: Vec<ContactEntry>,
}

#[derive(Deserialize)]
struct SocialQueryBody {
    place: Option<DiscoveredPlaceId>,
}

#[derive(Deserialize)]
struct GeolocateBody {
    mcc: u16,
    mnc: u16,
    lac: u16,
    cid: u32,
}

#[derive(Deserialize)]
struct GeolocateSignatureBody {
    cells: Vec<CellGlobalId>,
}

#[derive(Deserialize)]
struct ArrivalBody {
    place: DiscoveredPlaceId,
    window: Option<(u64, u64)>,
}

#[derive(Deserialize)]
struct NextVisitBody {
    place: DiscoveredPlaceId,
    now: SimTime,
}

#[derive(Deserialize)]
struct PlaceOnlyBody {
    place: DiscoveredPlaceId,
}

impl CloudInstance {
    /// Creates an instance with a 24-hour token TTL.
    pub fn new(cells: CellDatabase, seed: u64) -> Self {
        CloudInstance {
            tokens: TokenStore::new(SimDuration::from_hours(24)),
            users: HashMap::new(),
            cells,
            gca_config: GcaConfig::default(),
            rng: StdRng::seed_from_u64(seed),
            outage: false,
        }
    }

    /// Fault injection for tests and resilience experiments: while an
    /// outage is active every request fails with 503, as if the Azure
    /// instance were unreachable. The phone must keep working (§2.3.1's
    /// offload has a local fallback).
    pub fn set_outage(&mut self, outage: bool) {
        self.outage = outage;
    }

    /// Whether an outage is currently injected.
    pub fn outage(&self) -> bool {
        self.outage
    }

    /// Overrides the GCA configuration used by the discovery offload.
    pub fn set_gca_config(&mut self, config: GcaConfig) {
        self.gca_config = config;
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.tokens.user_count()
    }

    /// Handles one request at simulated instant `now` — the single entry
    /// point, exactly like an HTTP dispatcher.
    pub fn handle(&mut self, request: &Request, now: SimTime) -> Response {
        if self.outage {
            return Response { status: 503, body: json!({"error": "service unavailable"}) };
        }
        let path = request.path.as_str();
        // Unauthenticated endpoints.
        if let (Method::Post, "/api/v1/registration") = (request.method, path) {
            return self.register(request, now);
        }

        // Everything else requires a valid token.
        let Some(token) = request.token.as_deref() else {
            return Response::unauthorized("missing bearer token");
        };
        let Some(user) = self.tokens.validate(token, now) else {
            return Response::unauthorized("invalid or expired token");
        };

        match (request.method, path) {
            (Method::Post, "/api/v1/token/refresh") => {
                match self.tokens.refresh(token, now, &mut self.rng) {
                    Some(t) => Response::ok(json!({
                        "token": t.token,
                        "expires_at": t.expires_at,
                    })),
                    None => Response::unauthorized("token not refreshable"),
                }
            }
            (Method::Post, "/api/v1/places/discover") => {
                self.with_body::<DiscoverBody>(request, |cloud, body| {
                    let out = gca::discover_places(&body.observations, &cloud.gca_config);
                    let store = cloud.users.entry(user).or_default();
                    store.places = out.places.clone();
                    Response::ok(json!({ "places": out.places }))
                })
            }
            (Method::Post, "/api/v1/places/sync") => {
                self.with_body::<SyncPlacesBody>(request, |cloud, body| {
                    let store = cloud.users.entry(user).or_default();
                    store.places = body.places;
                    Response::ok(json!({ "stored": store.places.len() }))
                })
            }
            (Method::Get, "/api/v1/places") => {
                let places = self
                    .users
                    .get(&user)
                    .map(|s| s.places.clone())
                    .unwrap_or_default();
                Response::ok(json!({ "places": places }))
            }
            (Method::Post, "/api/v1/places/label") => {
                self.with_body::<LabelBody>(request, |cloud, body| {
                    let store = cloud.users.entry(user).or_default();
                    match store.places.iter_mut().find(|p| p.id == body.place) {
                        Some(place) => {
                            place.label = Some(body.label);
                            Response::ok(json!({ "labelled": place.id }))
                        }
                        None => Response::not_found("unknown place"),
                    }
                })
            }
            (Method::Post, "/api/v1/routes/sync") => {
                self.with_body::<SyncRoutesBody>(request, |cloud, body| {
                    let store = cloud.users.entry(user).or_default();
                    let mut fresh = RouteStore::new(0.5);
                    for route in body.routes {
                        for start in &route.traversals {
                            let _ = fresh.record(
                                pmware_algorithms::route::RouteObservation {
                                    from: route.from,
                                    to: route.to,
                                    start: *start,
                                    end: *start,
                                    geometry: route.geometry.clone(),
                                },
                            );
                        }
                    }
                    store.routes = fresh;
                    Response::ok(json!({ "stored": store.routes.routes().len() }))
                })
            }
            (Method::Get, "/api/v1/routes") => {
                let routes = self
                    .users
                    .get(&user)
                    .map(|s| s.routes.routes().to_vec())
                    .unwrap_or_default();
                Response::ok(json!({ "routes": routes }))
            }
            (Method::Post, "/api/v1/routes/query") => {
                self.with_body::<RouteQueryBody>(request, |cloud, body| {
                    let routes: Vec<CanonicalRoute> = cloud
                        .users
                        .get(&user)
                        .map(|s| {
                            s.routes
                                .between(body.from, body.to)
                                .into_iter()
                                .cloned()
                                .collect()
                        })
                        .unwrap_or_default();
                    Response::ok(json!({ "routes": routes }))
                })
            }
            (Method::Post, "/api/v1/profiles/sync") => {
                self.with_body::<SyncProfileBody>(request, |cloud, body| {
                    let store = cloud.users.entry(user).or_default();
                    let day = body.profile.day;
                    store.history.upsert(body.profile);
                    Response::ok(json!({ "synced_day": day }))
                })
            }
            (Method::Get, p) if p.starts_with("/api/v1/profiles/") => {
                let day: Result<u64, _> = p["/api/v1/profiles/".len()..].parse();
                match day {
                    Err(_) => Response::bad_request("day must be an integer"),
                    Ok(day) => match self.users.get(&user).and_then(|s| s.history.day(day))
                    {
                        Some(profile) => Response::ok(json!({ "profile": profile })),
                        None => Response::not_found("no profile for that day"),
                    },
                }
            }
            (Method::Post, "/api/v1/social/sync") => {
                self.with_body::<SyncContactsBody>(request, |cloud, body| {
                    let store = cloud.users.entry(user).or_default();
                    store.contacts.extend(body.contacts);
                    Response::ok(json!({ "stored": store.contacts.len() }))
                })
            }
            (Method::Post, "/api/v1/social/query") => {
                self.with_body::<SocialQueryBody>(request, |cloud, body| {
                    let contacts: Vec<ContactEntry> = cloud
                        .users
                        .get(&user)
                        .map(|s| {
                            s.contacts
                                .iter()
                                .filter(|c| match body.place {
                                    Some(p) => c.place == Some(p),
                                    None => true,
                                })
                                .cloned()
                                .collect()
                        })
                        .unwrap_or_default();
                    Response::ok(json!({ "contacts": contacts }))
                })
            }
            (Method::Post, "/api/v1/misc/geolocate") => {
                self.with_body::<GeolocateBody>(request, |cloud, body| {
                    let cell = CellGlobalId {
                        plmn: Plmn { mcc: body.mcc, mnc: body.mnc },
                        lac: Lac(body.lac),
                        cell: CellId(body.cid),
                    };
                    match cloud.cells.locate(cell) {
                        Some(p) => Response::ok(json!({
                            "latitude": p.latitude(),
                            "longitude": p.longitude(),
                        })),
                        None => Response::not_found("unknown cell"),
                    }
                })
            }
            (Method::Post, "/api/v1/misc/geolocate_signature") => {
                self.with_body::<GeolocateSignatureBody>(request, |cloud, body| {
                    match cloud.cells.locate_signature(body.cells.iter()) {
                        Some(p) => Response::ok(json!({
                            "latitude": p.latitude(),
                            "longitude": p.longitude(),
                        })),
                        None => Response::not_found("no known cells in signature"),
                    }
                })
            }
            (Method::Post, "/api/v1/analytics/arrival") => {
                self.with_body::<ArrivalBody>(request, |cloud, body| {
                    let history = cloud.history_of(user);
                    let window = body.window.unwrap_or((0, 24));
                    match predict::predict_arrival_in_window(history, body.place, window) {
                        Some(s) => Response::ok(json!({ "second_of_day": s })),
                        None => Response::not_found("no arrivals in window"),
                    }
                })
            }
            (Method::Post, "/api/v1/analytics/next_visit") => {
                self.with_body::<NextVisitBody>(request, |cloud, body| {
                    let history = cloud.history_of(user);
                    match predict::predict_next_visit(history, body.place, body.now) {
                        Some(t) => Response::ok(json!({ "time": t })),
                        None => Response::not_found("no visit pattern for place"),
                    }
                })
            }
            (Method::Post, "/api/v1/analytics/frequency") => {
                self.with_body::<PlaceOnlyBody>(request, |cloud, body| {
                    let history = cloud.history_of(user);
                    Response::ok(json!({
                        "visits_per_week": history.visits_per_week(body.place),
                        "visit_count": history.visit_count(body.place),
                    }))
                })
            }
            (Method::Post, "/api/v1/analytics/activity") => {
                let history = self.history_of(user);
                Response::ok(json!({
                    "mean_daily_moving_minutes": history.mean_daily_moving_minutes(),
                }))
            }
            (Method::Post, "/api/v1/analytics/next_place") => {
                self.with_body::<PlaceOnlyBody>(request, |cloud, body| {
                    let history = cloud.history_of(user);
                    let model = MarkovPredictor::train(history);
                    Response::ok(json!({
                        "predictions": model.predict_next(body.place),
                    }))
                })
            }
            _ => Response::not_found(format!("no route for {path}")),
        }
    }

    fn register(&mut self, request: &Request, now: SimTime) -> Response {
        let body: RegistrationBody = match serde_json::from_value(request.body.clone()) {
            Ok(b) => b,
            Err(e) => return Response::bad_request(format!("invalid body: {e}")),
        };
        if body.imei.is_empty() || body.email.is_empty() {
            return Response::bad_request("imei and email are required");
        }
        let identity = DeviceIdentity { imei: body.imei, email: body.email };
        let (user, token) = self.tokens.register(identity, now, &mut self.rng);
        self.users.entry(user).or_default();
        Response::ok(json!({
            "user": user,
            "token": token.token,
            "expires_at": token.expires_at,
        }))
    }

    fn history_of(&self, user: UserId) -> &ProfileHistory {
        self.users
            .get(&user)
            .map(|s| &s.history)
            .unwrap_or_else(|| once_empty::empty())
    }

    fn with_body<B: serde::de::DeserializeOwned>(
        &mut self,
        request: &Request,
        f: impl FnOnce(&mut Self, B) -> Response,
    ) -> Response {
        match serde_json::from_value::<B>(request.body.clone()) {
            Ok(body) => f(self, body),
            Err(e) => Response::bad_request(format!("invalid body: {e}")),
        }
    }
}

/// A process-wide empty history for unregistered/blank users, avoiding an
/// `Option` plumbed through every analytics endpoint.
mod once_empty {
    use crate::analytics::ProfileHistory;
    use std::sync::OnceLock;

    pub(super) fn empty() -> &'static ProfileHistory {
        static EMPTY: OnceLock<ProfileHistory> = OnceLock::new();
        EMPTY.get_or_init(ProfileHistory::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PlaceEntry;
    use pmware_world::builder::{RegionProfile, WorldBuilder};

    fn cloud() -> CloudInstance {
        CloudInstance::new(CellDatabase::new(), 42)
    }

    fn register(cloud: &mut CloudInstance, n: u32, now: SimTime) -> String {
        let req = Request::post(
            "/api/v1/registration",
            json!({"imei": format!("imei-{n}"), "email": format!("u{n}@x.com")}),
        );
        let resp = cloud.handle(&req, now);
        assert!(resp.is_success(), "{resp:?}");
        resp.body["token"].as_str().unwrap().to_owned()
    }

    #[test]
    fn registration_and_auth_flow() {
        let mut c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&mut c, 0, now);
        assert_eq!(c.user_count(), 1);

        // Authenticated GET works.
        let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), now);
        assert!(resp.is_success());

        // Missing token → 401.
        let resp = c.handle(&Request::get("/api/v1/places"), now);
        assert_eq!(resp.status, 401);

        // Bogus token → 401.
        let resp = c.handle(&Request::get("/api/v1/places").with_token("tok-x"), now);
        assert_eq!(resp.status, 401);

        // Expired token → 401.
        let later = now + SimDuration::from_hours(25);
        let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), later);
        assert_eq!(resp.status, 401);
    }

    #[test]
    fn registration_requires_identity() {
        let mut c = cloud();
        let resp = c.handle(
            &Request::post("/api/v1/registration", json!({"imei": "", "email": ""})),
            SimTime::EPOCH,
        );
        assert_eq!(resp.status, 400);
        let resp = c.handle(
            &Request::post("/api/v1/registration", json!({"nope": 1})),
            SimTime::EPOCH,
        );
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn token_refresh_rotates() {
        let mut c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&mut c, 0, now);
        let resp = c.handle(
            &Request::post("/api/v1/token/refresh", Value::Null).with_token(&token),
            now + SimDuration::from_hours(20),
        );
        assert!(resp.is_success());
        let new_token = resp.body["token"].as_str().unwrap().to_owned();
        assert_ne!(new_token, token);
        // The old token no longer validates.
        let resp = c.handle(
            &Request::get("/api/v1/places").with_token(&token),
            now + SimDuration::from_hours(21),
        );
        assert_eq!(resp.status, 401);
    }

    #[test]
    fn gca_offload_discovers_and_stores() {
        use pmware_world::tower::NetworkLayer;
        let mut c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&mut c, 0, now);
        // Synthetic oscillating stream (same shape as the GCA unit tests).
        let cell = |id: u32| CellGlobalId {
            plmn: Plmn { mcc: 404, mnc: 45 },
            lac: Lac(1),
            cell: CellId(id),
        };
        let observations: Vec<GsmObservation> = (0..40)
            .map(|m| GsmObservation {
                time: SimTime::from_seconds(m * 60),
                cell: if m % 3 == 1 { cell(2) } else { cell(1) },
                layer: NetworkLayer::G2,
                rssi_dbm: -70.0,
            })
            .collect();
        let resp = c.handle(
            &Request::post(
                "/api/v1/places/discover",
                json!({ "observations": observations }),
            )
            .with_token(&token),
            now,
        );
        assert!(resp.is_success(), "{resp:?}");
        let places = resp.body["places"].as_array().unwrap();
        assert_eq!(places.len(), 1);
        // And the places are now listed.
        let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), now);
        assert_eq!(resp.body["places"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn place_labelling() {
        let mut c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&mut c, 0, now);
        let place = DiscoveredPlace::new(
            DiscoveredPlaceId(0),
            pmware_algorithms::signature::PlaceSignature::WifiAps(Default::default()),
            vec![],
        );
        let resp = c.handle(
            &Request::post("/api/v1/places/sync", json!({ "places": [place] }))
                .with_token(&token),
            now,
        );
        assert!(resp.is_success());
        let resp = c.handle(
            &Request::post(
                "/api/v1/places/label",
                json!({"place": 0, "label": "Home"}),
            )
            .with_token(&token),
            now,
        );
        assert!(resp.is_success(), "{resp:?}");
        let resp = c.handle(&Request::get("/api/v1/places").with_token(&token), now);
        assert_eq!(resp.body["places"][0]["label"], "Home");
        // Unknown place → 404.
        let resp = c.handle(
            &Request::post(
                "/api/v1/places/label",
                json!({"place": 9, "label": "X"}),
            )
            .with_token(&token),
            now,
        );
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn profile_sync_and_fetch() {
        let mut c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&mut c, 0, now);
        let mut profile = MobilityProfile::new(2);
        profile.places.push(PlaceEntry {
            place: DiscoveredPlaceId(0),
            arrival: SimTime::from_day_time(2, 9, 0, 0),
            departure: SimTime::from_day_time(2, 17, 0, 0),
        });
        let resp = c.handle(
            &Request::post("/api/v1/profiles/sync", json!({ "profile": profile }))
                .with_token(&token),
            now,
        );
        assert!(resp.is_success());
        let resp = c.handle(
            &Request::get("/api/v1/profiles/2").with_token(&token),
            now,
        );
        assert!(resp.is_success());
        assert_eq!(resp.body["profile"]["day"], 2);
        // Missing day → 404; malformed day → 400.
        assert_eq!(
            c.handle(&Request::get("/api/v1/profiles/9").with_token(&token), now)
                .status,
            404
        );
        assert_eq!(
            c.handle(&Request::get("/api/v1/profiles/xyz").with_token(&token), now)
                .status,
            400
        );
    }

    #[test]
    fn analytics_endpoints_answer_the_papers_queries() {
        let mut c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&mut c, 0, now);
        // Two weeks of evening home arrivals at 18h.
        for day in 0..14 {
            let mut profile = MobilityProfile::new(day);
            profile.places.push(PlaceEntry {
                place: DiscoveredPlaceId(1),
                arrival: SimTime::from_day_time(day, 9, 0, 0),
                departure: SimTime::from_day_time(day, 17, 0, 0),
            });
            profile.places.push(PlaceEntry {
                place: DiscoveredPlaceId(0),
                arrival: SimTime::from_day_time(day, 18, 0, 0),
                departure: SimTime::from_day_time(day, 23, 0, 0),
            });
            let resp = c.handle(
                &Request::post("/api/v1/profiles/sync", json!({ "profile": profile }))
                    .with_token(&token),
                now,
            );
            assert!(resp.is_success());
        }
        // Query 1: evening home arrival.
        let resp = c.handle(
            &Request::post(
                "/api/v1/analytics/arrival",
                json!({"place": 0, "window": [15, 24]}),
            )
            .with_token(&token),
            now,
        );
        assert!(resp.is_success());
        assert_eq!(resp.body["second_of_day"].as_u64().unwrap() / 3_600, 18);
        // Query 2: next visit to place 1.
        let resp = c.handle(
            &Request::post(
                "/api/v1/analytics/next_visit",
                json!({"place": 1, "now": SimTime::from_day_time(14, 0, 0, 0)}),
            )
            .with_token(&token),
            now,
        );
        assert!(resp.is_success(), "{resp:?}");
        // Query 3: frequency.
        let resp = c.handle(
            &Request::post("/api/v1/analytics/frequency", json!({"place": 0}))
                .with_token(&token),
            now,
        );
        assert!(resp.is_success());
        assert!((resp.body["visits_per_week"].as_f64().unwrap() - 7.0).abs() < 1e-9);
        // Markov next place from work is home.
        let resp = c.handle(
            &Request::post("/api/v1/analytics/next_place", json!({"place": 1}))
                .with_token(&token),
            now,
        );
        assert!(resp.is_success());
        let preds = resp.body["predictions"].as_array().unwrap();
        assert_eq!(preds[0][0], 0);
    }

    #[test]
    fn geolocation_endpoint_uses_cell_database() {
        let world = WorldBuilder::new(RegionProfile::test_tiny()).seed(3).build();
        let tower = &world.towers()[0];
        let mut c = CloudInstance::new(CellDatabase::from_world(&world), 1);
        let now = SimTime::EPOCH;
        let token = register(&mut c, 0, now);
        let cell = tower.cell();
        let resp = c.handle(
            &Request::post(
                "/api/v1/misc/geolocate",
                json!({
                    "mcc": cell.plmn.mcc,
                    "mnc": cell.plmn.mnc,
                    "lac": cell.lac.0,
                    "cid": cell.cell.0,
                }),
            )
            .with_token(&token),
            now,
        );
        assert!(resp.is_success());
        let lat = resp.body["latitude"].as_f64().unwrap();
        assert!((lat - tower.position().latitude()).abs() < 1e-9);
        // Unknown cell → 404.
        let resp = c.handle(
            &Request::post(
                "/api/v1/misc/geolocate",
                json!({"mcc": 1, "mnc": 1, "lac": 1, "cid": 1}),
            )
            .with_token(&token),
            now,
        );
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn social_sync_and_query_by_place() {
        let mut c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&mut c, 0, now);
        let contacts = vec![
            ContactEntry {
                contact: "peer-1".into(),
                start: SimTime::from_seconds(0),
                end: SimTime::from_seconds(600),
                place: Some(DiscoveredPlaceId(0)),
            },
            ContactEntry {
                contact: "peer-2".into(),
                start: SimTime::from_seconds(0),
                end: SimTime::from_seconds(600),
                place: Some(DiscoveredPlaceId(1)),
            },
        ];
        let resp = c.handle(
            &Request::post("/api/v1/social/sync", json!({ "contacts": contacts }))
                .with_token(&token),
            now,
        );
        assert!(resp.is_success());
        // Targeted query: only workplace contacts (§2.2.2 targeted sensing).
        let resp = c.handle(
            &Request::post("/api/v1/social/query", json!({"place": 0}))
                .with_token(&token),
            now,
        );
        let got = resp.body["contacts"].as_array().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0]["contact"], "peer-1");
        // Unfiltered query returns everything.
        let resp = c.handle(
            &Request::post("/api/v1/social/query", json!({"place": null}))
                .with_token(&token),
            now,
        );
        assert_eq!(resp.body["contacts"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn users_are_isolated() {
        let mut c = cloud();
        let now = SimTime::EPOCH;
        let t0 = register(&mut c, 0, now);
        let t1 = register(&mut c, 1, now);
        let place = DiscoveredPlace::new(
            DiscoveredPlaceId(0),
            pmware_algorithms::signature::PlaceSignature::WifiAps(Default::default()),
            vec![],
        );
        c.handle(
            &Request::post("/api/v1/places/sync", json!({ "places": [place] }))
                .with_token(&t0),
            now,
        );
        let resp = c.handle(&Request::get("/api/v1/places").with_token(&t1), now);
        assert_eq!(resp.body["places"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn unknown_route_is_404() {
        let mut c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&mut c, 0, now);
        let resp = c.handle(&Request::get("/api/v1/nope").with_token(&token), now);
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn malformed_body_is_400() {
        let mut c = cloud();
        let now = SimTime::EPOCH;
        let token = register(&mut c, 0, now);
        let resp = c.handle(
            &Request::post("/api/v1/places/sync", json!({"wrong": true}))
                .with_token(&token),
            now,
        );
        assert_eq!(resp.status, 400);
    }
}
